"""Neuron activation-pattern coverage metrics.

The paper's tool substrate, nn-dependability-kit, accompanies runtime
monitoring with *coverage metrics* over close-to-output neuron
activations: how much of the reachable activation space has the training
data actually visited?  Low coverage warns that the recorded envelope
``S~`` (and hence the conditional proof) rests on thin evidence —
footnote 2's "hints for incomplete data collection".

Two classic metrics are implemented over cut-layer features:

- :func:`neuron_onoff_coverage` — fraction of neurons observed both
  active (> 0) and inactive (== 0 after ReLU) — the simplest pattern
  coverage;
- :func:`k_section_coverage` — each neuron's recorded range is split
  into ``k`` sections; coverage is the fraction of (neuron, section)
  cells hit by the data;
- :class:`ActivationPatternSet` — the set of binary on/off patterns seen
  during training, with a membership monitor for novel patterns in
  operation (a discrete companion to the interval envelope).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_ACTIVE_TOL = 1e-9


def _validate(features: np.ndarray) -> np.ndarray:
    features = np.asarray(features, dtype=float)
    if features.ndim != 2 or features.shape[0] == 0:
        raise ValueError(f"features must be non-empty (N, d), got {features.shape}")
    return features


def neuron_onoff_coverage(features: np.ndarray) -> float:
    """Fraction of neurons seen in *both* the active and inactive state."""
    features = _validate(features)
    active = (features > _ACTIVE_TOL).any(axis=0)
    inactive = (features <= _ACTIVE_TOL).any(axis=0)
    return float((active & inactive).mean())


def k_section_coverage(features: np.ndarray, k: int = 8) -> float:
    """Fraction of per-neuron range sections visited by the data.

    Degenerate neurons (constant over the data) count as a single,
    covered section.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    features = _validate(features)
    lo = features.min(axis=0)
    hi = features.max(axis=0)
    span = hi - lo
    covered = 0
    total = 0
    for j in range(features.shape[1]):
        if span[j] <= _ACTIVE_TOL:
            covered += 1
            total += 1
            continue
        sections = np.clip(
            ((features[:, j] - lo[j]) / span[j] * k).astype(int), 0, k - 1
        )
        covered += len(np.unique(sections))
        total += k
    return covered / total


@dataclass
class ActivationPatternSet:
    """The set of binary on/off patterns observed during training."""

    dim: int
    _patterns: set[bytes]

    @classmethod
    def from_features(cls, features: np.ndarray) -> "ActivationPatternSet":
        features = _validate(features)
        patterns = {
            np.packbits(row > _ACTIVE_TOL).tobytes() for row in features
        }
        return cls(dim=features.shape[1], _patterns=patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    def contains(self, features: np.ndarray) -> np.ndarray:
        """Per-row: was this exact on/off pattern seen in training?"""
        features = _validate(features)
        if features.shape[1] != self.dim:
            raise ValueError(
                f"expected {self.dim}-d features, got {features.shape[1]}"
            )
        return np.array(
            [
                np.packbits(row > _ACTIVE_TOL).tobytes() in self._patterns
                for row in features
            ]
        )

    def novelty_rate(self, features: np.ndarray) -> float:
        """Fraction of frames with a never-seen activation pattern."""
        return float(1.0 - self.contains(features).mean())


@dataclass(frozen=True)
class CoverageReport:
    """All coverage metrics for one cut layer, in one record."""

    onoff: float
    k_section: float
    k: int
    patterns_seen: int
    samples: int

    def summary(self) -> str:
        return (
            f"on/off coverage {self.onoff:.1%}, {self.k}-section coverage "
            f"{self.k_section:.1%}, {self.patterns_seen} activation patterns "
            f"over {self.samples} samples"
        )


def coverage_report(features: np.ndarray, k: int = 8) -> CoverageReport:
    """Compute every metric at once."""
    features = _validate(features)
    return CoverageReport(
        onoff=neuron_onoff_coverage(features),
        k_section=k_section_coverage(features, k),
        k=k,
        patterns_seen=len(ActivationPatternSet.from_features(features)),
        samples=features.shape[0],
    )
