"""Runtime monitoring of the assume-guarantee assumption.

Section II.B.b: a proof obtained with the data-derived set ``S~`` is
conditional on ``f^(l)(in) ∈ S~`` holding in operation; "one shall
monitor in runtime whether the computed value … has fallen outside" the
recorded bounds.  Footnote 2 adds that such monitoring is useful
regardless of verification, as out-of-bounds features signal incomplete
data collection or ODD exit.
"""

from repro.monitor.coverage import (
    ActivationPatternSet,
    CoverageReport,
    coverage_report,
    k_section_coverage,
    neuron_onoff_coverage,
)
from repro.monitor.events import MonitorEvent, MonitorReport
from repro.monitor.runtime import RuntimeMonitor
from repro.monitor.throughput import monitor_feature_batch

__all__ = [
    "ActivationPatternSet",
    "CoverageReport",
    "MonitorEvent",
    "MonitorReport",
    "RuntimeMonitor",
    "coverage_report",
    "k_section_coverage",
    "monitor_feature_batch",
    "neuron_onoff_coverage",
]
