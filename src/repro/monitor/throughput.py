"""Vectorized batch monitoring.

Footnote 8 of the paper argues monitoring is cheap because min/max and
adjacent-difference checks vectorize (``diff(n)`` in numpy, ``n[1:] -
n[:-1]`` in TensorFlow).  This module is that vectorized path; experiment
E8 benchmarks it against the network forward pass.
"""

from __future__ import annotations

import numpy as np

from repro.verification.sets import FeatureSet


def monitor_feature_batch(
    feature_set: FeatureSet, features: np.ndarray
) -> np.ndarray:
    """Vectorized violation mask for a feature batch ``(N, d_l)``.

    ``True`` entries are frames whose features left the envelope.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ValueError(f"expected (N, d) features, got shape {features.shape}")
    return ~feature_set.contains(features)


def adjacent_differences(features: np.ndarray) -> np.ndarray:
    """The paper's monitored statistic ``n[1:] - n[:-1]`` per frame."""
    features = np.asarray(features, dtype=float)
    if features.ndim != 2 or features.shape[1] < 2:
        raise ValueError(f"expected (N, d>=2) features, got shape {features.shape}")
    return np.diff(features, axis=1)
