"""The runtime monitor: ``f^(l)(in) ∈ S~`` checks per camera frame."""

from __future__ import annotations

import numpy as np

from repro.monitor.events import MonitorEvent, MonitorReport
from repro.nn.sequential import Sequential
from repro.verification.sets import Box, BoxWithDiffs, FeatureSet


class RuntimeMonitor:
    """Checks each frame's cut-layer features against the proof assumption.

    The monitor owns the perception model reference so callers hand it
    raw images; :meth:`check_features` is the feature-level primitive for
    pipelines that already computed ``f^(l)``.
    """

    def __init__(
        self,
        model: Sequential,
        cut_layer: int,
        feature_set: FeatureSet,
        keep_events: bool = True,
    ):
        if feature_set.dim != model.feature_dim(cut_layer):
            raise ValueError(
                f"feature set dimension {feature_set.dim} does not match "
                f"layer {cut_layer} dimension {model.feature_dim(cut_layer)}"
            )
        self.model = model
        self.cut_layer = cut_layer
        self.feature_set = feature_set
        self.report = MonitorReport(keep_events=keep_events)
        self._frame_index = 0

    # -- per-frame API ----------------------------------------------------

    def check_image(self, image: np.ndarray) -> MonitorEvent:
        """Monitor one camera frame (feature extraction + membership)."""
        image = np.asarray(image, dtype=float)
        if image.ndim == len(self.model.input_shape):
            image = image[None, ...]
        features = self.model.prefix_apply(image, self.cut_layer, flat=True)[0]
        return self.check_features(features)

    def check_features(self, features: np.ndarray) -> MonitorEvent:
        """Monitor one already-extracted feature vector."""
        features = np.asarray(features, dtype=float).ravel()
        inside = bool(self.feature_set.contains(features[None, :])[0])
        worst_coord, worst_excess = (None, 0.0)
        if not inside:
            worst_coord, worst_excess = self._diagnose(features)
        event = MonitorEvent(
            frame_index=self._frame_index,
            violation=not inside,
            features=features,
            worst_coordinate=worst_coord,
            worst_excess=worst_excess,
        )
        self._frame_index += 1
        self.report.record(event)
        return event

    def run(self, images: np.ndarray) -> MonitorReport:
        """Monitor a stream of frames; returns the aggregate report."""
        images = np.asarray(images, dtype=float)
        for image in images:
            self.check_image(image)
        return self.report

    # -- diagnostics ----------------------------------------------------------

    def _diagnose(self, features: np.ndarray) -> tuple[int, float]:
        """Most-violated box coordinate (for actionable warnings)."""
        lower, upper = self.feature_set.bounds()
        excess = np.maximum(lower - features, features - upper)
        if isinstance(self.feature_set, BoxWithDiffs) and features.shape[0] > 1:
            diffs = np.diff(features)
            diff_excess = np.maximum(
                self.feature_set.diff_lower - diffs,
                diffs - self.feature_set.diff_upper,
            )
            if diff_excess.max(initial=-np.inf) > excess.max(initial=-np.inf):
                worst = int(np.argmax(diff_excess))
                return worst, float(diff_excess[worst])
        worst = int(np.argmax(excess))
        return worst, float(excess[worst])


def false_alarm_rate(
    model: Sequential,
    cut_layer: int,
    feature_set: FeatureSet,
    images: np.ndarray,
) -> float:
    """Violation rate on in-ODD data (monitor false alarms).

    Measured on held-out in-distribution images; the paper's margin
    parameter trades this rate against proof tightness.
    """
    monitor = RuntimeMonitor(model, cut_layer, feature_set, keep_events=False)
    report = monitor.run(images)
    return report.violation_rate
