"""Monitor event records and aggregate reports."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class MonitorEvent:
    """One monitored frame.

    ``violation`` is True when the cut-layer features fell outside the
    assume-guarantee set — the conditional proof does not cover this
    frame and the vehicle should fall back (e.g. to the mediated
    perception channel).
    """

    frame_index: int
    violation: bool
    features: np.ndarray
    worst_coordinate: int | None = None
    worst_excess: float = 0.0

    def __str__(self) -> str:
        if not self.violation:
            return f"frame {self.frame_index}: in ODD envelope"
        return (
            f"frame {self.frame_index}: ASSUMPTION VIOLATED "
            f"(coordinate {self.worst_coordinate}, excess {self.worst_excess:.4g})"
        )


@dataclass
class MonitorReport:
    """Aggregate statistics over a monitored stream."""

    frames: int = 0
    violations: int = 0
    events: list[MonitorEvent] = field(default_factory=list)
    keep_events: bool = True

    @property
    def violation_rate(self) -> float:
        return self.violations / self.frames if self.frames else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of frames on which the conditional proof applied."""
        return 1.0 - self.violation_rate

    def record(self, event: MonitorEvent) -> None:
        self.frames += 1
        if event.violation:
            self.violations += 1
        if self.keep_events:
            self.events.append(event)

    def summary(self) -> str:
        return (
            f"{self.frames} frames monitored, {self.violations} assumption "
            f"violations ({self.violation_rate:.2%}); proof coverage "
            f"{self.coverage:.2%}"
        )
