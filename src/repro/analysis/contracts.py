"""Transformer-registry audit: op x domain coverage as a static contract.

The registry in :mod:`repro.verification.abstraction.domain` resolves a
``(domain, op type)`` pair at *propagation* time and raises ``TypeError``
when no transformer exists — potentially deep inside a pool worker.
This module turns that into a static contract:

- a **frozen coverage floor** (:data:`COVERAGE_FLOOR`) records every
  transformer the stack ships today; deleting any registered transformer
  makes :func:`audit_registry` — not a runtime propagation — fail;
- every registered domain (including future ones not in the floor) must
  cover the six piecewise-linear **core ops**, and the cheapest domain
  on the precision ladder must cover *all* ops, because the engine
  falls back to it for prefix propagation;
- ``refines`` edges must name registered domains and ``cost_rank``
  must induce a strict ladder order;
- with ``smoke=True`` the audit additionally runs a differential
  soundness smoke check per registered pair: batched output hulls must
  match the batch-of-one hulls, and must contain the images of points
  sampled from the input boxes.

:func:`ensure_registry_contracts` is the once-per-process guard the
verification engine calls at construction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.ir_analysis import Diagnostic
from repro.nn.graph import (
    AffineOp,
    ConvOp,
    ElementwiseAffineOp,
    FusedAffineReLU,
    FusedConvReLU,
    IROp,
    LeakyReLUOp,
    MaxGroupOp,
    MonotoneOp,
    ReLUOp,
    ReshapeOp,
)

#: MILP-encodable ops every registered domain must support
CORE_OPS: tuple[type, ...] = (
    AffineOp,
    ElementwiseAffineOp,
    ReLUOp,
    LeakyReLUOp,
    MaxGroupOp,
    ReshapeOp,
)

#: prefix-only ops (conv kept in kernel form, smooth monotone maps)
PREFIX_OPS: tuple[type, ...] = (ConvOp, MonotoneOp)

#: fused ops produced by the lowering-time fusion pass; every domain
#: that covers the unfused parts must also cover the fused pair, or the
#: fast-path ``fused=True`` view would raise mid-propagation.
FUSED_OPS: tuple[type, ...] = (FusedAffineReLU, FusedConvReLU)

ALL_OPS: tuple[type, ...] = CORE_OPS + PREFIX_OPS + FUSED_OPS

#: the frozen floor: every (domain, op) transformer the stack ships.
#: A registered transformer disappearing from under any of these pairs
#: is a contract violation, caught here instead of at propagation time.
COVERAGE_FLOOR: dict[str, tuple[type, ...]] = {
    "interval": ALL_OPS,
    "octagon": ALL_OPS,
    "zonotope": CORE_OPS + (ConvOp,) + FUSED_OPS,
    "symbolic": CORE_OPS + (FusedAffineReLU,),
}


@dataclass
class RegistryAudit:
    """Outcome of one registry audit."""

    coverage: dict[str, tuple[str, ...]] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    smoke_checks: int = 0

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        lines = [
            f"registry audit: {len(self.coverage)} domain(s), "
            f"{sum(len(v) for v in self.coverage.values())} transformer "
            f"pair(s), {self.smoke_checks} smoke check(s), "
            f"{len(self.errors)} error(s)"
        ]
        for name, kinds in sorted(self.coverage.items()):
            lines.append(f"  {name}: {', '.join(kinds)}")
        lines.extend(f"  {d}" for d in self.diagnostics)
        return "\n".join(lines)


class RegistryContractError(RuntimeError):
    """The transformer registry violates the coverage contract."""

    def __init__(self, diagnostics: list[Diagnostic]):
        self.diagnostics = list(diagnostics)
        details = "; ".join(str(d) for d in diagnostics)
        super().__init__(f"transformer registry contract violated: {details}")


def _sample_op(op_type: type, rng: np.random.Generator) -> IROp:
    """A small deterministic instance of each primitive op type."""
    if op_type is AffineOp:
        return AffineOp(rng.normal(size=(3, 4)), rng.normal(size=3))
    if op_type is ElementwiseAffineOp:
        return ElementwiseAffineOp(
            rng.normal(size=4) + 1.5, rng.normal(size=4)
        )
    if op_type is ReLUOp:
        return ReLUOp(4)
    if op_type is LeakyReLUOp:
        return LeakyReLUOp(4, alpha=0.1)
    if op_type is MaxGroupOp:
        return MaxGroupOp(4, [[0, 1], [2, 3], [1, 2]])
    if op_type is ReshapeOp:
        return ReshapeOp((4,), (2, 2))
    if op_type is ConvOp:
        return ConvOp(
            rng.normal(size=(2, 1, 2, 2)),
            rng.normal(size=2),
            stride=1,
            padding=0,
            in_shape=(1, 3, 3),
        )
    if op_type is MonotoneOp:
        return MonotoneOp("tanh", 4)
    if op_type is FusedAffineReLU:
        return FusedAffineReLU(
            AffineOp(rng.normal(size=(3, 4)), rng.normal(size=3))
        )
    if op_type is FusedConvReLU:
        return FusedConvReLU(
            ConvOp(
                rng.normal(size=(2, 1, 2, 2)),
                rng.normal(size=2),
                stride=1,
                padding=0,
                in_shape=(1, 3, 3),
            )
        )
    raise TypeError(f"no sample for op type {op_type.__name__}")


def _smoke_check(
    domain_name: str, op: IROp, rng: np.random.Generator
) -> list[Diagnostic]:
    """Differential soundness smoke check for one (domain, op) pair.

    Propagates a 3-region box batch and checks (a) the batched hulls
    equal the batch-of-one hulls region by region, and (b) the hulls
    contain the op images of points sampled inside each input box.
    """
    from repro.verification.abstraction.domain import get_domain
    from repro.verification.sets import BoxBatch

    dom = get_domain(domain_name)
    kind = type(op).__name__
    center = rng.normal(size=(3, op.in_dim))
    radius = rng.uniform(0.05, 0.6, size=(3, op.in_dim))
    batch = BoxBatch(center - radius, center + radius)
    hull = dom.concretize(dom.transform(op, dom.lift(batch)))

    diags: list[Diagnostic] = []
    for i in range(batch.n_regions):
        single = BoxBatch(
            batch.lower[i : i + 1], batch.upper[i : i + 1]
        )
        one = dom.concretize(dom.transform(op, dom.lift(single)))
        if not (
            np.allclose(one.lower[0], hull.lower[i], atol=1e-8)
            and np.allclose(one.upper[0], hull.upper[i], atol=1e-8)
        ):
            diags.append(
                Diagnostic(
                    "RC006",
                    "error",
                    f"{domain_name}/{kind}: batch-of-one hull differs "
                    f"from batched hull for region {i}",
                )
            )
    points = rng.uniform(size=(16, batch.n_regions, op.in_dim))
    points = batch.lower[None] + points * (batch.upper - batch.lower)[None]
    images = op.apply(points.reshape(-1, op.in_dim)).reshape(
        16, batch.n_regions, -1
    )
    tol = 1e-7
    contained = (images >= hull.lower[None] - tol) & (
        images <= hull.upper[None] + tol
    )
    if not np.all(contained):
        bad = int(np.count_nonzero(~np.all(contained, axis=-1)))
        diags.append(
            Diagnostic(
                "RC007",
                "error",
                f"{domain_name}/{kind}: output hull excludes {bad} of "
                f"{16 * batch.n_regions} sampled op images (unsound "
                f"transformer)",
            )
        )
    return diags


def _fast32_smoke_check(op: IROp, rng: np.random.Generator) -> list[Diagnostic]:
    """Fast-path containment smoke check: fast32 hull must contain exact64.

    Runs the float32 raw-speed backend on a one-op program and checks
    its hull is an outer approximation of the exact interval hull — the
    directed-rounding contract of
    :mod:`repro.verification.abstraction.fast32`.  Ops the fast backend
    cannot express are skipped (the runtime falls back to exact64 for
    them, so there is nothing to check).
    """
    from repro.nn.graph import PiecewiseLinearNetwork
    from repro.verification.abstraction import fast32
    from repro.verification.abstraction.domain import get_domain
    from repro.verification.sets import BoxBatch

    program = PiecewiseLinearNetwork([op], op.in_dim)
    center = rng.normal(size=(3, op.in_dim))
    radius = rng.uniform(0.05, 0.6, size=(3, op.in_dim))
    batch = BoxBatch(center - radius, center + radius)
    try:
        fast = fast32.propagate_interval_fast32(program, batch)
    except fast32.Fast32Unsupported:
        return []
    dom = get_domain("interval")
    exact = dom.concretize(dom.transform(op, dom.lift(batch))).flat()
    if np.all(fast.lower <= exact.lower) and np.all(fast.upper >= exact.upper):
        return []
    return [
        Diagnostic(
            "RC008",
            "error",
            f"interval/fast32: {type(op).__name__} hull does not contain "
            f"the exact64 hull (broken outward rounding)",
        )
    ]


def audit_registry(*, smoke: bool = False, seed: int = 0) -> RegistryAudit:
    """Audit op x domain transformer coverage against the contract.

    With ``smoke=True`` every registered pair additionally runs a
    differential soundness smoke check (seeded, deterministic).
    """
    import repro.verification.abstraction  # noqa: F401  (registers domains)
    from repro.verification.abstraction.domain import (
        get_domain,
        registered_domains,
    )

    audit = RegistryAudit()
    names = registered_domains()
    for name in names:
        dom = get_domain(name)
        covered = tuple(
            op_type.__name__
            for op_type in ALL_OPS
            if (name, op_type) in _transformer_table()
        )
        audit.coverage[name] = covered

        floor = COVERAGE_FLOOR.get(name, CORE_OPS)
        for op_type in floor:
            if (name, op_type) not in _transformer_table():
                code = "RC001" if name in COVERAGE_FLOOR else "RC002"
                audit.diagnostics.append(
                    Diagnostic(
                        code,
                        "error",
                        f"domain {name!r} has no transformer for "
                        f"{op_type.__name__} (coverage floor); runtime "
                        f"propagation would raise TypeError",
                    )
                )
        for ref in dom.refines:
            if ref not in names:
                audit.diagnostics.append(
                    Diagnostic(
                        "RC004",
                        "error",
                        f"domain {name!r} claims to refine unregistered "
                        f"domain {ref!r}",
                    )
                )

    if names:
        base = get_domain(names[0])
        for op_type in ALL_OPS:
            if (base.name, op_type) not in _transformer_table():
                audit.diagnostics.append(
                    Diagnostic(
                        "RC003",
                        "error",
                        f"ladder-base domain {base.name!r} must cover "
                        f"every op but lacks {op_type.__name__}",
                    )
                )
        ranks = [get_domain(n).cost_rank for n in names]
        if len(set(ranks)) != len(ranks):
            audit.diagnostics.append(
                Diagnostic(
                    "RC005",
                    "error",
                    f"cost ranks are not distinct: "
                    f"{dict(zip(names, ranks))}",
                )
            )

    if smoke:
        rng = np.random.default_rng(seed)
        for name in names:
            for op_type in ALL_OPS:
                if (name, op_type) not in _transformer_table():
                    continue
                op = _sample_op(op_type, rng)
                audit.smoke_checks += 1
                audit.diagnostics.extend(_smoke_check(name, op, rng))
                if name == "interval":
                    audit.diagnostics.extend(_fast32_smoke_check(op, rng))
    return audit


def _transformer_table() -> dict:
    from repro.verification.abstraction.domain import _TRANSFORMERS

    return _TRANSFORMERS


_CONTRACTS_OK = False


def ensure_registry_contracts() -> None:
    """Once-per-process registry audit; raises on contract violations.

    The engine calls this at construction time so a missing transformer
    fails fast with a :class:`RegistryContractError` instead of a
    ``TypeError`` mid-propagation.
    """
    global _CONTRACTS_OK
    if _CONTRACTS_OK:
        return
    audit = audit_registry(smoke=False)
    if not audit.ok:
        raise RegistryContractError(audit.errors)
    _CONTRACTS_OK = True
