"""Static soundness analysis for the verification stack.

Three passes, all purely static (no solver runs, no propagation):

- :mod:`repro.analysis.ir_analysis` — a dataflow pass over
  :class:`~repro.verification.ir.LoweredProgram` that re-derives per-op
  shapes, checks structural invariants (dimension agreement, reshape
  element counts, BatchNorm folding, monotone-op placement) and flags
  numeric hazards (non-finite parameters, degenerate affine rows, dead
  ops, extreme Lipschitz growth) into an :class:`AnalysisReport`.
  :func:`validate_program` is the cheap errors-only subset that
  :func:`~repro.verification.ir.lower_network` runs on every cache miss,
  so a malformed program fails with an op-indexed diagnostic instead of
  a numpy traceback deep inside propagation.
- :mod:`repro.analysis.contracts` — the transformer-registry audit:
  enumerates every primitive op x registered domain pair against a
  frozen coverage floor, failing at import/CI time instead of as a
  runtime ``TypeError`` inside a pool worker, and optionally runs
  per-pair differential soundness smoke checks (scalar vs batch-of-one,
  interval containment of sampled points).
- :mod:`repro.analysis.lint` — an AST-based project lint encoding
  repo-specific rules (no deprecated-shim calls, no unseeded RNG in
  verification paths, no float equality in solver code, pool-submitted
  callables must be picklable, deprecation shims must warn with
  ``stacklevel=2``), run as the ``repro lint`` CI gate.
"""

from repro.analysis.contracts import (
    RegistryAudit,
    RegistryContractError,
    audit_registry,
    ensure_registry_contracts,
)
from repro.analysis.ir_analysis import (
    AnalysisReport,
    Diagnostic,
    IRValidationError,
    OpFact,
    analyze_model,
    analyze_program,
    validate_program,
)
from repro.analysis.lint import LintFinding, lint_paths

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "IRValidationError",
    "LintFinding",
    "OpFact",
    "RegistryAudit",
    "RegistryContractError",
    "analyze_model",
    "analyze_program",
    "audit_registry",
    "ensure_registry_contracts",
    "lint_paths",
    "validate_program",
]
