"""Dataflow analysis over :class:`~repro.verification.ir.LoweredProgram`.

The pass walks a lowered program once, re-deriving every op's input and
output dimension from the op's own parameters (never trusting the
program's cached metadata), and produces an :class:`AnalysisReport` of
per-op facts plus diagnostics:

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
IR000     error     model could not be lowered at all
IR001     error     op input dim disagrees with the incoming dataflow dim
IR002     error     reshape changes the element count
IR003     error     non-finite (NaN/Inf) op parameters
IR004     error     monotone op inside a piecewise-linear view
IR005     error     foldable elementwise affine left unfused (BatchNorm)
IR006     error     requested domain has no transformer for an op
IR010     error     op parameters drifted off the canonical float dtype
IR011     error     program metadata (out_dim) disagrees with dataflow
IR012     error     fusion contract: fused op in a MILP view, a fusable
                    affine→relu pair left unfused in a fused view, or a
                    fused op wrapping a mismatched part
IR013     error     merged-program contract: merge-group metadata
                    (abstract group → original neuron ids) missing, not
                    a partition of the source layer, inconsistent with
                    the op's width, or with non-increasing layer indices
                    (the group graph must stay acyclic)
IR007     warning   degenerate (all-zero) affine rows / scale entries
IR008     warning   dead op (redundant activation, identity elementwise)
IR009     warning   cumulative Lipschitz growth exceeds the threshold
IR106     info      coverage gap in a non-requested registered domain
========  ========  ====================================================

:func:`validate_program` runs the cheap errors-only structural subset
(IR001/IR002/IR003/IR005/IR010/IR011/IR013) and raises
:class:`IRValidationError`; :func:`~repro.verification.ir.lower_network`
calls it on every cache miss so malformed programs surface as op-indexed
diagnostics at lowering time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.nn.graph import (
    AffineOp,
    ConvOp,
    ElementwiseAffineOp,
    FusedAffineReLU,
    FusedConvReLU,
    IROp,
    LeakyReLUOp,
    MaxGroupOp,
    MonotoneOp,
    ReLUOp,
    ReshapeOp,
)
from repro.nn.tensor import FLOAT, flat_size
from repro.verification.ir import LoweredProgram

#: warn when the product of per-op Lipschitz gains exceeds this
LIPSCHITZ_THRESHOLD = 1e8

#: derivative bounds of the named monotone activations
_MONOTONE_GAIN = {"sigmoid": 0.25, "tanh": 1.0}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, anchored to an op index when possible."""

    code: str
    severity: str  #: "error" | "warning" | "info"
    message: str
    op_index: int | None = None
    op_kind: str | None = None
    layer_index: int | None = None

    def __str__(self) -> str:
        where = ""
        if self.op_index is not None:
            where = f"op {self.op_index}"
            if self.op_kind:
                where += f" ({self.op_kind})"
            if self.layer_index is not None:
                where += f" @ layer {self.layer_index}"
            where += ": "
        return f"[{self.code}/{self.severity}] {where}{self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "op_index": self.op_index,
            "op_kind": self.op_kind,
            "layer_index": self.layer_index,
        }


@dataclass(frozen=True)
class OpFact:
    """Inferred per-op dataflow facts."""

    index: int
    kind: str
    layer_index: int | None
    in_dim: int
    out_dim: int
    param_count: int
    lipschitz_gain: float
    cumulative_gain: float
    domains: tuple[str, ...]  #: registered domains with a transformer

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "layer_index": self.layer_index,
            "in_dim": self.in_dim,
            "out_dim": self.out_dim,
            "param_count": self.param_count,
            "lipschitz_gain": self.lipschitz_gain,
            "cumulative_gain": self.cumulative_gain,
            "domains": list(self.domains),
        }


@dataclass
class AnalysisReport:
    """Result of one analyzer pass over a lowered program."""

    source: str
    in_dim: int
    out_dim: int
    facts: list[OpFact] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics were produced."""
        return not self.errors

    def summary(self) -> str:
        head = (
            f"{self.source or '<program>'}: {len(self.facts)} ops, "
            f"{self.in_dim}->{self.out_dim}, "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        lines = [head] + [f"  {d}" for d in self.diagnostics]
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "in_dim": self.in_dim,
            "out_dim": self.out_dim,
            "ok": self.ok,
            "facts": [f.to_dict() for f in self.facts],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


class IRValidationError(ValueError):
    """A lowered program violates a structural IR invariant.

    Subclasses :class:`ValueError` so callers that already guard
    lowering with ``except ValueError`` keep working; carries the full
    op-indexed diagnostic list in ``diagnostics``.
    """

    def __init__(self, source: str, diagnostics: list[Diagnostic]):
        self.diagnostics = list(diagnostics)
        details = "; ".join(str(d) for d in self.diagnostics)
        super().__init__(
            f"invalid lowered program {source or '<program>'}: {details}"
        )


# -- per-op facts ------------------------------------------------------------


def _param_arrays(op: IROp) -> list[np.ndarray]:
    if isinstance(op, (AffineOp, ConvOp, FusedAffineReLU, FusedConvReLU)):
        return [op.weight, op.bias]
    if isinstance(op, ElementwiseAffineOp):
        return [op.scale, op.shift]
    return []


def _lipschitz_gain(op: IROp) -> float:
    """Upper bound on the op's L-infinity operator norm."""
    if isinstance(op, FusedAffineReLU):
        return _lipschitz_gain(op.affine)  # relu is 1-Lipschitz
    if isinstance(op, FusedConvReLU):
        return _lipschitz_gain(op.conv)
    if isinstance(op, AffineOp):
        if op.weight.shape[0] == 0:
            return 0.0
        return float(np.abs(op.weight).sum(axis=1).max())
    if isinstance(op, ConvOp):
        return float(np.abs(op.weight).reshape(op.weight.shape[0], -1).sum(axis=1).max())
    if isinstance(op, ElementwiseAffineOp):
        return float(np.abs(op.scale).max()) if op.scale.size else 0.0
    if isinstance(op, MonotoneOp):
        return _MONOTONE_GAIN.get(op.kind, 1.0)
    # relu-like, max-group and reshape ops are 1-Lipschitz
    return 1.0


def _op_layer(program: LoweredProgram, index: int) -> int | None:
    layer = program.op_layers[index] if index < len(program.op_layers) else None
    return int(layer) if layer is not None else None


# -- structural invariants (the validate_program subset) ---------------------


def _foldable(previous: IROp, ew: ElementwiseAffineOp) -> bool:
    """Would :func:`~repro.verification.ir._fold_elementwise` fuse these?

    Mirrors the lowering fold rules without materializing the fold.
    """
    if isinstance(previous, (AffineOp, ElementwiseAffineOp)):
        return True
    if isinstance(previous, ConvOp):
        filters = previous.weight.shape[0]
        if ew.scale.size != previous.out_dim or ew.scale.size % filters:
            return False
        per_filter = ew.scale.reshape(filters, -1)
        shift = ew.shift.reshape(filters, -1)
        return bool(
            np.all(per_filter == per_filter[:, :1])
            and np.all(shift == shift[:, :1])
        )
    return False


def _structural_diagnostics(program: LoweredProgram) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    current = program.in_dim
    # conv materialization in the derived /pl view can legitimately
    # leave a foldable (AffineOp, ElementwiseAffineOp) pair, so the
    # folding contract only binds the base lowering
    source = getattr(program, "source", "") or ""
    check_folding = not source.endswith("/pl")
    check_fusion = source.endswith("/fused")
    previous: IROp | None = None
    for index, op in enumerate(program.ops):
        kind = type(op).__name__
        layer = _op_layer(program, index)

        def diag(code: str, severity: str, message: str) -> None:
            diags.append(
                Diagnostic(code, severity, message, index, kind, layer)
            )

        if op.in_dim != current:
            diag(
                "IR001",
                "error",
                f"expects input dim {op.in_dim} but the dataflow "
                f"produces {current}",
            )
        if isinstance(op, ReshapeOp) and (
            flat_size(op.in_shape) != flat_size(op.out_shape)
        ):
            diag(
                "IR002",
                "error",
                f"reshape changes element count: {op.in_shape} -> "
                f"{op.out_shape}",
            )
        for arr in _param_arrays(op):
            if not np.all(np.isfinite(arr)):
                bad = int(np.size(arr) - np.count_nonzero(np.isfinite(arr)))
                diag(
                    "IR003",
                    "error",
                    f"{bad} non-finite parameter value(s)",
                )
                break
        for arr in _param_arrays(op):
            if arr.dtype != np.dtype(FLOAT):
                diag(
                    "IR010",
                    "error",
                    f"parameter dtype {arr.dtype} is not the canonical "
                    f"{np.dtype(FLOAT)}",
                )
                break
        if (
            check_folding
            and isinstance(op, ElementwiseAffineOp)
            and previous is not None
            and _foldable(previous, op)
        ):
            diag(
                "IR005",
                "error",
                f"elementwise affine op is foldable into the preceding "
                f"{type(previous).__name__} but was left unfused "
                f"(BatchNorm folding contract)",
            )
        if isinstance(op, (FusedAffineReLU, FusedConvReLU)):
            part = op.affine if isinstance(op, FusedAffineReLU) else op.conv
            expected = AffineOp if isinstance(op, FusedAffineReLU) else ConvOp
            if not isinstance(part, expected) or (
                part.in_dim,
                part.out_dim,
            ) != (op.in_dim, op.out_dim):
                diag(
                    "IR012",
                    "error",
                    f"fused op wraps {type(part).__name__} "
                    f"({part.in_dim}->{part.out_dim}); expected "
                    f"{expected.__name__} matching {op.in_dim}->{op.out_dim}",
                )
        if (
            check_fusion
            and isinstance(op, ReLUOp)
            and isinstance(previous, (AffineOp, ConvOp))
        ):
            diag(
                "IR012",
                "error",
                f"relu following {type(previous).__name__} was left "
                f"unfused in a fused view (fusion contract)",
            )
        current = op.out_dim
        previous = op
    if current != program.out_dim:
        diags.append(
            Diagnostic(
                "IR011",
                "error",
                f"program metadata claims out_dim {program.out_dim} but "
                f"the dataflow produces {current}",
            )
        )
    merge_groups = getattr(program, "merge_groups", None)
    if merge_groups is not None or source.endswith("/merged"):
        diags.extend(_merge_diagnostics(program, merge_groups))
    return diags


def _merge_diagnostics(
    program: LoweredProgram, metadata: dict | None
) -> list[Diagnostic]:
    """IR013: the merged-program contract.

    A merged program (source tag ``/merged`` or a ``merge_groups``
    attribute) must carry, for every merged hidden affine op, the map
    from each abstract group back to the original neuron ids it covers:
    per rail a *partition* of the source layer (disjoint, covering,
    in-range), with the op's width equal to the total group count, and
    layer indices strictly increasing across entries so the
    group-provenance graph is acyclic.
    """
    diags: list[Diagnostic] = []

    def diag(message: str, op_index: int | None = None) -> None:
        kind = (
            type(program.ops[op_index]).__name__
            if op_index is not None and 0 <= op_index < len(program.ops)
            else None
        )
        diags.append(Diagnostic("IR013", "error", message, op_index, kind))

    if not metadata:
        diag(
            "merged program carries no merge-group metadata "
            "(abstract group -> original neuron ids)"
        )
        return diags
    last_layer = -1
    for op_index in sorted(metadata):
        entry = metadata[op_index]
        if (
            not isinstance(op_index, int)
            or op_index < 0
            or op_index >= len(program.ops)
            or not isinstance(program.ops[op_index], AffineOp)
        ):
            diag(
                f"merge metadata references op {op_index!r}, which is "
                f"not an affine op of this program"
            )
            continue
        layer = entry.get("layer")
        width = entry.get("width")
        inc = entry.get("inc")
        dec = entry.get("dec")
        if layer is None or width is None or inc is None or dec is None:
            diag(
                "merge metadata entry is missing one of "
                "layer/width/inc/dec",
                op_index,
            )
            continue
        if layer <= last_layer:
            diag(
                f"merge metadata layer {layer} does not increase over "
                f"the previous entry ({last_layer}): the group "
                f"provenance graph must be acyclic",
                op_index,
            )
        last_layer = max(last_layer, int(layer))
        for rail, groups in (("inc", inc), ("dec", dec)):
            seen: set[int] = set()
            for group in groups:
                if not len(group):
                    diag(f"empty {rail} group", op_index)
                    continue
                for member in group:
                    if not 0 <= int(member) < int(width):
                        diag(
                            f"{rail} group member {member} out of range "
                            f"[0, {width})",
                            op_index,
                        )
                    elif int(member) in seen:
                        diag(
                            f"original neuron {member} appears in two "
                            f"{rail} groups (groups must be disjoint)",
                            op_index,
                        )
                    seen.add(int(member))
            if seen != set(range(int(width))) and not any(
                d.op_index == op_index for d in diags
            ):
                diag(
                    f"{rail} groups cover {len(seen)} of {width} "
                    f"original neurons (groups must partition the layer)",
                    op_index,
                )
        expected = len(inc) + len(dec)
        if program.ops[op_index].out_dim != expected:
            diag(
                f"op width {program.ops[op_index].out_dim} disagrees "
                f"with metadata group count {expected} (inc {len(inc)} "
                f"+ dec {len(dec)})",
                op_index,
            )
    return diags


def validate_program(program: LoweredProgram) -> None:
    """Errors-only structural check; raises :class:`IRValidationError`.

    This is the pass :func:`~repro.verification.ir.lower_network` runs
    on every cache miss — cheap enough for the lowering hot path, strict
    enough that a malformed program never reaches a transformer.
    """
    errors = [d for d in _structural_diagnostics(program) if d.severity == "error"]
    if errors:
        raise IRValidationError(getattr(program, "source", ""), errors)


# -- full analysis -----------------------------------------------------------


def analyze_program(
    program: LoweredProgram,
    *,
    domain: str | None = None,
    lipschitz_threshold: float = LIPSCHITZ_THRESHOLD,
    expect_piecewise_linear: bool | None = None,
) -> AnalysisReport:
    """Full dataflow pass over one lowered program.

    ``domain`` names an abstract domain that *must* cover every op
    (coverage gaps become IR006 errors); without it, gaps in any
    registered domain are reported as IR106 infos.  When
    ``expect_piecewise_linear`` is unset it is inferred from the
    program's ``source`` tag (the ``/pl`` view suffix).
    """
    from repro.verification.abstraction.domain import (
        get_domain,
        registered_domains,
    )

    source = getattr(program, "source", "") or ""
    if expect_piecewise_linear is None:
        expect_piecewise_linear = source.endswith("/pl")
    report = AnalysisReport(source, program.in_dim, program.out_dim)
    report.diagnostics.extend(_structural_diagnostics(program))

    domain_names = registered_domains()
    if domain is not None:
        get_domain(domain)  # raises ValueError for unknown names
    gaps: dict[str, list[int]] = {name: [] for name in domain_names}

    cumulative = 1.0
    growth_flagged = False
    previous: IROp | None = None
    for index, op in enumerate(program.ops):
        kind = type(op).__name__
        layer = _op_layer(program, index)

        def diag(code: str, severity: str, message: str) -> None:
            report.diagnostics.append(
                Diagnostic(code, severity, message, index, kind, layer)
            )

        gain = _lipschitz_gain(op)
        cumulative *= gain
        supported = tuple(
            name for name in domain_names if get_domain(name).supports(op)
        )
        for name in domain_names:
            if name not in supported:
                gaps[name].append(index)
        report.facts.append(
            OpFact(
                index,
                kind,
                layer,
                op.in_dim,
                op.out_dim,
                sum(int(a.size) for a in _param_arrays(op)),
                gain,
                cumulative,
                supported,
            )
        )

        if isinstance(op, MonotoneOp) and expect_piecewise_linear:
            diag(
                "IR004",
                "error",
                f"monotone op ({op.kind!r}) inside a piecewise-linear "
                f"view; such layers may only appear before the "
                f"verification cut",
            )
        if (
            isinstance(op, (FusedAffineReLU, FusedConvReLU))
            and expect_piecewise_linear
        ):
            diag(
                "IR012",
                "error",
                "fused op inside a piecewise-linear view; the MILP "
                "encoder consumes the unfused program only",
            )
        if domain is not None and domain not in supported:
            diag(
                "IR006",
                "error",
                f"no {domain!r} transformer registered for {kind}",
            )
        if isinstance(op, AffineOp) and op.out_dim:
            zero_rows = int(np.count_nonzero(~np.any(op.weight != 0.0, axis=1)))
            if zero_rows:
                diag(
                    "IR007",
                    "warning",
                    f"{zero_rows} all-zero weight row(s): those output "
                    f"features are constant",
                )
        if isinstance(op, ElementwiseAffineOp) and op.scale.size:
            zero_scales = int(np.count_nonzero(op.scale == 0.0))
            if zero_scales:
                diag(
                    "IR007",
                    "warning",
                    f"{zero_scales} zero scale entr(ies): those features "
                    f"are constant",
                )
        if isinstance(op, (ReLUOp, LeakyReLUOp)) and isinstance(
            previous, (ReLUOp, FusedAffineReLU, FusedConvReLU)
        ):
            diag(
                "IR008",
                "warning",
                "redundant activation: inputs are already non-negative",
            )
        if (
            isinstance(op, ElementwiseAffineOp)
            and op.scale.size
            and np.all(op.scale == 1.0)  # lint: allow(float-eq)
            and np.all(op.shift == 0.0)
        ):
            diag("IR008", "warning", "identity elementwise affine op")
        if isinstance(op, ReshapeOp) and op.in_shape == op.out_shape:
            diag("IR008", "warning", "reshape to the identical shape")
        if not growth_flagged and cumulative > lipschitz_threshold:
            growth_flagged = True
            diag(
                "IR009",
                "warning",
                f"cumulative Lipschitz bound {cumulative:.3g} exceeds "
                f"{lipschitz_threshold:.3g}; downstream interval bounds "
                f"may explode",
            )
        previous = op

    if domain is None:
        for name, indices in gaps.items():
            if indices:
                kinds = sorted(
                    {type(program.ops[i]).__name__ for i in indices}
                )
                report.diagnostics.append(
                    Diagnostic(
                        "IR106",
                        "info",
                        f"domain {name!r} has no transformer for "
                        f"{', '.join(kinds)} (ops {indices})",
                    )
                )
    return report


def analyze_model(
    model: Any,
    *,
    domain: str | None = None,
    lipschitz_threshold: float = LIPSCHITZ_THRESHOLD,
) -> AnalysisReport:
    """Lower a model end-to-end and analyze the resulting program.

    Lowering failures (un-lowerable layers, structural IR violations)
    are captured as IR000 / validator diagnostics in the report instead
    of escaping as exceptions, so callers like the bench runner can
    always embed a report in their error outcomes.
    """
    from repro.verification.ir import lowered_full

    try:
        program = lowered_full(model)
    except IRValidationError as exc:
        report = AnalysisReport("<unlowerable>", 0, 0)
        report.diagnostics.extend(exc.diagnostics)
        return report
    except ValueError as exc:
        report = AnalysisReport("<unlowerable>", 0, 0)
        report.diagnostics.append(
            Diagnostic("IR000", "error", f"lowering failed: {exc}")
        )
        return report
    return analyze_program(
        program, domain=domain, lipschitz_threshold=lipschitz_threshold
    )


def model_error_summary(model: Any, *, domain: str | None = None) -> str | None:
    """One-line error summary for a model, or ``None`` when clean.

    Used by the bench runner to attach analyzer diagnostics to the
    error outcome of an invalid instance.
    """
    report = analyze_model(model, domain=domain)
    if report.ok:
        return None
    return "; ".join(str(d) for d in report.errors[:3])
