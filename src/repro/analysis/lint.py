"""``repro lint`` — repo-specific static rules enforced over the source.

Generic linters cannot know this project's contracts, so this module
encodes them directly as AST checks:

========  ====================  ========================================
code      rule                  contract
========  ====================  ========================================
RL001     deprecated-shim       no internal calls to the PR 4
                                deprecated propagation shims; use the
                                abstract-domain registry
RL002     unseeded-rng          verification paths must not draw from
                                unseeded or global RNG state
RL003     float-eq              no ``==`` / ``!=`` against non-zero
                                float literals in solver/abstraction
                                code (comparisons to ``0.0`` sentinels
                                are exact and allowed)
RL004     pool-picklable        callables handed to process pools must
                                be module-level (lambdas and nested
                                functions do not pickle)
RL005     warn-stacklevel       ``DeprecationWarning`` shims must warn
                                with ``stacklevel=2`` so the caller is
                                blamed, not the shim
========  ====================  ========================================

A finding on a line carrying ``# lint: allow(<rule-or-code>)`` is
suppressed.  Scoped rules (RL002/RL003) only apply to files under
``verification``, ``api`` or ``analysis`` path components.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

#: the PR 4 deprecated propagation shims (see tests/verification/
#: test_deprecated_shims.py); calling any of these outside their
#: defining module is a lint error
DEPRECATED_SHIMS = frozenset(
    {
        "layer_interval",
        "layer_interval_batch",
        "propagate_input_box",
        "propagate_input_box_batch",
        "propagate_batch",
        "transform_batch",
        "propagate_box_batch",
        "propagate_zonotope_batch",
    }
)

#: legacy global-state numpy RNG entry points
_LEGACY_RNG = frozenset(
    {
        "rand",
        "randn",
        "random",
        "random_sample",
        "randint",
        "uniform",
        "normal",
        "choice",
        "shuffle",
        "permutation",
        "seed",
    }
)

#: path components that put a file in scope for RL002/RL003
_SCOPED_PARTS = ("verification", "api", "analysis")

#: methods through which work is handed to a pool/executor
_POOL_METHODS = frozenset({"submit", "map", "apply_async", "starmap"})

RULES: dict[str, tuple[str, str]] = {
    "RL001": ("deprecated-shim", "call to a deprecated propagation shim"),
    "RL002": ("unseeded-rng", "unseeded RNG in a verification path"),
    "RL003": ("float-eq", "float equality against a non-zero literal"),
    "RL004": ("pool-picklable", "unpicklable callable handed to a pool"),
    "RL005": ("warn-stacklevel", "DeprecationWarning without stacklevel>=2"),
}

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([^)]*)\)")


@dataclass(frozen=True)
class LintFinding:
    """One lint rule violation."""

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.rule}] {self.message}"
        )


def _collect_defs(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names of module-level vs nested function definitions."""
    module_defs: set[str] = set()
    nested_defs: set[str] = set()

    def rec(node: ast.AST, in_func: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                (nested_defs if in_func else module_defs).add(child.name)
                rec(child, True)
            elif isinstance(child, ast.Lambda):
                rec(child, True)
            else:
                rec(child, in_func)

    rec(tree, False)
    return module_defs, nested_defs


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_deprecation_category(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id.endswith("DeprecationWarning")
    if isinstance(node, ast.Attribute):
        return node.attr.endswith("DeprecationWarning")
    return False


def _nonzero_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value != 0.0
    )


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, scoped: bool, module_defs: set[str],
                 nested_defs: set[str]) -> None:
        self.path = path
        self.scoped = scoped
        self.module_defs = module_defs
        self.nested_defs = nested_defs
        self.findings: list[LintFinding] = []

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        rule = RULES[code][0]
        self.findings.append(
            LintFinding(
                self.path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                code,
                rule,
                message,
            )
        )

    # -- RL001 / RL002 / RL004 / RL005 (all anchored on calls) -------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node.func)

        if (
            name in DEPRECATED_SHIMS
            and name not in self.module_defs
        ):
            self._flag(
                node,
                "RL001",
                f"call to deprecated shim {name}(); use the "
                f"abstract-domain registry "
                f"(repro.verification.abstraction.get_domain)",
            )

        if self.scoped:
            if (
                name == "default_rng"
                and not node.args
                and not node.keywords
            ):
                self._flag(
                    node,
                    "RL002",
                    "default_rng() without a seed in a verification "
                    "path; results must be reproducible",
                )
            if (
                name in _LEGACY_RNG
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, (ast.Name, ast.Attribute))
                and (
                    (
                        isinstance(node.func.value, ast.Attribute)
                        and node.func.value.attr == "random"
                    )
                    or (
                        isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "random"
                    )
                )
            ):
                self._flag(
                    node,
                    "RL002",
                    f"legacy global-state RNG call .random.{name}(); "
                    f"use np.random.default_rng(seed)",
                )

        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _POOL_METHODS
            and self._looks_like_pool(node.func.value)
            and node.args
        ):
            self._check_picklable(node.args[0], node.func.attr)

        if name and name.endswith("PoolExecutor"):
            for kw in node.keywords:
                if kw.arg == "initializer":
                    self._check_picklable(kw.value, "initializer")

        if name == "warn":
            category = None
            if len(node.args) >= 2:
                category = node.args[1]
            for kw in node.keywords:
                if kw.arg == "category":
                    category = kw.value
            if _is_deprecation_category(category):
                stacklevel = None
                for kw in node.keywords:
                    if kw.arg == "stacklevel":
                        stacklevel = kw.value
                if stacklevel is None:
                    self._flag(
                        node,
                        "RL005",
                        "DeprecationWarning without stacklevel=; the "
                        "warning will blame the shim, not its caller",
                    )
                elif (
                    isinstance(stacklevel, ast.Constant)
                    and isinstance(stacklevel.value, int)
                    and stacklevel.value < 2
                ):
                    self._flag(
                        node,
                        "RL005",
                        f"DeprecationWarning with stacklevel="
                        f"{stacklevel.value}; must be >= 2",
                    )
        self.generic_visit(node)

    @staticmethod
    def _looks_like_pool(receiver: ast.expr) -> bool:
        if isinstance(receiver, ast.Name):
            name = receiver.id
        elif isinstance(receiver, ast.Attribute):
            name = receiver.attr
        else:
            return False
        lowered = name.lower()
        return "pool" in lowered or "executor" in lowered

    def _check_picklable(self, fn: ast.expr, where: str) -> None:
        if isinstance(fn, ast.Lambda):
            self._flag(
                fn,
                "RL004",
                f"lambda passed to pool {where}; process pools require "
                f"a picklable module-level callable",
            )
        elif isinstance(fn, ast.Name) and fn.id in self.nested_defs:
            self._flag(
                fn,
                "RL004",
                f"nested function {fn.id!r} passed to pool {where}; "
                f"process pools require a module-level callable",
            )

    # -- RL003 -------------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.scoped and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            operands = [node.left, *node.comparators]
            if any(_nonzero_float_literal(o) for o in operands):
                self._flag(
                    node,
                    "RL003",
                    "float ==/!= against a non-zero literal in solver/"
                    "abstraction code; compare with a tolerance",
                )
        self.generic_visit(node)


def _in_scope(path: Path) -> bool:
    return any(part in _SCOPED_PARTS for part in path.parts)


def lint_source(source: str, path: str | Path) -> list[LintFinding]:
    """Lint one Python source string; ``path`` drives rule scoping."""
    path = Path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            LintFinding(
                str(path),
                exc.lineno or 0,
                exc.offset or 0,
                "RL000",
                "syntax-error",
                f"file does not parse: {exc.msg}",
            )
        ]
    module_defs, nested_defs = _collect_defs(tree)
    checker = _Checker(str(path), _in_scope(path), module_defs, nested_defs)
    checker.visit(tree)

    lines = source.splitlines()
    kept: list[LintFinding] = []
    for finding in checker.findings:
        line = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        match = _ALLOW_RE.search(line)
        if match:
            allowed = {
                token.strip().lower()
                for token in match.group(1).split(",")
            }
            if finding.code.lower() in allowed or finding.rule in allowed:
                continue
        kept.append(finding)
    return kept


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            out.update(
                f
                for f in p.rglob("*.py")
                if "__pycache__" not in f.parts
                and not any(part.startswith(".") for part in f.parts)
            )
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def lint_paths(
    paths: Sequence[str | Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[LintFinding]:
    """Lint files/directories; filter rules by code or rule name."""

    def norm(tokens: Iterable[str]) -> set[str]:
        out: set[str] = set()
        for token in tokens:
            token = token.strip().lower()
            out.add(token)
            for code, (rule, _) in RULES.items():
                if token in (code.lower(), rule):
                    out.update({code.lower(), rule})
        return out

    selected = norm(select) if select else None
    ignored = norm(ignore) if ignore else set()
    findings: list[LintFinding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                LintFinding(str(path), 0, 0, "RL000", "io-error", str(exc))
            )
            continue
        for finding in lint_source(source, path):
            key = {finding.code.lower(), finding.rule}
            if selected is not None and not (key & selected):
                continue
            if key & ignored:
                continue
            findings.append(finding)
    return findings


def render_findings(findings: Sequence[LintFinding]) -> str:
    lines = [str(f) for f in findings]
    lines.append(
        f"{len(findings)} finding(s)" if findings else "clean: 0 findings"
    )
    return "\n".join(lines)
