"""Cut-layer feature extraction ``f^(l)`` over datasets."""

from __future__ import annotations

import numpy as np

from repro.nn.sequential import Sequential


def extract_features(
    model: Sequential,
    images: np.ndarray,
    cut_layer: int,
    batch_size: int = 256,
) -> np.ndarray:
    """Flat feature matrix ``(N, d_l)`` of ``f^(l)`` over a batch of images.

    Batched to bound the memory of the convolutional prefix.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    images = np.asarray(images, dtype=float)
    chunks = []
    for start in range(0, images.shape[0], batch_size):
        chunk = images[start : start + batch_size]
        chunks.append(model.prefix_apply(chunk, cut_layer, flat=True))
    return np.concatenate(chunks, axis=0)
