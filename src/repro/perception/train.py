"""Training entry point for the direct-perception network."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import Adam, Sequential, TrainingHistory, mse_loss, train
from repro.scenario.dataset import Dataset


@dataclass
class PerceptionTrainingResult:
    """Trained model plus basic fit diagnostics."""

    model: Sequential
    history: TrainingHistory
    val_mae: np.ndarray  #: per-affordance mean absolute error on validation

    def summary(self) -> str:
        return (
            f"epochs={self.history.epochs_run} "
            f"train_loss={self.history.train_loss[-1]:.5f} "
            f"val_mae(waypoint)={self.val_mae[0]:.3f}m "
            f"val_mae(orientation)={self.val_mae[1]:.4f}rad"
        )


def train_direct_perception(
    model: Sequential,
    train_data: Dataset,
    val_data: Dataset,
    *,
    epochs: int = 30,
    batch_size: int = 32,
    lr: float = 1e-3,
    patience: int | None = 8,
    seed: int = 0,
    verbose: bool = False,
) -> PerceptionTrainingResult:
    """Fit the affordance regression with Adam + MSE + early stopping."""
    optimizer = Adam(model.parameters(), lr=lr)
    history = train(
        model,
        optimizer,
        mse_loss,
        train_data.images,
        train_data.affordances,
        epochs=epochs,
        batch_size=batch_size,
        x_val=val_data.images,
        y_val=val_data.affordances,
        patience=patience,
        seed=seed,
        verbose=verbose,
    )
    predictions = model.forward(val_data.images, training=False)
    val_mae = np.mean(np.abs(predictions - val_data.affordances), axis=0)
    return PerceptionTrainingResult(model=model, history=history, val_mae=val_mae)
