"""Direct-perception network builders.

The architecture mirrors the paper's setting at reduced scale: a
convolutional feature stack ("deep layers with convolution" in Figure 1)
followed by close-to-output layers that are exclusively Dense, BatchNorm
and ReLU — precisely the layer algebra the MILP reduction of Section V
supports.  The regression head outputs the two affordances
``(waypoint_lateral, orientation)``.
"""

from __future__ import annotations

from repro.nn import (
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)


def build_direct_perception_network(
    input_shape: tuple[int, int, int] = (1, 32, 32),
    feature_width: int = 16,
    seed: int = 0,
) -> Sequential:
    """Convolutional direct-perception network.

    Layer indices (1-based, as in the paper's ``g^(l)`` convention)::

         1  Conv2D(8, 5x5, stride 2, pad 2)
         2  ReLU
         3  MaxPool2D(2)
         4  Conv2D(16, 3x3, stride 2, pad 1)
         5  ReLU
         6  Flatten
         7  Dense(32)
         8  BatchNorm
         9  ReLU
        10  Dense(feature_width)      <- close-to-output features
        11  ReLU                      <- default verification cut layer l
        12  Dense(2)                  <- affordance outputs (layer L)

    The default cut layer (:func:`default_cut_layer`) is 11: its
    ``feature_width`` post-ReLU neurons are the ``n^17_i`` of Figure 1.
    """
    if feature_width < 2:
        raise ValueError(f"feature_width must be >= 2, got {feature_width}")
    return Sequential(
        [
            Conv2D(8, 5, stride=2, padding=2),
            ReLU(),
            MaxPool2D(2),
            Conv2D(16, 3, stride=2, padding=1),
            ReLU(),
            Flatten(),
            Dense(32),
            BatchNorm(),
            ReLU(),
            Dense(feature_width),
            ReLU(),
            Dense(2),
        ],
        input_shape=input_shape,
        seed=seed,
    )


def default_cut_layer(model: Sequential) -> int:
    """The canonical close-to-output cut: the last ReLU before the head."""
    for index in range(model.num_layers - 1, 0, -1):
        if type(model.layers[index - 1]).__name__ == "ReLU":
            return index
    raise ValueError("model has no ReLU layer to cut at")


def build_mlp_perception_network(
    input_dim: int = 8,
    hidden: tuple[int, ...] = (16, 16),
    feature_width: int = 8,
    seed: int = 0,
) -> Sequential:
    """Small all-dense variant used by tests and fast examples."""
    layers: list = []
    for width in hidden:
        layers.extend([Dense(width), ReLU()])
    layers.extend([Dense(feature_width), ReLU(), Dense(2)])
    return Sequential(layers, input_shape=(input_dim,), seed=seed)
