"""The direct-perception stack.

- :mod:`repro.perception.network` — builders for the direct perception
  network (camera image → affordances) whose close-to-output layers are
  Dense / BatchNorm / ReLU, matching the paper's Audi network structure;
- :mod:`repro.perception.train` — training entry points;
- :mod:`repro.perception.features` — extraction of cut-layer feature
  vectors ``f^(l)(in)`` over datasets;
- :mod:`repro.perception.characterizer` — the learned input property
  characterizer ``h^phi_l`` of Section II.A.
"""

from repro.perception.characterizer import Characterizer, train_characterizer
from repro.perception.features import extract_features
from repro.perception.network import (
    build_direct_perception_network,
    build_mlp_perception_network,
    default_cut_layer,
)
from repro.perception.train import train_direct_perception

__all__ = [
    "Characterizer",
    "build_direct_perception_network",
    "build_mlp_perception_network",
    "default_cut_layer",
    "extract_features",
    "train_characterizer",
    "train_direct_perception",
]
