"""The input property characterizer ``h^phi_l`` (Section II.A).

A small binary classifier whose input is the cut-layer feature vector of
the direct perception network and whose single output is an acceptance
logit: ``h(n̂) = 1  iff  logit(n̂) >= 0``.  Per the paper it is trained
to (ideally) 100% training accuracy; its residual held-out error feeds
the statistical guarantee of Section III.

The characterizer is itself a pure Dense/ReLU network, so the MILP
encoder can conjoin its acceptance condition with the verified
sub-network — the key trick that turns an image-level ``phi`` into a
linear-arithmetic constraint at the cut layer.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.nn import Adam, Dense, ReLU, Sequential, TrainingHistory
from repro.nn.graph import PiecewiseLinearNetwork
from repro.nn.losses import bce_with_logits_loss
from repro.nn.training import train


@dataclass
class Characterizer:
    """A trained input property characterizer attached at a cut layer."""

    property_name: str
    cut_layer: int
    network: Sequential  #: features (d_l,) -> logit (1,)
    train_accuracy: float
    val_accuracy: float
    threshold: float = 0.0

    def logits(self, features: np.ndarray) -> np.ndarray:
        """Acceptance logits for a feature matrix ``(N, d_l)``."""
        return self.network.forward(np.asarray(features, dtype=float))[:, 0]

    def decide(self, features: np.ndarray) -> np.ndarray:
        """Boolean decisions ``h(n̂) = 1`` per feature vector."""
        return self.logits(features) >= self.threshold

    def as_piecewise_linear(self) -> PiecewiseLinearNetwork:
        """Lower to primitive ops for the MILP encoder."""
        return self.network.full_network()

    @property
    def is_perfect_on_training(self) -> bool:
        """Did training reach the paper's 100% training-accuracy target?"""
        return self.train_accuracy >= 1.0 - 1e-12


def build_characterizer_network(
    feature_dim: int, hidden: tuple[int, ...] = (8,), seed: int = 0
) -> Sequential:
    """Dense/ReLU binary classifier ending in a single logit."""
    if feature_dim < 1:
        raise ValueError(f"feature_dim must be positive, got {feature_dim}")
    layers: list = []
    for width in hidden:
        layers.extend([Dense(width), ReLU()])
    layers.append(Dense(1))
    return Sequential(layers, input_shape=(feature_dim,), seed=seed)


def train_characterizer(
    property_name: str,
    cut_layer: int,
    train_features: np.ndarray,
    train_labels: np.ndarray,
    val_features: np.ndarray,
    val_labels: np.ndarray,
    *,
    hidden: tuple[int, ...] = (8,),
    epochs: int = 200,
    batch_size: int = 32,
    lr: float = 5e-3,
    seed: int = 0,
    target_train_accuracy: float = 1.0,
    verbose: bool = False,
) -> tuple[Characterizer, TrainingHistory]:
    """Train ``h^phi_l`` on cut-layer features and oracle labels.

    Training runs for at most ``epochs`` epochs but stops as soon as the
    training accuracy reaches ``target_train_accuracy`` (the paper's
    "100% success rate on the training data" requirement — achievable
    for properties the features still carry information about, and
    conspicuously *not* achievable for bottlenecked properties like
    adjacent-lane traffic; see experiment E5).
    """
    train_features = np.asarray(train_features, dtype=float)
    train_labels = np.asarray(train_labels, dtype=float).reshape(-1, 1)
    val_features = np.asarray(val_features, dtype=float)
    val_labels = np.asarray(val_labels, dtype=float).reshape(-1, 1)
    if train_features.shape[0] != train_labels.shape[0]:
        raise ValueError("train features/labels length mismatch")

    network = build_characterizer_network(train_features.shape[1], hidden, seed)
    optimizer = Adam(network.parameters(), lr=lr)
    history = TrainingHistory()
    for _ in range(epochs):
        epoch_history = train(
            network,
            optimizer,
            bce_with_logits_loss,
            train_features,
            train_labels,
            epochs=1,
            batch_size=batch_size,
            seed=seed,
            verbose=False,
        )
        history.train_loss.extend(epoch_history.train_loss)
        train_acc = _accuracy(network, train_features, train_labels)
        if verbose:  # pragma: no cover - logging only
            print(f"characterizer[{property_name}] acc={train_acc:.4f}")
        if train_acc >= target_train_accuracy:
            break

    characterizer = Characterizer(
        property_name=property_name,
        cut_layer=cut_layer,
        network=network,
        train_accuracy=_accuracy(network, train_features, train_labels),
        val_accuracy=_accuracy(network, val_features, val_labels),
    )
    return characterizer, history


def _accuracy(network: Sequential, features: np.ndarray, labels: np.ndarray) -> float:
    logits = network.forward(features, training=False)
    return float(np.mean((logits >= 0.0) == (labels >= 0.5)))


def calibrate_threshold(
    characterizer: Characterizer,
    features: np.ndarray,
    labels: np.ndarray,
    target_gamma: float,
) -> Characterizer:
    """Lower the acceptance threshold until ``gamma <= target_gamma``.

    Section III: the dangerous Table-I cell is ``gamma = P(h = 0, phi)``
    — positive samples the characterizer rejects.  Lowering the logit
    threshold moves rejected positives into the accepted region (raising
    ``beta``, which is harmless for the safety argument: the proof then
    simply covers more inputs).  Returns a copy of the characterizer with
    the calibrated threshold; raises if even accepting everything cannot
    reach the target (impossible for ``target_gamma >= 0``).
    """
    if not 0.0 <= target_gamma < 1.0:
        raise ValueError(f"target_gamma must be in [0, 1), got {target_gamma}")
    features = np.asarray(features, dtype=float)
    labels = np.asarray(labels).astype(bool).ravel()
    if features.shape[0] != labels.shape[0]:
        raise ValueError("features/labels length mismatch")
    n = labels.shape[0]
    logits = characterizer.logits(features)

    current_gamma = float(np.sum((logits < characterizer.threshold) & labels)) / n
    if current_gamma <= target_gamma or not labels.any():
        return characterizer

    # accept the (m+1)-th smallest positive logit and everything above:
    # at most m positives (those strictly below) remain rejected
    allowed_misses = int(np.floor(target_gamma * n))
    positive_logits = np.sort(logits[labels])
    index = min(allowed_misses, positive_logits.size - 1)
    return dataclasses.replace(characterizer, threshold=float(positive_logits[index]))
