"""Portable model/property interchange.

The ingestion layer of the stack: read and write networks as
ONNX-subset files (:mod:`repro.interchange.onnx`), properties as
VNN-LIB fragments (:mod:`repro.interchange.vnnlib`), and whole
benchmark instance directories in the VNN-COMP ``instances.csv``
convention (:mod:`repro.interchange.instances`).  The competition
harness in :mod:`repro.bench` runs on top of these.
"""

from repro.interchange.instances import (
    BenchmarkInstance,
    combine_disjunct_verdicts,
    export_instance,
    instance_campaign,
    instance_engine,
    load_instances,
    write_index,
)
from repro.interchange.onnx import (
    OnnxError,
    export_onnx,
    import_onnx,
    model_to_onnx_bytes,
    onnx_bytes_to_model,
)
from repro.interchange.vnnlib import (
    VnnLibError,
    VnnLibProperty,
    format_vnnlib,
    parse_vnnlib,
    read_vnnlib,
    write_vnnlib,
)

__all__ = [
    "BenchmarkInstance",
    "OnnxError",
    "VnnLibError",
    "VnnLibProperty",
    "combine_disjunct_verdicts",
    "export_instance",
    "export_onnx",
    "format_vnnlib",
    "import_onnx",
    "instance_campaign",
    "instance_engine",
    "load_instances",
    "model_to_onnx_bytes",
    "onnx_bytes_to_model",
    "parse_vnnlib",
    "read_vnnlib",
    "write_index",
    "write_vnnlib",
]
