"""VNN-LIB-style property interchange.

VNN-COMP specifies verification queries as SMT-LIB2 fragments over
input variables ``X_0 … X_{n-1}`` and output variables ``Y_0 …
Y_{m-1}``: box constraints on the inputs plus a (disjunction of
conjunctions of) linear assertions on the outputs describing the
**counterexample** region — the query is SAT iff some input in the box
reaches it.  That is exactly this stack's reachability question: each
output conjunction compiles to one
:class:`~repro.properties.risk.RiskCondition`, the input box becomes
the verified region, and the whole property becomes one
:class:`~repro.api.VerificationQuery` per disjunct (collected into a
:class:`~repro.api.Campaign` by :mod:`repro.interchange.instances`).

Supported grammar (a comment line starts with ``;``)::

    (declare-const X_<i> Real)
    (declare-const Y_<j> Real)
    (assert (<= X_0 0.5))                      ; input box, one bound each
    (assert (>= (+ Y_0 (* -1.0 Y_1)) 1.0))    ; linear output atom
    (assert (or (and atom...) (and atom...))) ; disjunction of conjunctions

Atoms compare two linear expressions built from ``+ - *``, numbers and
variables; input atoms must bound a single ``X_i`` by a constant, and an
assertion may not mix ``X`` and ``Y`` variables.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.properties.risk import LinearInequality, RiskCondition


class VnnLibError(ValueError):
    """Raised when a property file is outside the supported grammar."""


@dataclass(frozen=True)
class VnnLibProperty:
    """One parsed property: an input box plus counterexample disjuncts.

    The property is violated (the instance is ``sat``) iff some input in
    ``[input_lower, input_upper]`` produces an output satisfying at
    least one of ``disjuncts``; it holds (``unsat``) iff every disjunct
    is unreachable.
    """

    input_lower: np.ndarray  #: flat (d_in,)
    input_upper: np.ndarray
    disjuncts: tuple[RiskCondition, ...]
    name: str = "property"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "input_lower", np.asarray(self.input_lower, dtype=float)
        )
        object.__setattr__(
            self, "input_upper", np.asarray(self.input_upper, dtype=float)
        )
        if self.input_lower.shape != self.input_upper.shape:
            raise VnnLibError("input bound shapes differ")
        if np.any(self.input_lower > self.input_upper):
            raise VnnLibError("input box has lower > upper")
        if not self.disjuncts:
            raise VnnLibError("property needs at least one output disjunct")

    @property
    def in_dim(self) -> int:
        return int(self.input_lower.size)

    @property
    def out_dim(self) -> int:
        return self.disjuncts[0].dim


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------

_TOKEN = re.compile(r"\(|\)|[^\s()]+")


def _tokenize(text: str) -> list[str]:
    lines = [line.split(";", 1)[0] for line in text.splitlines()]
    return _TOKEN.findall("\n".join(lines))


def _read_sexprs(tokens: list[str]):
    """Parse a token stream into nested lists (atoms stay strings)."""
    stack: list[list] = [[]]
    for token in tokens:
        if token == "(":
            stack.append([])
        elif token == ")":
            if len(stack) == 1:
                raise VnnLibError("unbalanced ')'")
            done = stack.pop()
            stack[-1].append(done)
        else:
            stack[-1].append(token)
    if len(stack) != 1:
        raise VnnLibError("unbalanced '('")
    return stack[0]


_VAR = re.compile(r"^([XY])_(\d+)$")


def _linear(expr) -> tuple[dict[tuple[str, int], float], float]:
    """Fold an s-expression into ``({variable: coeff}, constant)``."""
    if isinstance(expr, str):
        match = _VAR.match(expr)
        if match:
            return {(match.group(1), int(match.group(2))): 1.0}, 0.0
        try:
            return {}, float(expr)
        except ValueError:
            raise VnnLibError(f"unknown symbol {expr!r}") from None
    if not expr:
        raise VnnLibError("empty expression")
    head, *args = expr
    if head == "+":
        coeffs: dict[tuple[str, int], float] = {}
        const = 0.0
        for arg in args:
            c, k = _linear(arg)
            for key, value in c.items():
                coeffs[key] = coeffs.get(key, 0.0) + value
            const += k
        return coeffs, const
    if head == "-":
        if not args:
            raise VnnLibError("'-' needs at least one argument")
        coeffs, const = _linear(args[0])
        coeffs = dict(coeffs)
        if len(args) == 1:
            return {k: -v for k, v in coeffs.items()}, -const
        for arg in args[1:]:
            c, k = _linear(arg)
            for key, value in c.items():
                coeffs[key] = coeffs.get(key, 0.0) - value
            const -= k
        return coeffs, const
    if head == "*":
        # products must be (constant * ... * at-most-one variable term)
        factors = [_linear(arg) for arg in args]
        var_factors = [f for f in factors if f[0]]
        scale = 1.0
        for coeffs, const in factors:
            if not coeffs:
                scale *= const
        if not var_factors:
            return {}, scale
        if len(var_factors) > 1:
            raise VnnLibError("nonlinear product of variables")
        coeffs, const = var_factors[0]
        return {k: v * scale for k, v in coeffs.items()}, const * scale
    raise VnnLibError(f"unsupported operator {head!r} in linear expression")


def _atom(expr, n_outputs: int):
    """One comparison → ('X', index, op, bound) or a LinearInequality on Y."""
    if not isinstance(expr, list) or len(expr) != 3 or expr[0] not in ("<=", ">="):
        raise VnnLibError(f"expected (<=|>= lhs rhs), got {expr!r}")
    op = expr[0]
    left_c, left_k = _linear(expr[1])
    right_c, right_k = _linear(expr[2])
    coeffs = dict(left_c)
    for key, value in right_c.items():
        coeffs[key] = coeffs.get(key, 0.0) - value
    coeffs = {key: value for key, value in coeffs.items() if value != 0.0}
    rhs = right_k - left_k
    kinds = {kind for kind, _ in coeffs}
    if not coeffs:
        raise VnnLibError(f"constant comparison {expr!r}")
    if kinds == {"X"}:
        if len(coeffs) != 1:
            raise VnnLibError(
                f"input constraints must bound a single X variable: {expr!r}"
            )
        (_, index), coeff = next(iter(coeffs.items()))
        if coeff < 0:
            coeff, rhs, op = -coeff, -rhs, "<=" if op == ">=" else ">="
        if coeff != 1.0:
            rhs /= coeff
        return ("X", index, op, rhs)
    if kinds == {"Y"}:
        row = [0.0] * n_outputs
        for (_, index), value in coeffs.items():
            if index >= n_outputs:
                raise VnnLibError(f"Y_{index} was never declared")
            row[index] = value
        return LinearInequality(tuple(row), op, rhs)
    raise VnnLibError(f"assertion mixes X and Y variables: {expr!r}")


def parse_vnnlib(text: str, name: str = "property") -> VnnLibProperty:
    """Parse VNN-LIB text into a :class:`VnnLibProperty`."""
    declared = {"X": set(), "Y": set()}
    input_bounds: dict[int, list[float | None]] = {}
    conjunction: list[LinearInequality] = []
    disjuncts: list[tuple[LinearInequality, ...]] = []

    def handle_atom(atom, into: list | None) -> None:
        if isinstance(atom, LinearInequality):
            (conjunction if into is None else into).append(atom)
            return
        _, index, op, bound = atom
        if index not in declared["X"]:
            raise VnnLibError(f"X_{index} was never declared")
        if into is not None:
            raise VnnLibError("input bounds inside (or ...) are not supported")
        entry = input_bounds.setdefault(index, [None, None])
        slot = 0 if op == ">=" else 1
        best = max if op == ">=" else min
        entry[slot] = bound if entry[slot] is None else best(entry[slot], bound)

    for expr in _read_sexprs(_tokenize(text)):
        if not isinstance(expr, list) or not expr:
            raise VnnLibError(f"unexpected top-level token {expr!r}")
        head = expr[0]
        if head == "declare-const":
            if len(expr) != 3 or expr[2] != "Real":
                raise VnnLibError(f"unsupported declaration {expr!r}")
            match = _VAR.match(expr[1])
            if not match:
                raise VnnLibError(f"unsupported variable name {expr[1]!r}")
            declared[match.group(1)].add(int(match.group(2)))
        elif head == "assert":
            if len(expr) != 2:
                raise VnnLibError(f"malformed assert {expr!r}")
            body = expr[1]
            n_outputs = (max(declared["Y"]) + 1) if declared["Y"] else 0
            if isinstance(body, list) and body and body[0] == "or":
                for branch in body[1:]:
                    atoms: list[LinearInequality] = []
                    if isinstance(branch, list) and branch and branch[0] == "and":
                        for inner in branch[1:]:
                            handle_atom(_atom(inner, n_outputs), atoms)
                    else:
                        handle_atom(_atom(branch, n_outputs), atoms)
                    disjuncts.append(tuple(atoms))
            elif isinstance(body, list) and body and body[0] == "and":
                for inner in body[1:]:
                    handle_atom(_atom(inner, n_outputs), None)
            else:
                handle_atom(_atom(body, n_outputs), None)
        else:
            raise VnnLibError(f"unsupported top-level form {head!r}")

    if not declared["X"] or not declared["Y"]:
        raise VnnLibError("property must declare X_* and Y_* variables")
    if declared["X"] != set(range(max(declared["X"]) + 1)):
        raise VnnLibError("X variables must be contiguous from X_0")
    if declared["Y"] != set(range(max(declared["Y"]) + 1)):
        raise VnnLibError("Y variables must be contiguous from Y_0")

    n_inputs = max(declared["X"]) + 1
    lower = np.empty(n_inputs)
    upper = np.empty(n_inputs)
    for index in range(n_inputs):
        bounds = input_bounds.get(index)
        if bounds is None or bounds[0] is None or bounds[1] is None:
            raise VnnLibError(f"X_{index} is missing a lower or upper bound")
        lower[index], upper[index] = bounds

    if conjunction:
        disjuncts.append(tuple(conjunction))
    risk_disjuncts = tuple(
        RiskCondition(
            f"{name}-d{position}" if len(disjuncts) > 1 else name,
            atoms,
            description=" AND ".join(str(a) for a in atoms),
        )
        for position, atoms in enumerate(disjuncts)
        if atoms
    )
    return VnnLibProperty(lower, upper, risk_disjuncts, name=name)


def read_vnnlib(path: str | Path) -> VnnLibProperty:
    """Parse a ``.vnnlib`` file."""
    path = Path(path)
    return parse_vnnlib(path.read_text(), name=path.stem)


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------


def _format_inequality(ineq: LinearInequality) -> str:
    terms = [
        f"Y_{i}" if c == 1.0 else f"(* {c:.17g} Y_{i})"
        for i, c in enumerate(ineq.coeffs)
        if c != 0.0
    ]
    lhs = terms[0] if len(terms) == 1 else f"(+ {' '.join(terms)})"
    return f"({ineq.op} {lhs} {ineq.rhs:.17g})"


def format_vnnlib(
    input_lower: np.ndarray,
    input_upper: np.ndarray,
    disjuncts: Sequence[RiskCondition],
    comment: str = "",
) -> str:
    """Render a property in the grammar :func:`parse_vnnlib` accepts."""
    lower = np.asarray(input_lower, dtype=float).ravel()
    upper = np.asarray(input_upper, dtype=float).ravel()
    if lower.shape != upper.shape:
        raise VnnLibError("input bound shapes differ")
    if not disjuncts:
        raise VnnLibError("property needs at least one output disjunct")
    out_dim = disjuncts[0].dim
    lines = []
    if comment:
        lines += [f"; {line}" for line in comment.splitlines()]
    lines += [f"(declare-const X_{i} Real)" for i in range(lower.size)]
    lines += [f"(declare-const Y_{j} Real)" for j in range(out_dim)]
    lines.append("")
    lines.append("; input box")
    for i in range(lower.size):
        lines.append(f"(assert (>= X_{i} {lower[i]:.17g}))")
        lines.append(f"(assert (<= X_{i} {upper[i]:.17g}))")
    lines.append("")
    lines.append("; counterexample region (sat = risk reachable)")
    if len(disjuncts) == 1:
        for ineq in disjuncts[0].inequalities:
            lines.append(f"(assert {_format_inequality(ineq)})")
    else:
        branches = [
            "(and " + " ".join(_format_inequality(i) for i in d.inequalities) + ")"
            for d in disjuncts
        ]
        lines.append(f"(assert (or {' '.join(branches)}))")
    return "\n".join(lines) + "\n"


def write_vnnlib(
    path: str | Path,
    input_lower: np.ndarray,
    input_upper: np.ndarray,
    disjuncts: Sequence[RiskCondition],
    comment: str = "",
) -> Path:
    """Write a ``.vnnlib`` file; the inverse of :func:`read_vnnlib`."""
    path = Path(path)
    path.write_text(format_vnnlib(input_lower, input_upper, disjuncts, comment))
    return path
