"""On-disk benchmark instances: ``model.onnx`` + ``property.vnnlib`` pairs.

A **benchmark instance directory** follows the VNN-COMP convention: an
``instances.csv`` whose rows are

    ``<model>.onnx, <property>.vnnlib, <timeout seconds>[, <expected>]``

with the optional fourth column recording the ground-truth verdict
(``sat`` / ``unsat``) when known — the scorer uses it to flag unsound
answers, CHC-COMP style.  :func:`load_instances` reads such a
directory; :func:`export_instance` is the inverse, turning an in-repo
``(model, input box, risks)`` workload into files, which is how the
bundled suites in :mod:`repro.bench.suites` are generated.

:func:`instance_campaign` compiles a parsed property into one
:class:`~repro.api.VerificationQuery` per output disjunct; the
instance-level verdict is ``sat`` iff **any** disjunct is reachable and
``unsat`` iff **all** are proved unreachable.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.api import Campaign, VerificationEngine, VerificationQuery
from repro.interchange.onnx import export_onnx, import_onnx
from repro.interchange.vnnlib import VnnLibProperty, read_vnnlib, write_vnnlib
from repro.nn.sequential import Sequential
from repro.properties.risk import RiskCondition

INDEX_NAME = "instances.csv"

#: instance-level verdict values
SAT, UNSAT, UNKNOWN = "sat", "unsat", "unknown"


@dataclass(frozen=True)
class BenchmarkInstance:
    """One row of an ``instances.csv``: a model/property pair + budget."""

    name: str
    model_path: Path
    property_path: Path
    timeout: float
    expected: str | None = None  #: ground-truth verdict when known

    def load_model(self) -> Sequential:
        return import_onnx(self.model_path)

    def load_property(self) -> VnnLibProperty:
        return read_vnnlib(self.property_path)


def load_instances(directory: str | Path) -> list[BenchmarkInstance]:
    """Parse ``directory/instances.csv`` into instances (paths resolved)."""
    directory = Path(directory)
    index = directory / INDEX_NAME
    if not index.is_file():
        raise FileNotFoundError(
            f"{directory} is not a benchmark instance directory "
            f"(missing {INDEX_NAME})"
        )
    rows = []
    for row_number, row in enumerate(csv.reader(index.open())):
        row = [cell.strip() for cell in row if cell.strip()]
        if not row or row[0].startswith("#"):
            continue
        if len(row) not in (3, 4):
            raise ValueError(
                f"{index}:{row_number + 1}: expected "
                f"'model.onnx, property.vnnlib, timeout[, expected]', got {row}"
            )
        model_path = directory / row[0]
        property_path = directory / row[1]
        for path in (model_path, property_path):
            if not path.is_file():
                raise FileNotFoundError(f"{index}:{row_number + 1}: missing {path}")
        expected = row[3].lower() if len(row) == 4 else None
        if expected is not None and expected not in (SAT, UNSAT, UNKNOWN):
            raise ValueError(
                f"{index}:{row_number + 1}: expected verdict must be "
                f"sat/unsat/unknown, got {expected!r}"
            )
        rows.append((model_path, property_path, float(row[2]), expected))
    if not rows:
        raise ValueError(f"{index} lists no instances")

    # instance names key the verdict matrix and the cross-track
    # consistency check, so they must be unique: VNN-COMP indexes reuse
    # one property against many models, so qualify the property stem
    # with the model stem (and, as a last resort, the row number)
    # whenever the short name would collide.
    stem_counts: dict[str, int] = {}
    for _, property_path, _, _ in rows:
        stem = property_path.stem
        stem_counts[stem] = stem_counts.get(stem, 0) + 1
    instances = []
    names_seen: set[str] = set()
    for position, (model_path, property_path, timeout, expected) in enumerate(rows):
        name = property_path.stem
        if stem_counts[name] > 1:
            name = f"{model_path.stem}-{name}"
        if name in names_seen:
            name = f"{name}-{position}"
        names_seen.add(name)
        instances.append(
            BenchmarkInstance(
                name=name,
                model_path=model_path,
                property_path=property_path,
                timeout=timeout,
                expected=expected,
            )
        )
    return instances


def write_index(directory: str | Path, instances: Sequence[BenchmarkInstance]) -> Path:
    """Write ``instances.csv`` for instances living in ``directory``."""
    directory = Path(directory)
    index = directory / INDEX_NAME
    with index.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for instance in instances:
            row = [
                instance.model_path.name,
                instance.property_path.name,
                f"{instance.timeout:g}",
            ]
            if instance.expected is not None:
                row.append(instance.expected)
            writer.writerow(row)
    return index


def export_instance(
    directory: str | Path,
    name: str,
    model: Sequential,
    input_lower: np.ndarray | float,
    input_upper: np.ndarray | float,
    risks: Sequence[RiskCondition],
    timeout: float = 60.0,
    expected: str | None = None,
    model_filename: str | None = None,
    comment: str = "",
) -> BenchmarkInstance:
    """Write one instance (``.onnx`` + ``.vnnlib``) into ``directory``.

    ``input_lower``/``input_upper`` broadcast over the model's input
    shape; ``risks`` become the property's output disjuncts.  Several
    instances may share one model file via ``model_filename``.  The
    caller still has to :func:`write_index` the returned instances.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    model_name = model_filename or f"{name}.onnx"
    model_path = directory / model_name
    if not model_path.exists():
        export_onnx(model, model_path, name=model_name.removesuffix(".onnx"))
    shape = model.input_shape
    lower = np.broadcast_to(np.asarray(input_lower, dtype=float), shape).ravel()
    upper = np.broadcast_to(np.asarray(input_upper, dtype=float), shape).ravel()
    property_path = write_vnnlib(
        directory / f"{name}.vnnlib", lower, upper, risks, comment=comment
    )
    return BenchmarkInstance(
        name=name,
        model_path=model_path,
        property_path=property_path,
        timeout=timeout,
        expected=expected,
    )


# ---------------------------------------------------------------------------
# compiling instances into engine campaigns
# ---------------------------------------------------------------------------


def instance_engine(
    model: Sequential,
    prop: VnnLibProperty,
    solver: str = "branch-and-bound",
    set_name: str = "instance",
    **engine_options,
) -> VerificationEngine:
    """Engine for one instance: earliest piecewise-linear cut, sound set.

    The input box is registered with input-region provenance, so
    ``cegar`` tracks can split it.  For fully piecewise-linear models
    the cut is layer 0 and the verified set *is* the input box — the
    verdict is exact, as VNN-COMP semantics require; models with a
    non-piecewise-linear prefix get the earliest valid cut and a sound
    over-approximation (``unsat`` stays sound, ``sat`` witnesses are
    replayed through the real network before being trusted).
    """
    if prop.in_dim != int(np.prod(model.input_shape)):
        raise ValueError(
            f"property has {prop.in_dim} input variables, model input shape "
            f"is {model.input_shape}"
        )
    if prop.out_dim != int(np.prod(model.output_shape)):
        raise ValueError(
            f"property has {prop.out_dim} output variables, model output "
            f"shape is {model.output_shape}"
        )
    cut = model.piecewise_linear_cut_points()[0]
    engine = VerificationEngine(model, cut, solver=solver, **engine_options)
    engine.add_static_feature_set(
        prop.input_lower.reshape(model.input_shape),
        prop.input_upper.reshape(model.input_shape),
        name=set_name,
    )
    return engine


def instance_campaign(
    prop: VnnLibProperty,
    set_name: str = "instance",
    method: str = "exact",
    domain: str | None = "interval",
    solver: str | None = None,
    time_limit: float | None = None,
    refine_budget: int | None = None,
    name: str | None = None,
) -> Campaign:
    """One query per output disjunct of the property."""
    campaign = Campaign(name or prop.name)
    for disjunct in prop.disjuncts:
        campaign.add(
            VerificationQuery(
                risk=disjunct,
                set_name=set_name,
                method=method,
                domain=domain,
                solver=solver,
                time_limit=time_limit,
                refine_budget=refine_budget,
            )
        )
    return campaign


def combine_disjunct_verdicts(verdicts: Sequence[str]) -> str:
    """Fold per-disjunct verdicts into the instance verdict.

    ``sat`` if any disjunct is reachable; ``unsat`` only when every
    disjunct is proved unreachable; otherwise ``unknown``.
    """
    if any(v == SAT for v in verdicts):
        return SAT
    if verdicts and all(v == UNSAT for v in verdicts):
        return UNSAT
    return UNKNOWN
