"""ONNX-subset model interchange for :class:`repro.nn.Sequential`.

Real benchmark suites (VNN-COMP, the ERAN/Marabou model zoos) ship
networks as ``.onnx`` files.  This module reads and writes the subset of
ONNX that maps exactly onto the layer algebra the verification stack
supports — single-chain feed-forward graphs of

========================  =======================================
ONNX op                   ``repro.nn`` layer
========================  =======================================
``Gemm``                  :class:`~repro.nn.layers.dense.Dense`
``Conv``                  :class:`~repro.nn.layers.conv.Conv2D`
``BatchNormalization``    :class:`~repro.nn.layers.batchnorm.BatchNorm`
``Relu`` / ``LeakyRelu``  :class:`ReLU` / :class:`LeakyReLU`
``Sigmoid`` / ``Tanh``    :class:`Sigmoid` / :class:`Tanh`
``MaxPool``               :class:`~repro.nn.layers.pool.MaxPool2D`
``AveragePool``           :class:`~repro.nn.layers.pool.AvgPool2D`
``Flatten`` / ``Reshape`` :class:`~repro.nn.layers.reshape.Flatten`
``Identity``              :class:`Identity`
========================  =======================================

so an imported model round-trips through the PR 4 lowering
(:func:`repro.verification.ir.lower_network`) into exactly the same
:class:`~repro.verification.ir.LoweredProgram` as its native in-repo
construction.  Serialization goes through the schema-less wire codec in
:mod:`repro.interchange.protowire` — no ``onnx``/``protobuf``
dependency.  Exported weights are stored as ONNX ``DOUBLE`` tensors
(the stack's native float64), so export → import is bit-exact; imported
files may use ``FLOAT`` or ``DOUBLE``.  The one spec-imposed precision
loss: ONNX *attributes* are float32, so ``LeakyReLU.alpha`` round-trips
exactly only when float32-representable (e.g. ``0.0625``) and otherwise
to within float32 — every weight, statistic and integer attribute is
always bit-exact.  ``BatchNorm.eps`` is canonicalized to float32 at
layer construction precisely so this loss cannot reach it: eps folds
into fused affine weights during lowering, and a finer-grained value
would leave an exported model's lowering (and the service layer's
content digest) drifting from the native construction.

``Dropout`` layers are eval-mode no-ops and lower to nothing, so
:func:`model_to_onnx_bytes` simply skips them — the exported graph has
the identical lowered semantics.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.interchange import protowire as wire
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Identity,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.sequential import Sequential
from repro.nn.tensor import FLOAT, flat_size

#: ONNX TensorProto.DataType values this importer understands
_DTYPE_FLOAT = 1
_DTYPE_INT64 = 7
_DTYPE_DOUBLE = 11

#: AttributeProto.AttributeType values
_ATTR_FLOAT = 1
_ATTR_INT = 2
_ATTR_STRING = 3
_ATTR_TENSOR = 4
_ATTR_FLOATS = 6
_ATTR_INTS = 7

_OPSET_VERSION = 13
_IR_VERSION = 8


class OnnxError(ValueError):
    """Raised when a file is outside the supported ONNX subset."""


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------


def _tensor_bytes(name: str, array: np.ndarray) -> bytes:
    """Serialize one initializer as a DOUBLE/INT64 TensorProto."""
    array = np.ascontiguousarray(array)
    parts = [wire.encode_packed_varints(1, array.shape)] if array.ndim else []
    if array.dtype.kind == "i":
        parts.append(wire.encode_varint_field(2, _DTYPE_INT64))
        parts.append(
            wire.encode_bytes_field(9, array.astype("<i8").tobytes())
        )
    else:
        parts.append(wire.encode_varint_field(2, _DTYPE_DOUBLE))
        parts.append(
            wire.encode_bytes_field(9, array.astype("<f8").tobytes())
        )
    parts.append(wire.encode_string_field(8, name))
    return b"".join(parts)


def _attr_bytes(name: str, value) -> bytes:
    parts = [wire.encode_string_field(1, name)]
    if isinstance(value, float):
        parts.append(wire.encode_float_field(2, value))
        parts.append(wire.encode_varint_field(20, _ATTR_FLOAT))
    elif isinstance(value, int):
        parts.append(wire.encode_varint_field(3, value))
        parts.append(wire.encode_varint_field(20, _ATTR_INT))
    elif isinstance(value, (list, tuple)):
        parts.append(wire.encode_packed_varints(8, value))
        parts.append(wire.encode_varint_field(20, _ATTR_INTS))
    else:
        raise OnnxError(f"unsupported attribute value {value!r}")
    return b"".join(parts)


def _node_bytes(
    op_type: str, inputs: list[str], outputs: list[str], name: str, attrs: dict
) -> bytes:
    parts = [wire.encode_string_field(1, i) for i in inputs]
    parts += [wire.encode_string_field(2, o) for o in outputs]
    parts.append(wire.encode_string_field(3, name))
    parts.append(wire.encode_string_field(4, op_type))
    parts += [
        wire.encode_bytes_field(5, _attr_bytes(key, value))
        for key, value in attrs.items()
    ]
    return b"".join(parts)


def _value_info_bytes(name: str, shape: tuple[int, ...]) -> bytes:
    """A ValueInfoProto with a symbolic batch dim ``N`` + fixed dims."""
    dims = [wire.encode_bytes_field(1, wire.encode_string_field(2, "N"))]
    dims += [
        wire.encode_bytes_field(1, wire.encode_varint_field(1, d)) for d in shape
    ]
    shape_proto = b"".join(dims)
    tensor_type = wire.encode_varint_field(1, _DTYPE_DOUBLE) + wire.encode_bytes_field(
        2, shape_proto
    )
    type_proto = wire.encode_bytes_field(1, tensor_type)
    return wire.encode_string_field(1, name) + wire.encode_bytes_field(2, type_proto)


def _export_layer(layer, index: int, x: str, y: str):
    """``(node bytes, initializers)`` for one layer.

    ``Dropout`` never reaches here — :func:`model_to_onnx_bytes` filters
    it out (the single place that skip lives).
    """
    tag = f"l{index}"
    if isinstance(layer, Dense):
        return (
            _node_bytes(
                "Gemm",
                [x, f"{tag}_weight", f"{tag}_bias"],
                [y],
                tag,
                {"alpha": 1.0, "beta": 1.0, "transB": 1},
            ),
            {
                # Gemm with transB stores B as (out, in)
                f"{tag}_weight": layer.weight.value.T,
                f"{tag}_bias": layer.bias.value,
            },
        )
    if isinstance(layer, Conv2D):
        p = layer.padding
        return (
            _node_bytes(
                "Conv",
                [x, f"{tag}_weight", f"{tag}_bias"],
                [y],
                tag,
                {
                    "kernel_shape": [layer.kernel, layer.kernel],
                    "strides": [layer.stride, layer.stride],
                    "pads": [p, p, p, p],
                },
            ),
            {f"{tag}_weight": layer.weight.value, f"{tag}_bias": layer.bias.value},
        )
    if isinstance(layer, BatchNorm):
        return (
            _node_bytes(
                "BatchNormalization",
                [x, f"{tag}_scale", f"{tag}_shift", f"{tag}_mean", f"{tag}_var"],
                [y],
                tag,
                {"epsilon": layer.eps, "momentum": layer.momentum},
            ),
            {
                f"{tag}_scale": layer.gamma.value,
                f"{tag}_shift": layer.beta.value,
                f"{tag}_mean": layer.running_mean,
                f"{tag}_var": layer.running_var,
            },
        )
    if isinstance(layer, MaxPool2D) or isinstance(layer, AvgPool2D):
        op = "MaxPool" if isinstance(layer, MaxPool2D) else "AveragePool"
        return (
            _node_bytes(
                op,
                [x],
                [y],
                tag,
                {
                    "kernel_shape": [layer.size, layer.size],
                    "strides": [layer.stride, layer.stride],
                    "pads": [0, 0, 0, 0],
                },
            ),
            {},
        )
    if isinstance(layer, LeakyReLU):
        return _node_bytes("LeakyRelu", [x], [y], tag, {"alpha": layer.alpha}), {}
    simple = {ReLU: "Relu", Sigmoid: "Sigmoid", Tanh: "Tanh", Identity: "Identity"}
    for cls, op in simple.items():
        if type(layer) is cls:
            return _node_bytes(op, [x], [y], tag, {}), {}
    if isinstance(layer, Flatten):
        return _node_bytes("Flatten", [x], [y], tag, {"axis": 1}), {}
    raise OnnxError(
        f"layer {type(layer).__name__} has no ONNX-subset export; supported: "
        f"Dense, Conv2D, BatchNorm, ReLU, LeakyReLU, Sigmoid, Tanh, "
        f"MaxPool2D, AvgPool2D, Flatten, Identity (Dropout is skipped)"
    )


def model_to_onnx_bytes(model: Sequential, name: str = "repro-model") -> bytes:
    """Serialize a built :class:`Sequential` to ONNX bytes."""
    nodes: list[bytes] = []
    initializers: list[bytes] = []
    current = "input"
    exported = [
        (i, layer)
        for i, layer in enumerate(model.layers)
        if not isinstance(layer, Dropout)
    ]
    if not exported:
        raise OnnxError("model has no exportable layers")
    for position, (index, layer) in enumerate(exported):
        out_name = "output" if position == len(exported) - 1 else f"act{index}"
        node, weights = _export_layer(layer, index, current, out_name)
        nodes.append(wire.encode_bytes_field(1, node))
        for weight_name, array in weights.items():
            initializers.append(
                wire.encode_bytes_field(5, _tensor_bytes(weight_name, array))
            )
        current = out_name
    graph = b"".join(
        [
            *nodes,
            wire.encode_string_field(2, name),
            *initializers,
            wire.encode_bytes_field(11, _value_info_bytes("input", model.input_shape)),
            wire.encode_bytes_field(
                12, _value_info_bytes("output", model.output_shape)
            ),
        ]
    )
    opset = wire.encode_string_field(1, "") + wire.encode_varint_field(
        2, _OPSET_VERSION
    )
    return b"".join(
        [
            wire.encode_varint_field(1, _IR_VERSION),
            wire.encode_string_field(2, "repro.interchange"),
            wire.encode_bytes_field(7, graph),
            wire.encode_bytes_field(8, opset),
        ]
    )


def export_onnx(model: Sequential, path: str | Path, name: str = "repro-model") -> Path:
    """Write ``model`` to ``path`` as an ``.onnx`` file."""
    path = Path(path)
    path.write_bytes(model_to_onnx_bytes(model, name=name))
    return path


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------


def _parse_tensor(data: bytes) -> tuple[str, np.ndarray]:
    fields = wire.decode_fields(data)
    name = (wire.first_bytes(fields, 8, b"") or b"").decode("utf-8")
    dims = [wire.signed64(d) for d in wire.repeated_varints(fields, 1)]
    data_type = wire.first_varint(fields, 2, _DTYPE_FLOAT)
    raw = wire.first_bytes(fields, 9)
    if raw is not None:
        if data_type == _DTYPE_FLOAT:
            array = np.frombuffer(raw, dtype="<f4")
        elif data_type == _DTYPE_DOUBLE:
            array = np.frombuffer(raw, dtype="<f8")
        elif data_type == _DTYPE_INT64:
            array = np.frombuffer(raw, dtype="<i8")
        else:
            raise OnnxError(f"tensor {name!r}: unsupported data type {data_type}")
    elif data_type == _DTYPE_FLOAT and 4 in fields:
        values = [
            struct.unpack("<f", chunk[i : i + 4])[0]
            for _, chunk in fields[4]
            if isinstance(chunk, bytes)
            for i in range(0, len(chunk), 4)
        ]
        array = np.asarray(values, dtype="<f4")
    elif data_type == _DTYPE_DOUBLE and 10 in fields:
        values = [
            struct.unpack("<d", chunk[i : i + 8])[0]
            for _, chunk in fields[10]
            if isinstance(chunk, bytes)
            for i in range(0, len(chunk), 8)
        ]
        array = np.asarray(values, dtype="<f8")
    elif data_type == _DTYPE_INT64:
        array = np.asarray(
            [wire.signed64(v) for v in wire.repeated_varints(fields, 7)], dtype=np.int64
        )
    else:
        raise OnnxError(f"tensor {name!r}: no recognizable payload")
    if array.dtype.kind == "f":
        array = array.astype(FLOAT)
    return name, array.reshape(dims) if dims else array


def _parse_attribute(data: bytes):
    fields = wire.decode_fields(data)
    name = (wire.first_bytes(fields, 1, b"") or b"").decode("utf-8")
    attr_type = wire.first_varint(fields, 20, 0)
    if attr_type == _ATTR_FLOAT or (attr_type == 0 and 2 in fields):
        (wire_type, raw) = fields[2][0]
        return name, float(struct.unpack("<f", raw)[0])
    if attr_type == _ATTR_INT or (attr_type == 0 and 3 in fields):
        return name, wire.signed64(wire.first_varint(fields, 3, 0))
    if attr_type == _ATTR_INTS or (attr_type == 0 and 8 in fields):
        return name, [wire.signed64(v) for v in wire.repeated_varints(fields, 8)]
    if attr_type == _ATTR_STRING:
        return name, (wire.first_bytes(fields, 4, b"") or b"").decode("utf-8")
    if attr_type == _ATTR_TENSOR:
        return name, _parse_tensor(wire.first_bytes(fields, 5, b""))[1]
    raise OnnxError(f"attribute {name!r}: unsupported attribute type {attr_type}")


def _parse_node(data: bytes) -> tuple[str, list[str], list[str], dict]:
    fields = wire.decode_fields(data)
    op_type = (wire.first_bytes(fields, 4, b"") or b"").decode("utf-8")
    inputs = [b.decode("utf-8") for b in wire.repeated_bytes(fields, 1)]
    outputs = [b.decode("utf-8") for b in wire.repeated_bytes(fields, 2)]
    attrs = dict(
        _parse_attribute(chunk) for chunk in wire.repeated_bytes(fields, 5)
    )
    return op_type, inputs, outputs, attrs


def _parse_value_info(data: bytes) -> tuple[str, list[int | None]]:
    """``(name, dims)`` with ``None`` for symbolic dims."""
    fields = wire.decode_fields(data)
    name = (wire.first_bytes(fields, 1, b"") or b"").decode("utf-8")
    type_proto = wire.first_bytes(fields, 2, b"") or b""
    tensor_type = wire.first_bytes(wire.decode_fields(type_proto), 1, b"") or b""
    shape_proto = wire.first_bytes(wire.decode_fields(tensor_type), 2, b"") or b""
    dims: list[int | None] = []
    for dim_bytes in wire.repeated_bytes(wire.decode_fields(shape_proto), 1):
        dim_fields = wire.decode_fields(dim_bytes)
        value = wire.first_varint(dim_fields, 1)
        dims.append(wire.signed64(value) if value is not None else None)
    return name, dims


def _square(values, what: str) -> int:
    values = list(values)
    if len(values) != 2 or values[0] != values[1]:
        raise OnnxError(f"only square {what} supported, got {values}")
    return int(values[0])


def _uniform_pads(attrs: dict, what: str) -> int:
    pads = [int(p) for p in attrs.get("pads", [0, 0, 0, 0])]
    if len(set(pads)) != 1:
        raise OnnxError(f"only uniform {what} pads supported, got {pads}")
    return pads[0]


def _import_node(op_type, inputs, attrs, weights, feature_shape):
    """``(layer, state dict)`` for one node, given the incoming shape."""

    def weight(position: int) -> np.ndarray:
        if position >= len(inputs) or inputs[position] not in weights:
            raise OnnxError(
                f"{op_type} node expects initializer input #{position}"
            )
        return weights[inputs[position]]

    if op_type == "Gemm":
        if attrs.get("alpha", 1.0) != 1.0 or attrs.get("beta", 1.0) != 1.0:
            raise OnnxError("Gemm with alpha/beta != 1 is not supported")
        if attrs.get("transA", 0):
            raise OnnxError("Gemm with transA=1 is not supported")
        b = weight(1)
        w = b.T if attrs.get("transB", 0) else b
        units = int(w.shape[1])
        bias = weights.get(inputs[2]) if len(inputs) > 2 else None
        if bias is None:
            bias = np.zeros(units)
        return Dense(units), {"weight": w, "bias": bias}
    if op_type == "Conv":
        if any(int(d) != 1 for d in attrs.get("dilations", [1, 1])):
            raise OnnxError("Conv with dilations != 1 is not supported")
        if int(attrs.get("group", 1)) != 1:
            raise OnnxError("grouped Conv is not supported")
        w = weight(1)
        kernel = _square(attrs.get("kernel_shape", w.shape[2:]), "Conv kernels")
        stride = _square(attrs.get("strides", [1, 1]), "Conv strides")
        padding = _uniform_pads(attrs, "Conv")
        bias = weights.get(inputs[2]) if len(inputs) > 2 else None
        if bias is None:
            bias = np.zeros(int(w.shape[0]))
        layer = Conv2D(int(w.shape[0]), kernel, stride=stride, padding=padding)
        return layer, {"weight": w, "bias": bias}
    if op_type == "BatchNormalization":
        layer = BatchNorm(
            momentum=float(attrs.get("momentum", 0.9)),
            eps=float(attrs.get("epsilon", 1e-5)),
        )
        return layer, {
            "gamma": weight(1),
            "beta": weight(2),
            "running_mean": weight(3),
            "running_var": weight(4),
        }
    if op_type in ("MaxPool", "AveragePool"):
        kernel = _square(attrs["kernel_shape"], f"{op_type} kernels")
        stride = _square(attrs.get("strides", [kernel, kernel]), f"{op_type} strides")
        if _uniform_pads(attrs, op_type) != 0:
            raise OnnxError(f"padded {op_type} is not supported")
        cls = MaxPool2D if op_type == "MaxPool" else AvgPool2D
        return cls(kernel, stride=stride), {}
    if op_type == "Relu":
        return ReLU(), {}
    if op_type == "LeakyRelu":
        return LeakyReLU(alpha=float(attrs.get("alpha", 0.01))), {}
    if op_type == "Sigmoid":
        return Sigmoid(), {}
    if op_type == "Tanh":
        return Tanh(), {}
    if op_type == "Identity":
        return Identity(), {}
    if op_type == "Flatten":
        if int(attrs.get("axis", 1)) != 1:
            raise OnnxError("Flatten with axis != 1 is not supported")
        return Flatten(), {}
    if op_type == "Reshape":
        target = [int(v) for v in weight(1).ravel()]
        flat = flat_size(feature_shape)
        feature_dims = target[1:] if len(target) > 1 else target
        # accept any reshape that flattens the per-sample features:
        # [N, -1], [0, -1], [N, d_flat], [-1, d_flat] ...
        if len(feature_dims) == 1 and feature_dims[0] in (-1, flat):
            return Flatten(), {}
        raise OnnxError(
            f"Reshape to {target} is not supported (only flattening "
            f"reshapes of the per-sample features)"
        )
    raise OnnxError(
        f"unsupported ONNX op {op_type!r}; the supported subset is Gemm, "
        f"Conv, BatchNormalization, Relu, LeakyRelu, Sigmoid, Tanh, "
        f"MaxPool, AveragePool, Flatten, Reshape, Identity"
    )


def onnx_bytes_to_model(data: bytes) -> Sequential:
    """Deserialize ONNX bytes into a built :class:`Sequential`."""
    try:
        model_fields = wire.decode_fields(data)
        graph_bytes = wire.first_bytes(model_fields, 7)
    except wire.WireError as error:
        raise OnnxError(f"not an ONNX model: {error}") from error
    if graph_bytes is None:
        raise OnnxError("not an ONNX model: no graph")
    graph = wire.decode_fields(graph_bytes)

    weights: dict[str, np.ndarray] = {}
    for tensor_bytes in wire.repeated_bytes(graph, 5):
        name, array = _parse_tensor(tensor_bytes)
        weights[name] = array

    graph_inputs = [
        _parse_value_info(chunk) for chunk in wire.repeated_bytes(graph, 11)
    ]
    data_inputs = [
        (name, dims) for name, dims in graph_inputs if name not in weights
    ]
    if len(data_inputs) != 1:
        raise OnnxError(
            f"expected exactly one non-initializer graph input, got "
            f"{[name for name, _ in data_inputs]}"
        )
    input_name, dims = data_inputs[0]
    if len(dims) < 2:
        raise OnnxError(
            f"graph input {input_name!r} needs a batch dim plus feature "
            f"dims, got {dims}"
        )
    if any(d is None or d <= 0 for d in dims[1:]):
        raise OnnxError(f"graph input {input_name!r} has symbolic feature dims")
    input_shape = tuple(int(d) for d in dims[1:])

    nodes = [_parse_node(chunk) for chunk in wire.repeated_bytes(graph, 1)]
    if not nodes:
        raise OnnxError("ONNX graph has no nodes")

    layers = []
    states = []
    current = input_name
    feature_shape = input_shape
    for op_type, inputs, outputs, attrs in nodes:
        if not inputs or inputs[0] != current:
            raise OnnxError(
                f"{op_type} node consumes {inputs[:1]}, expected the chain "
                f"value {current!r} (only single-chain graphs are supported)"
            )
        if len(outputs) < 1:
            raise OnnxError(f"{op_type} node has no outputs")
        for extra in inputs[1:]:
            if extra and extra not in weights:
                raise OnnxError(
                    f"{op_type} input {extra!r} is neither the chain value "
                    f"nor an initializer"
                )
        layer, state = _import_node(op_type, inputs, attrs, weights, feature_shape)
        layers.append(layer)
        states.append(state)
        feature_shape = layer.output_shape(feature_shape)
        current = outputs[0]

    model = Sequential(layers, input_shape=input_shape, seed=0)
    for layer, state in zip(model.layers, states):
        if state:
            layer.load_state({k: np.asarray(v, dtype=FLOAT) for k, v in state.items()})
    return model


def import_onnx(path: str | Path) -> Sequential:
    """Load an ``.onnx`` file into a built :class:`Sequential`."""
    return onnx_bytes_to_model(Path(path).read_bytes())
