"""Minimal protobuf wire-format codec for the ONNX subset.

The container deliberately carries no ``onnx``/``protobuf`` dependency,
but ONNX files are plain protobuf messages and the wire format is tiny:
a message is a sequence of ``(key, value)`` records where ``key =
(field_number << 3) | wire_type`` and only four wire types matter here —

- ``0`` varint (ints, enums, bools),
- ``1`` 64-bit little-endian (``double``/``fixed64``),
- ``2`` length-delimited (strings, bytes, sub-messages, packed arrays),
- ``5`` 32-bit little-endian (``float``/``fixed32``).

:func:`decode_fields` parses a serialized message into ``{field_number:
[(wire_type, value), ...]}`` without any schema; the schema knowledge
(which field number means what) lives in :mod:`repro.interchange.onnx`.
The ``encode_*`` helpers are the writing half.  Unknown fields survive
decoding untouched (they are simply ignored), which is exactly the
forward-compatibility protobuf promises.
"""

from __future__ import annotations

import struct

VARINT = 0
FIXED64 = 1
LENGTH_DELIMITED = 2
FIXED32 = 5

_MASK64 = (1 << 64) - 1


class WireError(ValueError):
    """Raised on malformed protobuf wire data."""


# -- encoding ----------------------------------------------------------------


def encode_varint(value: int) -> bytes:
    """Base-128 varint; negative ints use 64-bit two's complement."""
    if value < 0:
        value &= _MASK64
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_key(field_number: int, wire_type: int) -> bytes:
    if field_number <= 0:
        raise WireError(f"field numbers are positive, got {field_number}")
    return encode_varint((field_number << 3) | wire_type)


def encode_varint_field(field_number: int, value: int) -> bytes:
    return encode_key(field_number, VARINT) + encode_varint(value)


def encode_bytes_field(field_number: int, payload: bytes) -> bytes:
    """A length-delimited field: string, bytes, sub-message or packed array."""
    return (
        encode_key(field_number, LENGTH_DELIMITED)
        + encode_varint(len(payload))
        + payload
    )


def encode_string_field(field_number: int, text: str) -> bytes:
    return encode_bytes_field(field_number, text.encode("utf-8"))


def encode_float_field(field_number: int, value: float) -> bytes:
    return encode_key(field_number, FIXED32) + struct.pack("<f", value)


def encode_packed_varints(field_number: int, values) -> bytes:
    """Repeated ints in packed encoding (the proto3 default)."""
    payload = b"".join(encode_varint(int(v)) for v in values)
    return encode_bytes_field(field_number, payload)


# -- decoding ----------------------------------------------------------------


def decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Return ``(value, next offset)``; values stay unsigned 64-bit."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise WireError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise WireError("varint longer than 64 bits")


def signed64(value: int) -> int:
    """Reinterpret an unsigned varint value as a two's-complement int64."""
    return value - (1 << 64) if value >= (1 << 63) else value


def decode_fields(data: bytes) -> dict[int, list[tuple[int, object]]]:
    """Parse one message into ``{field: [(wire_type, value), ...]}``.

    Varint values come back as unsigned ints (use :func:`signed64` where
    the schema says int64); fixed32/fixed64 come back as raw 4/8-byte
    ``bytes`` (caller unpacks by schema type); length-delimited values
    come back as ``bytes``.
    """
    fields: dict[int, list[tuple[int, object]]] = {}
    offset = 0
    while offset < len(data):
        key, offset = decode_varint(data, offset)
        field_number, wire_type = key >> 3, key & 0x7
        value: object
        if wire_type == VARINT:
            value, offset = decode_varint(data, offset)
        elif wire_type == FIXED64:
            value, offset = data[offset : offset + 8], offset + 8
            if len(value) != 8:
                raise WireError("truncated fixed64")
        elif wire_type == LENGTH_DELIMITED:
            length, offset = decode_varint(data, offset)
            value, offset = data[offset : offset + length], offset + length
            if len(value) != length:
                raise WireError("truncated length-delimited field")
        elif wire_type == FIXED32:
            value, offset = data[offset : offset + 4], offset + 4
            if len(value) != 4:
                raise WireError("truncated fixed32")
        else:
            raise WireError(f"unsupported wire type {wire_type}")
        fields.setdefault(field_number, []).append((wire_type, value))
    return fields


def first_varint(fields: dict, field_number: int, default: int | None = None) -> int | None:
    """First varint value of a field, or ``default`` when absent."""
    for wire_type, value in fields.get(field_number, ()):
        if wire_type != VARINT:
            raise WireError(f"field {field_number} is not a varint")
        return value
    return default


def first_bytes(fields: dict, field_number: int, default: bytes | None = None) -> bytes | None:
    """First length-delimited value of a field, or ``default``."""
    for wire_type, value in fields.get(field_number, ()):
        if wire_type != LENGTH_DELIMITED:
            raise WireError(f"field {field_number} is not length-delimited")
        return value
    return default


def repeated_bytes(fields: dict, field_number: int) -> list[bytes]:
    """All length-delimited values of a repeated field, in order."""
    out = []
    for wire_type, value in fields.get(field_number, ()):
        if wire_type != LENGTH_DELIMITED:
            raise WireError(f"field {field_number} is not length-delimited")
        out.append(value)
    return out


def repeated_varints(fields: dict, field_number: int) -> list[int]:
    """All values of a repeated int field, packed or not."""
    out: list[int] = []
    for wire_type, value in fields.get(field_number, ()):
        if wire_type == VARINT:
            out.append(value)
        elif wire_type == LENGTH_DELIMITED:
            offset = 0
            while offset < len(value):
                item, offset = decode_varint(value, offset)
                out.append(item)
        else:
            raise WireError(f"field {field_number} is not an int field")
    return out
