"""Auto-generated CLI reference.

:func:`render_cli_reference` walks the **real** argparse tree
(:func:`repro.cli.build_parser`) and renders one Markdown page — usage
line, description and an option table per subcommand.  ``docs/cli.md``
is that rendering, committed; ``tests/core/test_cli_reference.py``
asserts the committed page equals a fresh rendering, so the reference
cannot rot when a flag is added or a default changes.  Regenerate
with::

    PYTHONPATH=src python -m repro.cli_reference
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cli import build_parser

_HEADER = """\
# CLI reference

<!-- Auto-generated from the argparse tree by `repro.cli_reference`.
     Do not edit by hand: regenerate with
     `PYTHONPATH=src python -m repro.cli_reference`. -->

All commands run as `python -m repro <command>` (or `repro <command>`
with the package installed).
"""


def _option_label(action: argparse.Action) -> str:
    """``--flag METAVAR`` as the user would type it."""
    if not action.option_strings:
        return action.dest
    label = ", ".join(action.option_strings)
    if action.nargs != 0 and not isinstance(
        action, (argparse._StoreTrueAction, argparse._StoreFalseAction)
    ):
        metavar = action.metavar or action.dest.upper().replace("-", "_")
        label = f"{label} {metavar}"
    return label


def _default_cell(action: argparse.Action) -> str:
    if isinstance(action, (argparse._StoreTrueAction, argparse._StoreFalseAction)):
        return "off"
    if action.default is None or action.default == []:
        return "—"
    return f"`{action.default}`"


def _help_cell(action: argparse.Action) -> str:
    text = " ".join((action.help or "").split())
    if action.choices is not None:
        rendered = ", ".join(f"`{choice}`" for choice in action.choices)
        text = f"{text} (one of {rendered})" if text else f"one of {rendered}"
    return text or "—"


def _render_subcommand(name: str, parser: argparse.ArgumentParser, help_text: str) -> list[str]:
    lines = [f"## `repro {name}`", ""]
    if help_text:
        lines += [help_text[0].upper() + help_text[1:].rstrip(".") + ".", ""]
    usage = " ".join(parser.format_usage().split())
    usage = usage.removeprefix("usage: ")
    lines += ["```", usage, "```", ""]
    options = [
        action
        for action in parser._actions
        if action.option_strings and not isinstance(action, argparse._HelpAction)
    ]
    if options:
        lines.append("| Option | Default | Description |")
        lines.append("|---|---|---|")
        for action in options:
            lines.append(
                f"| `{_option_label(action)}` | {_default_cell(action)} "
                f"| {_help_cell(action)} |"
            )
        lines.append("")
    return lines


def render_cli_reference() -> str:
    """Render the whole CLI as one Markdown page."""
    parser = build_parser()
    subparsers_action = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    help_by_name = {
        item.dest: item.help or "" for item in subparsers_action._choices_actions
    }
    lines = [_HEADER]
    lines.append("| Command | Purpose |")
    lines.append("|---|---|")
    for name in subparsers_action.choices:
        lines.append(f"| [`repro {name}`](#repro-{name}) | {help_by_name.get(name, '')} |")
    lines.append("")
    for name, subparser in subparsers_action.choices.items():
        lines += _render_subcommand(name, subparser, help_by_name.get(name, ""))
    return "\n".join(lines).rstrip() + "\n"


def reference_path() -> Path:
    """Where the committed page lives: ``docs/cli.md`` at the repo root."""
    return Path(__file__).resolve().parents[2] / "docs" / "cli.md"


def main() -> int:
    path = reference_path()
    path.write_text(render_cli_reference())
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
