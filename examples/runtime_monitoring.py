"""Runtime monitoring of the assume-guarantee assumption (footnote 2).

A conditional proof is only as good as its monitor.  This example deploys
the monitor on three camera streams:

1. an in-ODD stream (same distribution as training) — violations here are
   *false alarms*, tunable via the envelope margin;
2. a night stream (brightness far below the training weather range);
3. heavy fog beyond anything in training.

The monitor flags frames whose close-to-output features leave the
recorded envelope — which the paper notes is useful "regardless of
formal verification" as a detector of incomplete data collection or ODD
exit.

Run:  python examples/runtime_monitoring.py
"""

import dataclasses

import numpy as np

from repro.core import ExperimentConfig, build_verified_system
from repro.monitor.runtime import RuntimeMonitor
from repro.scenario.dataset import SceneConfig, render_scene, sample_scene
from repro.scenario.weather import Weather
from repro.verification.assume_guarantee import box_with_diffs_from_data


def _stream_with_weather(
    n: int, scene_config: SceneConfig, weather: Weather, seed: int
) -> np.ndarray:
    """In-ODD scenes re-rendered under a fixed out-of-ODD weather."""
    rng = np.random.default_rng(seed)
    images = []
    for _ in range(n):
        scene = sample_scene(rng, scene_config)
        scene = dataclasses.replace(scene, weather=weather)
        images.append(render_scene(scene, scene_config))
    return np.stack(images)


def main() -> None:
    config = ExperimentConfig(
        train_scenes=400, val_scenes=150, epochs=25, properties=(), seed=0
    )
    system = build_verified_system(config)

    night = _stream_with_weather(
        100, config.scene, Weather(brightness=0.35, noise_sigma=0.04), seed=123
    )
    fog = _stream_with_weather(
        100, config.scene, Weather(fog_density=0.3, noise_sigma=0.05), seed=456
    )

    print("margin   in-ODD false alarms   night violations   fog violations")
    for margin in (0.0, 0.1, 0.25):
        feature_set = box_with_diffs_from_data(system.train_features, margin=margin)
        rates = []
        for stream in (system.val_data.images, night, fog):
            monitor = RuntimeMonitor(
                system.model, system.cut_layer, feature_set, keep_events=False
            )
            rates.append(monitor.run(stream).violation_rate)
        print(
            f"{margin:>6.2f}   {rates[0]:>19.1%}   {rates[1]:>16.1%}   "
            f"{rates[2]:>14.1%}"
        )

    # one annotated violation, to show the actionable diagnostics
    feature_set = box_with_diffs_from_data(system.train_features, margin=0.1)
    monitor = RuntimeMonitor(system.model, system.cut_layer, feature_set)
    monitor.run(night[:20])
    for event in monitor.report.events:
        if event.violation:
            print(f"\nexample warning: {event}")
            break

    print(
        "\nInterpretation: a violation means the conditional safety proof "
        "does not cover the frame; the vehicle must fall back to its "
        "mediated perception channel (the paper's hot-standby setup). The "
        "margin trades in-ODD false alarms against ODD-exit sensitivity."
    )


if __name__ == "__main__":
    main()
