"""Closed-loop lane keeping: the paper's hot-standby architecture, end to end.

The introduction's motivating system: a direct-perception network feeds
affordances to a controller, acting as hot standby for the classical
mediated perception channel.  This example drives a winding highway
segment three ways:

1. **oracle channel** — exact affordances (the mediated system);
2. **NN channel** — the trained direct-perception network alone;
3. **hot standby** — NN channel, but any frame flagged by the runtime
   monitor (assume-guarantee envelope violated) falls back to the oracle
   for that step.

Run:  python examples/closed_loop_driving.py
"""

from repro.core import ExperimentConfig, build_verified_system
from repro.scenario.controller import PurePursuitController, simulate_closed_loop


def main() -> None:
    config = ExperimentConfig(
        train_scenes=500, val_scenes=150, epochs=30, properties=(), seed=0
    )
    system = build_verified_system(config)
    controller = PurePursuitController()

    runs = {}
    runs["oracle (mediated channel)"] = simulate_closed_loop(
        None,
        controller,
        num_steps=250,
        initial_offset=0.5,
        scene_config=config.scene,
        seed=11,
    )
    runs["direct perception (NN)"] = simulate_closed_loop(
        system.model,
        controller,
        num_steps=250,
        initial_offset=0.5,
        scene_config=config.scene,
        seed=11,
    )
    runs["hot standby (NN + monitor fallback)"] = simulate_closed_loop(
        system.model,
        controller,
        num_steps=250,
        initial_offset=0.5,
        scene_config=config.scene,
        monitor=system.verifier.make_monitor(keep_events=False),
        seed=11,
    )
    # the interesting case: night falls mid-drive (ODD exit at step 125)
    runs["NN alone, night from step 125"] = simulate_closed_loop(
        system.model,
        controller,
        num_steps=250,
        initial_offset=0.5,
        scene_config=config.scene,
        odd_exit_step=125,
        seed=11,
    )
    runs["hot standby, night from step 125"] = simulate_closed_loop(
        system.model,
        controller,
        num_steps=250,
        initial_offset=0.5,
        scene_config=config.scene,
        monitor=system.verifier.make_monitor(keep_events=False),
        odd_exit_step=125,
        seed=11,
    )

    print(f"{'channel':<38}{'RMS err':>9}{'max err':>9}{'fallback':>10}")
    for name, result in runs.items():
        print(
            f"{name:<38}{result.rms_lateral_error:>8.3f}m"
            f"{result.max_lateral_error:>8.3f}m"
            f"{result.fallback_rate:>9.1%}"
        )

    print(
        "\nThe monitor-backed channel inherits the NN's autonomy on covered "
        "frames and the oracle's safety on envelope violations — the "
        "deployment pattern the conditional safety proof assumes."
    )


if __name__ == "__main__":
    main()
