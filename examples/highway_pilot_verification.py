"""Full verification campaign for a highway-pilot direct perception stack.

The scenario the paper's introduction motivates: a camera-based network
computes the next waypoint and orientation as a hot standby for the
mediated perception channel.  Before deployment, the safety team wants

- per-property conditional proofs with explicit residual risk,
- an ablation showing which abstraction ingredients each proof needs,
- the exact counterexample for every property that fails.

Run:  python examples/highway_pilot_verification.py
"""

import numpy as np

from repro.core import ExperimentConfig, build_verified_system
from repro.properties.library import (
    STEER_STRAIGHT,
    steer_far_left,
    steer_far_right,
)
from repro.verification.assume_guarantee import feature_set_from_data
from repro.verification.output_range import output_range


def main() -> None:
    config = ExperimentConfig(
        train_scenes=500,
        val_scenes=200,
        epochs=30,
        properties=("bends_right", "bends_left"),
        seed=0,
    )
    print("== building system ==")
    system = build_verified_system(config)
    print(system.summary())

    # ------------------------------------------------------------------
    # 1. abstraction ablation: reachable waypoint maxima per ingredient
    # ------------------------------------------------------------------
    print("\n== reachable waypoint frontier (max y0, meters left) ==")
    characterizer = system.characterizers["bends_right"].as_piecewise_linear()
    header = f"{'feature set':<12}{'no h':>10}{'with h':>10}"
    print(header)
    frontiers = {}
    for kind in ("box", "box+diff", "box+pairs"):
        fs = feature_set_from_data(system.train_features, kind=kind)
        no_h = output_range(system.verifier.suffix, fs, None).upper
        with_h = output_range(system.verifier.suffix, fs, characterizer).upper
        frontiers[kind] = with_h
        print(f"{kind:<12}{no_h:>10.3f}{with_h:>10.3f}")
    bend_mask = system.train_data.property_labels("bends_right") > 0.5
    empirical = system.model.suffix_apply(
        system.train_features[bend_mask], system.cut_layer
    )[:, 0].max()
    print(f"{'(empirical)':<12}{'':>10}{empirical:>10.3f}   <- real bend-right scenes")

    # ------------------------------------------------------------------
    # 2. the verification campaign
    # ------------------------------------------------------------------
    provable_threshold = frontiers["box+diff"] + 0.25
    campaign = [
        ("bends_right", steer_far_left(provable_threshold)),
        ("bends_right", STEER_STRAIGHT),
        ("bends_left", steer_far_right(-(provable_threshold + 2.0))),
    ]
    print("\n== verification campaign ==")
    for prop_name, risk in campaign:
        verdict = system.verifier.verify(
            risk, property_name=prop_name, confusion=system.confusions[prop_name]
        )
        print(f"\nphi={prop_name}, psi={risk.name} "
              f"({risk.description}):")
        print("  " + verdict.summary().replace("\n", "\n  "))
        if verdict.counterexample is not None:
            cx = verdict.counterexample
            print(f"  counterexample features (cut layer): "
                  f"{np.round(cx.features, 2)}")

    # ------------------------------------------------------------------
    # 3. residual risk accounting (Section III)
    # ------------------------------------------------------------------
    print("\n== residual risk (Table I cells per characterizer) ==")
    for name, confusion in system.confusions.items():
        print(f"  {name}: {confusion.summary()}")


if __name__ == "__main__":
    main()
