"""Full verification campaign for a highway-pilot direct perception stack.

The scenario the paper's introduction motivates: a camera-based network
computes the next waypoint and orientation as a hot standby for the
mediated perception channel.  Before deployment, the safety team wants

- per-property conditional proofs with explicit residual risk,
- an ablation showing which abstraction ingredients each proof needs,
- the exact counterexample for every property that fails.

Everything runs through the declarative :mod:`repro.api` stack: the
ablation is a range campaign over three registered feature sets, and the
sign-off is one parallel verdict campaign with a JSON-able report.

Run:  python examples/highway_pilot_verification.py
"""

import numpy as np

from repro.api import Campaign, VerificationQuery
from repro.core import ExperimentConfig, build_verified_system
from repro.properties.library import (
    STEER_STRAIGHT,
    steer_far_left,
    steer_far_right,
)


def main() -> None:
    config = ExperimentConfig(
        train_scenes=500,
        val_scenes=200,
        epochs=30,
        properties=("bends_right", "bends_left"),
        seed=0,
    )
    print("== building system ==")
    system = build_verified_system(config)
    print(system.summary())

    engine = system.verifier.engine
    engine.confusions.update(system.confusions)

    # ------------------------------------------------------------------
    # 1. abstraction ablation: reachable waypoint maxima per ingredient
    # ------------------------------------------------------------------
    print("\n== reachable waypoint frontier (max y0, meters left) ==")
    for kind in ("box", "box+pairs"):  # "box+diff" is already registered as "data"
        engine.add_feature_set_from_features(
            system.train_features, kind=kind, name=kind
        )
    set_names = {"box": "box", "box+diff": "data", "box+pairs": "box+pairs"}
    ablation = Campaign("ablation").add_ranges(
        output_indices=(0,),
        properties=(None, "bends_right"),
        sets=tuple(set_names.values()),
    )
    frontier_report = engine.run(ablation, workers=2)
    broken = frontier_report.errors
    if broken:
        raise SystemExit(
            f"range query {broken[0].query.name} failed: {broken[0].error}"
        )
    frontiers = {}
    print(f"{'feature set':<12}{'no h':>10}{'with h':>10}")
    for kind, set_name in set_names.items():
        by_prop = {
            r.query.property_name: r.output_range.upper
            for r in frontier_report
            if r.query.set_name == set_name
        }
        frontiers[kind] = by_prop["bends_right"]
        print(f"{kind:<12}{by_prop[None]:>10.3f}{by_prop['bends_right']:>10.3f}")
    bend_mask = system.train_data.property_labels("bends_right") > 0.5
    empirical = system.model.suffix_apply(
        system.train_features[bend_mask], system.cut_layer
    )[:, 0].max()
    print(f"{'(empirical)':<12}{'':>10}{empirical:>10.3f}   <- real bend-right scenes")

    # ------------------------------------------------------------------
    # 2. the verification campaign (parallel, cached encodings)
    # ------------------------------------------------------------------
    provable_threshold = frontiers["box+diff"] + 0.25
    campaign = Campaign("sign-off").add(
        VerificationQuery(
            risk=steer_far_left(provable_threshold), property_name="bends_right"
        ),
        VerificationQuery(risk=STEER_STRAIGHT, property_name="bends_right"),
        VerificationQuery(
            risk=steer_far_right(-(provable_threshold + 2.0)),
            property_name="bends_left",
        ),
    )
    print("\n== verification campaign ==")
    report = engine.run(campaign, workers=2)
    for result in report:
        risk = result.query.risk
        print(f"\nphi={result.query.property_name}, psi={risk.name} "
              f"({risk.description}):")
        print("  " + result.verdict.summary().replace("\n", "\n  "))
        if result.verdict.counterexample is not None:
            cx = result.verdict.counterexample
            print(f"  counterexample features (cut layer): "
                  f"{np.round(cx.features, 2)}")
    print(f"\n{report.summary()}")

    # ------------------------------------------------------------------
    # 3. residual risk accounting (Section III)
    # ------------------------------------------------------------------
    print("\n== residual risk (Table I cells per characterizer) ==")
    for name, confusion in system.confusions.items():
        print(f"  {name}: {confusion.summary()}")


if __name__ == "__main__":
    main()
