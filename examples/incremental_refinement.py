"""Layer-wise incremental abstraction refinement (the paper's future work).

The paper closes: "Our approach of looking at close-to-output layers can
be viewed as an abstraction which can, in future work, lead to
layer-wise incremental abstraction-refinement techniques."

This example runs that loop on a trained perception network: a property
that is *not* provable at the cheapest (latest) cut layer is retried at
earlier layers whenever the counterexample turns out to be spurious —
unreachable from the earlier layer's data envelope.  It also reports
activation-coverage metrics per layer: thin coverage at a layer warns
that its envelope (and any proof resting on it) is built on little
evidence.

Run:  python examples/incremental_refinement.py
"""

import numpy as np

from repro.core import ExperimentConfig, build_verified_system
from repro.monitor.coverage import coverage_report
from repro.perception.features import extract_features
from repro.properties.library import steer_far_left
from repro.verification.assume_guarantee import feature_set_from_data
from repro.verification.output_range import output_range
from repro.verification.refinement import verify_with_refinement


def main() -> None:
    config = ExperimentConfig(
        train_scenes=500, val_scenes=150, epochs=30, properties=(), seed=0
    )
    system = build_verified_system(config)
    model = system.model
    images = system.train_data.images

    cuts = [l for l in model.piecewise_linear_cut_points() if 0 < l < model.num_layers]
    cuts = cuts[-3:]  # the three latest piecewise-linear cut layers

    # ------------------------------------------------------------------
    # per-level frontiers (chained envelopes) and per-layer coverage
    # ------------------------------------------------------------------
    from repro.verification.refinement import encode_chained_problem
    from repro.properties.risk import RiskCondition, output_geq
    from repro.verification.solver import BranchAndBoundSolver

    envelopes = {}
    print("cut layer   dim    coverage (on/off, 8-section)")
    for cut in cuts:
        features = extract_features(model, images, cut)
        kind = "box+diff" if features.shape[1] >= 2 else "box"
        envelopes[cut] = feature_set_from_data(features, kind=kind)
        cov = coverage_report(features)
        print(
            f"{cut:>9}   {features.shape[1]:>3}    "
            f"{cov.onoff:.0%} / {cov.k_section:.0%}"
        )

    def chained_max(active_cuts):
        risk = RiskCondition("any", (output_geq(2, 0, -1e9),))
        problem = encode_chained_problem(model, active_cuts, envelopes, risk)
        problem.model.set_objective({problem.output_vars[0]: -1.0})
        return -BranchAndBoundSolver().minimize(problem.model).objective

    print("\nrefinement level   active envelopes      reachable max y0")
    frontiers = []
    for level in range(len(cuts)):
        active = cuts[len(cuts) - 1 - level :]
        frontier = chained_max(active)
        frontiers.append(frontier)
        print(f"{level:>16}   {str(active):<20}  {frontier:>16.3f}")

    # ------------------------------------------------------------------
    # pick a threshold provable only with refinement, then run the loop
    # ------------------------------------------------------------------
    if frontiers[-1] < frontiers[0] - 0.05:
        threshold = 0.5 * (frontiers[-1] + frontiers[0])
    else:
        threshold = frontiers[0] - 0.05  # fall back: show the SAT path
    risk = steer_far_left(float(threshold))
    print(f"\nrefining psi = {risk.description}")

    result = verify_with_refinement(model, images, risk, cut_layers=cuts)
    print(result.summary())

    if result.proved:
        print(
            f"\nThe property needed the chained envelopes at layers "
            f"{list(result.final_cut_layers)}: the coarser levels' "
            f"counterexamples were spurious (excluded by earlier envelopes "
            f"plus the exact bridge layers), exactly the layer-wise "
            f"refinement the paper anticipates."
        )
    elif result.counterexample is not None:
        print(
            f"\ncounterexample output {np.round(result.counterexample.predicted_output, 3)} "
            f"survives all refinement levels."
        )


if __name__ == "__main__":
    main()
