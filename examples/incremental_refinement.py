"""Incremental refinement on the declarative query API.

The paper closes: "Our approach of looking at close-to-output layers can
be viewed as an abstraction which can, in future work, lead to
layer-wise incremental abstraction-refinement techniques."

This example runs both refinement flavors the engine offers, through the
same :class:`repro.api.VerificationEngine` every other workflow uses:

1. ``method="refine"`` — layer-wise *envelope chaining*: a property not
   provable at the cheapest (latest) cut layer is retried with earlier
   data envelopes chained in whenever the counterexample turns out to
   be spurious.  Per-layer activation-coverage metrics warn when an
   envelope (and any proof resting on it) is built on little evidence.
2. ``method="cegar"`` — *anytime input-region refinement*: the same
   engine splits a sound input region instead, batching the prescreen
   of every pending subregion per round and reporting monotone anytime
   progress (the ``RefinementTrace``), budgeted and resumable.

Run:  python examples/incremental_refinement.py
"""

import numpy as np

from repro.api import VerificationQuery
from repro.core import ExperimentConfig, build_verified_system
from repro.monitor.coverage import coverage_report
from repro.perception.features import extract_features
from repro.properties.library import steer_far_left
from repro.properties.risk import RiskCondition, output_geq
from repro.verification.assume_guarantee import feature_set_from_data
from repro.verification.refinement import encode_chained_problem
from repro.verification.solver import BranchAndBoundSolver


def main() -> None:
    config = ExperimentConfig(
        train_scenes=500, val_scenes=150, epochs=30, properties=(), seed=0
    )
    system = build_verified_system(config)
    model = system.model
    images = system.train_data.images
    engine = system.verifier.engine

    cuts = [l for l in model.piecewise_linear_cut_points() if 0 < l < model.num_layers]
    cuts = cuts[-3:]  # the three latest piecewise-linear cut layers

    # ------------------------------------------------------------------
    # per-level frontiers (chained envelopes) and per-layer coverage
    # ------------------------------------------------------------------
    envelopes = {}
    print("cut layer   dim    coverage (on/off, 8-section)")
    for cut in cuts:
        features = extract_features(model, images, cut)
        kind = "box+diff" if features.shape[1] >= 2 else "box"
        envelopes[cut] = feature_set_from_data(features, kind=kind)
        cov = coverage_report(features)
        print(
            f"{cut:>9}   {features.shape[1]:>3}    "
            f"{cov.onoff:.0%} / {cov.k_section:.0%}"
        )

    def chained_max(active_cuts):
        risk = RiskCondition("any", (output_geq(2, 0, -1e9),))
        problem = encode_chained_problem(model, active_cuts, envelopes, risk)
        problem.model.set_objective({problem.output_vars[0]: -1.0})
        return -BranchAndBoundSolver().minimize(problem.model).objective

    print("\nrefinement level   active envelopes      reachable max y0")
    frontiers = []
    for level in range(len(cuts)):
        active = cuts[len(cuts) - 1 - level :]
        frontier = chained_max(active)
        frontiers.append(frontier)
        print(f"{level:>16}   {str(active):<20}  {frontier:>16.3f}")

    # ------------------------------------------------------------------
    # 1. layer-wise envelope refinement, as an engine query
    # ------------------------------------------------------------------
    if frontiers[-1] < frontiers[0] - 0.05:
        threshold = 0.5 * (frontiers[-1] + frontiers[0])
    else:
        threshold = frontiers[0] - 0.05  # fall back: show the SAT path
    risk = steer_far_left(float(threshold))
    print(f"\nrefining psi = {risk.description} (method='refine')")

    engine.set_refinement_data(images)
    result = engine.run_query(VerificationQuery(risk=risk, method="refine"))
    refinement = result.refinement
    print(refinement.summary())

    if refinement.proved:
        print(
            f"\nThe property needed the chained envelopes at layers "
            f"{list(refinement.final_cut_layers)}: the coarser levels' "
            f"counterexamples were spurious (excluded by earlier envelopes "
            f"plus the exact bridge layers), exactly the layer-wise "
            f"refinement the paper anticipates."
        )
    elif refinement.counterexample is not None:
        print(
            f"\ncounterexample output "
            f"{np.round(refinement.counterexample.predicted_output, 3)} "
            f"survives all refinement levels."
        )

    # ------------------------------------------------------------------
    # 2. anytime CEGAR over a sound input region, same engine
    # ------------------------------------------------------------------
    from repro.verification.counterexample import undecided_band_threshold

    engine.add_static_feature_set(0.0, 1.0, name="pixel-domain")
    enclosure = engine.output_enclosures(["pixel-domain"])[0]
    hi = float(enclosure.upper[0])

    # (a) a provable threshold: the round-0 batched prescreen decides the
    # whole region at once — the decide path of the anytime trace
    provable = round(hi + 0.25, 3)
    print(f"\nrefining psi = waypoint >= {provable} over [0,1] pixels (method='cegar')")
    proved = engine.run_query(
        VerificationQuery(
            risk=steer_far_left(provable), set_name="pixel-domain", method="cegar"
        )
    )
    print(proved.cegar.summary())
    print(f"verdict: {proved.verdict.verdict.value} (sound for every pixel input)")

    # (b) a threshold in the genuinely undecided band, just above the
    # adversarially-reachable frontier: neither bound propagation nor
    # concretization decides it, so the trace shows splitting, bound
    # gaps and the open frontier — the anytime path.  On pixel-space
    # regions interval refinement converges very slowly (this is exactly
    # why the paper cuts at close-to-output feature layers), so expect a
    # budgeted, resumable UNKNOWN here rather than a verdict.
    shape = model.input_shape
    tight = undecided_band_threshold(
        model,
        lambda t: RiskCondition("probe", (output_geq(2, 0, t),)),
        np.zeros((1, *shape)),
        np.ones((1, *shape)),
        float(enclosure.lower[0]),
        hi,
    )
    print(f"\nrefining psi = waypoint >= {tight} over [0,1] pixels (method='cegar')")
    cegar = engine.run_query(
        VerificationQuery(
            risk=steer_far_left(tight),
            set_name="pixel-domain",
            method="cegar",
            refine_budget=40,
        )
    )
    print(cegar.cegar.summary())
    print(f"verdict: {cegar.verdict.verdict.value}")
    if cegar.verdict.verdict.value == "unknown":
        print(
            "budget exhausted — re-running the same query resumes the loop "
            "from its surviving frontier (it is cached per (set, risk))."
        )


if __name__ == "__main__":
    main()
