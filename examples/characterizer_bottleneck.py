"""Information-bottleneck study of input property characterizers (§V, E5).

The paper found that some properties ("traffic participants in adjacent
lanes") cannot be characterized from close-to-output features — the
trained classifier "almost acts like fair coin flipping" — because a
network trained to regress affordances discards unrelated information
(information bottleneck [16], [18]).

This example trains characterizers for several properties at several cut
layers and prints a balanced-accuracy table: affordance-relevant
properties (bend direction) stay decodable at late layers, while
affordance-irrelevant ones (adjacent traffic, fog) decay toward 0.5.

Run:  python examples/characterizer_bottleneck.py
"""

import numpy as np

from repro.core import ExperimentConfig, build_verified_system
from repro.perception.characterizer import train_characterizer
from repro.perception.features import extract_features
from repro.scenario.dataset import balanced_property_dataset


def balanced_accuracy(decisions: np.ndarray, labels: np.ndarray) -> float:
    labels = labels.astype(bool)
    if labels.all() or not labels.any():
        return 0.5
    recall_pos = float(decisions[labels].mean())
    recall_neg = float((~decisions[~labels]).mean())
    return 0.5 * (recall_pos + recall_neg)


def main() -> None:
    config = ExperimentConfig(
        train_scenes=400, val_scenes=200, epochs=25, properties=(), seed=0
    )
    system = build_verified_system(config)
    model = system.model

    properties = ("bends_right", "bends_left", "adjacent_traffic", "is_foggy")
    # candidate cut layers: after each late ReLU / flatten stage
    cut_layers = [6, 9, 11]

    print(f"{'property':<18}" + "".join(f"layer {l:>3}  " for l in cut_layers))
    for prop in properties:
        char_data = balanced_property_dataset(
            300, prop, config.scene, seed=hash(prop) % 10_000
        )
        char_labels = char_data.property_labels(prop)
        val_labels = system.val_data.property_labels(prop)
        row = f"{prop:<18}"
        for cut in cut_layers:
            char_features = extract_features(model, char_data.images, cut)
            val_features = extract_features(model, system.val_data.images, cut)
            characterizer, _ = train_characterizer(
                prop, cut, char_features, char_labels, val_features, val_labels,
                hidden=(16,), epochs=150, seed=0,
            )
            ba = balanced_accuracy(characterizer.decide(val_features), val_labels)
            row += f"{ba:>9.3f}  "
        print(row)

    print(
        "\nReading: ~0.5 = coin flip. Bend properties survive to the "
        "close-to-output layers because they determine the affordances; "
        "traffic/fog are bottlenecked away, exactly as §V reports."
    )


if __name__ == "__main__":
    main()
