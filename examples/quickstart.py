"""Quickstart: the Figure 1 workflow in ~40 lines.

Builds a synthetic highway ODD, trains a direct-perception network and a
"road bends right" characterizer, then asks the two questions from the
paper's evaluation:

1. Can the network suggest steering far left while the road bends right?
2. Can it suggest steering straight while the road bends right?

Run:  python examples/quickstart.py
"""

from repro.core import ExperimentConfig, build_verified_system
from repro.properties.library import STEER_STRAIGHT, steer_far_left
from repro.verification.output_range import output_range


def main() -> None:
    print("building the verified system (data -> perception -> characterizer)...")
    config = ExperimentConfig(
        train_scenes=400,
        val_scenes=120,
        epochs=25,
        properties=("bends_right",),
        seed=0,
    )
    system = build_verified_system(config)
    print(system.summary())
    print()

    # exact reachable frontier of the waypoint output over S~ ∩ {h accepts}
    frontier = output_range(
        system.verifier.suffix,
        system.verifier.feature_set("data"),
        system.characterizers["bends_right"].as_piecewise_linear(),
    )
    print(
        f"reachable waypoint range when 'bends_right' accepted: "
        f"[{frontier.lower:.2f}, {frontier.upper:.2f}] m"
    )

    # question 1: steering far left (threshold just beyond the frontier)
    far_left = steer_far_left(frontier.upper + 0.25)
    verdict = system.verifier.verify(
        far_left,
        property_name="bends_right",
        confusion=system.confusions["bends_right"],
    )
    print(f"\n[1] road bends right => never suggest waypoint "
          f">= {frontier.upper + 0.25:.2f} m left?")
    print(verdict.summary())

    # question 2: steering straight
    verdict = system.verifier.verify(STEER_STRAIGHT, property_name="bends_right")
    print("\n[2] road bends right => never suggest steering straight?")
    print(verdict.summary())

    # the conditional proof needs its runtime monitor
    monitor = system.verifier.make_monitor(keep_events=False)
    report = monitor.run(system.val_data.images)
    print(f"\nruntime monitor on held-out in-ODD stream: {report.summary()}")


if __name__ == "__main__":
    main()
