"""Quickstart: the Figure 1 workflow on the declarative query API.

Builds a synthetic highway ODD, trains a direct-perception network and a
"road bends right" characterizer, then asks the two questions from the
paper's evaluation as one two-query :class:`repro.api.Campaign`:

1. Can the network suggest steering far left while the road bends right?
2. Can it suggest steering straight while the road bends right?

Run:  python examples/quickstart.py
"""

from repro.api import Campaign, VerificationQuery
from repro.core import ExperimentConfig, build_verified_system
from repro.properties.library import STEER_STRAIGHT, steer_far_left


def main() -> None:
    print("building the verified system (data -> perception -> characterizer)...")
    config = ExperimentConfig(
        train_scenes=400,
        val_scenes=120,
        epochs=25,
        properties=("bends_right",),
        seed=0,
    )
    system = build_verified_system(config)
    print(system.summary())
    print()

    # the verifier is a shim over the query engine; use the engine directly
    engine = system.verifier.engine
    engine.confusions.update(system.confusions)

    # exact reachable frontier of the waypoint output over S~ ∩ {h accepts}
    frontier = engine.run_query(
        VerificationQuery(method="range", property_name="bends_right")
    ).output_range
    print(
        f"reachable waypoint range when 'bends_right' accepted: "
        f"[{frontier.lower:.2f}, {frontier.upper:.2f}] m"
    )

    campaign = Campaign("quickstart").add(
        # question 1: steering far left (threshold just beyond the frontier)
        VerificationQuery(
            risk=steer_far_left(frontier.upper + 0.25), property_name="bends_right"
        ),
        # question 2: steering straight
        VerificationQuery(risk=STEER_STRAIGHT, property_name="bends_right"),
    )
    report = engine.run(campaign)
    for index, result in enumerate(report, 1):
        print(f"\n[{index}] {result.query.name}")
        print(result.verdict.summary())
        print(f"    decided by: {result.decided_by} in {result.elapsed:.3f}s")
    print(f"\n{report.summary()}")

    # the conditional proof needs its runtime monitor
    monitor = engine.make_monitor(keep_events=False)
    monitor_report = monitor.run(system.val_data.images)
    print(f"\nruntime monitor on held-out in-ODD stream: {monitor_report.summary()}")


if __name__ == "__main__":
    main()
