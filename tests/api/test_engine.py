"""VerificationEngine: caching, ladder, feature-set guard, method paths."""

import numpy as np
import pytest

from repro.api import Method, VerificationEngine, VerificationQuery
from repro.core.verdict import Verdict
from repro.properties.risk import RiskCondition, output_geq
from repro.verification.abstraction.interval import propagate_box
from repro.verification.sets import Box


@pytest.fixture
def engine(api_system):
    model, images, cut, characterizer = api_system
    engine = VerificationEngine(model, cut)
    engine.add_feature_set_from_data(images)
    engine.attach_characterizer(characterizer)
    return engine


def _reachable_risk(api_system, quantile):
    model, images, _, _ = api_system
    outputs = model.forward(images)
    return RiskCondition(
        "q", (output_geq(2, 0, float(np.quantile(outputs[:, 0], quantile))),)
    )


def _unreachable_risk(engine):
    hull = propagate_box(engine.suffix, Box(*engine.feature_set("data").bounds()))
    return RiskCondition("never", (output_geq(2, 0, float(hull.upper[0]) + 1.0),))


class TestEncodingCache:
    def test_one_encode_across_repeated_queries(self, api_system):
        """The headline win: N same-shape queries, exactly one encoding."""
        model, images, cut, characterizer = api_system
        engine = VerificationEngine(model, cut, solver="highs")
        engine.add_feature_set_from_data(images)
        outputs = model.forward(images)
        for quantile in np.linspace(0.05, 0.95, 10):
            risk = RiskCondition(
                "q", (output_geq(2, 0, float(np.quantile(outputs[:, 0], quantile))),)
            )
            result = engine.run_query(
                VerificationQuery(risk=risk, prescreen_domain=None)
            )
            assert result.ok
        # single-row risks: the first query keeps the one-off feasibility
        # path (one relaxed encode); the repeated direction then triggers
        # one support optimization (one MILP encode) that answers the rest
        assert engine.cache_stats.get("miss:encoding:relaxed", 0) == 1
        assert engine.cache_stats.get("miss:encoding:milp", 0) == 1
        assert engine.cache_stats.get("miss:support", 0) == 1
        assert engine.cache_stats.get("hit:support", 0) == 8
        # suffix abstraction bounds propagated exactly once for the set
        assert engine.cache_stats.get("miss:abstraction-bounds", 0) <= 2

    def test_campaign_computes_support_eagerly(self, api_system):
        """Inside run() the sweep collapses onto one optimization."""
        from repro.api import Campaign
        from repro.properties.library import steer_far_left

        model, images, cut, _ = api_system
        engine = VerificationEngine(model, cut, solver="highs")
        engine.add_feature_set_from_data(images)
        campaign = Campaign("sweep").add_grid(
            risks=[steer_far_left(t) for t in np.linspace(-3.0, 3.0, 8)],
            prescreen_domain=None,
        )
        report = engine.run(campaign)
        assert engine.cache_stats.get("miss:support", 0) == 1
        assert engine.cache_stats.get("hit:support", 0) == 7
        assert all(r.decided_by == "support-cache" for r in report.results)

    def test_one_relaxed_encode_for_conjunction_risks(self, api_system):
        """Multi-row risks take the LP-screen path; still one encoding."""
        from repro.properties.risk import output_leq

        model, images, cut, _ = api_system
        engine = VerificationEngine(model, cut, solver="highs")
        engine.add_feature_set_from_data(images)
        outputs = model.forward(images)
        for quantile in np.linspace(0.1, 0.9, 6):
            level = float(np.quantile(outputs[:, 0], quantile))
            risk = RiskCondition(
                "band",
                (output_geq(2, 0, level - 0.05), output_leq(2, 0, level + 0.05)),
            )
            result = engine.run_query(
                VerificationQuery(risk=risk, prescreen_domain=None)
            )
            assert result.ok
        assert engine.cache_stats.get("miss:encoding:relaxed", 0) == 1
        assert engine.cache_stats.get("hit:encoding:relaxed", 0) == 5

    def test_cached_model_rolled_back_between_queries(self, engine, api_system):
        """Risk rows appended for one query must not leak into the next."""
        reachable = _reachable_risk(api_system, 0.5)
        unreachable = _unreachable_risk(engine)
        first = engine.run_query(
            VerificationQuery(risk=unreachable, prescreen_domain=None)
        )
        second = engine.run_query(
            VerificationQuery(risk=reachable, prescreen_domain=None)
        )
        third = engine.run_query(
            VerificationQuery(risk=unreachable, prescreen_domain=None)
        )
        assert first.verdict.verdict is Verdict.CONDITIONALLY_SAFE
        assert second.verdict.verdict is Verdict.UNSAFE_IN_SET
        assert third.verdict.verdict is first.verdict.verdict

    def test_range_objective_rolled_back(self, engine):
        reach_a = engine.run_query(VerificationQuery(method="range", output_index=0))
        reach_b = engine.run_query(VerificationQuery(method="range", output_index=0))
        assert reach_a.output_range.lower == pytest.approx(reach_b.output_range.lower)
        assert reach_a.output_range.upper == pytest.approx(reach_b.output_range.upper)
        assert engine.cache_stats.get("miss:encoding:milp", 0) == 1

    def test_prescreen_enclosure_cached(self, engine, api_system):
        unreachable = _unreachable_risk(engine)
        for _ in range(4):
            result = engine.run_query(VerificationQuery(risk=unreachable))
            assert result.decided_by == "prescreen"
        assert engine.cache_stats.get("miss:prescreen-enclosure", 0) == 1
        assert engine.cache_stats.get("hit:prescreen-enclosure", 0) == 3

    def test_cache_disabled_reencodes(self, api_system):
        model, images, cut, _ = api_system
        engine = VerificationEngine(model, cut, cache=False)
        engine.add_feature_set_from_data(images)
        risk = _reachable_risk(api_system, 0.5)
        for _ in range(3):
            engine.run_query(VerificationQuery(risk=risk, prescreen_domain=None))
        assert engine.cache_stats.get("hit:encoding:relaxed", 0) == 0
        assert engine.cache_stats.get("miss:encoding:relaxed", 0) == 3


class TestCacheInvalidation:
    def test_reattached_characterizer_invalidates_caches(self, api_system):
        """Stale encodings/support values must not survive re-attachment."""
        from dataclasses import replace

        model, images, cut, characterizer = api_system
        engine = VerificationEngine(model, cut, solver="highs")
        engine.add_feature_set_from_data(images)
        engine.attach_characterizer(characterizer)
        risk = _reachable_risk(api_system, 0.5)
        query = VerificationQuery(
            risk=risk, property_name="high_f0", prescreen_domain=None
        )
        # run twice so the support cache is populated for this direction
        first = engine.run_query(query)
        engine.run_query(query)
        assert first.verdict.verdict is Verdict.UNSAFE_IN_SET
        # a characterizer that never accepts empties the region
        engine.attach_characterizer(replace(characterizer, threshold=1e9))
        after = engine.run_query(query)
        assert after.verdict.verdict is Verdict.CONDITIONALLY_SAFE

    def test_engine_rejects_unknown_solver_options(self, api_system):
        model, images, cut, _ = api_system
        with pytest.raises(TypeError, match="does not accept option"):
            VerificationEngine(model, cut, solver="highs", node_limit=5)

    def test_options_filtered_for_fallback_backend(self, api_system):
        """phase-split options must not crash the MILP range fallback."""
        model, images, cut, _ = api_system
        engine = VerificationEngine(model, cut, solver="phase-split", node_limit=500)
        engine.add_feature_set_from_data(images)
        result = engine.run_query(VerificationQuery(method="range", output_index=0))
        assert result.output_range is not None

    def test_prescreen_decides_before_characterizer_lookup(self, api_system):
        """Legacy contract: a prescreen-excluded risk never needs phi."""
        model, images, cut, _ = api_system
        engine = VerificationEngine(model, cut)
        engine.add_feature_set_from_data(images)
        unreachable = _unreachable_risk(engine)
        result = engine.run_query(
            VerificationQuery(risk=unreachable, property_name="ghost")
        )
        assert result.decided_by == "prescreen"
        with pytest.raises(KeyError, match="no characterizer"):
            engine.run_query(
                VerificationQuery(
                    risk=unreachable, property_name="ghost", prescreen_domain=None
                )
            )


class TestFeatureSetGuard:
    def test_duplicate_name_raises(self, api_system):
        model, images, cut, _ = api_system
        engine = VerificationEngine(model, cut)
        engine.add_feature_set_from_data(images)
        with pytest.raises(ValueError, match="already registered"):
            engine.add_feature_set_from_data(images)
        with pytest.raises(ValueError, match="already registered"):
            engine.add_feature_set_from_features(
                model.prefix_apply(images, cut), name="data"
            )

    def test_overwrite_allows_replacement(self, api_system):
        model, images, cut, _ = api_system
        engine = VerificationEngine(model, cut)
        engine.add_feature_set_from_data(images, kind="box")
        replaced = engine.add_feature_set_from_data(
            images, kind="box+diff", overwrite=True
        )
        assert engine.feature_set("data") is replaced

    def test_overwrite_invalidates_set_caches(self, api_system):
        """A replaced set must not serve encodings built for the old one."""
        model, images, cut, _ = api_system
        engine = VerificationEngine(model, cut, solver="highs")
        engine.add_feature_set_from_data(images, kind="box")
        wide = engine.run_query(VerificationQuery(method="range", output_index=0))
        engine.add_feature_set_from_features(
            model.prefix_apply(images, cut)[:10], kind="box", overwrite=True
        )
        narrow = engine.run_query(VerificationQuery(method="range", output_index=0))
        assert narrow.output_range.lower >= wide.output_range.lower - 1e-9
        assert narrow.output_range.upper <= wide.output_range.upper + 1e-9

    def test_shim_exposes_guard(self, api_system):
        from repro.core.workflow import SafetyVerifier

        model, images, cut, _ = api_system
        verifier = SafetyVerifier(model, cut)
        verifier.add_feature_set_from_data(images)
        with pytest.raises(ValueError, match="already registered"):
            verifier.add_feature_set_from_data(images)
        verifier.add_feature_set_from_data(images, overwrite=True)


class TestMethodPaths:
    def test_relaxed_method_sound(self, engine, api_system):
        """Relaxed verdicts must agree with exact ones whenever decisive."""
        for quantile in (0.2, 0.5, 0.8):
            risk = _reachable_risk(api_system, quantile)
            relaxed = engine.run_query(
                VerificationQuery(risk=risk, method="relaxed", prescreen_domain=None)
            )
            exact = engine.run_query(
                VerificationQuery(risk=risk, method="exact", prescreen_domain=None)
            )
            if relaxed.verdict.verdict is not Verdict.UNKNOWN:
                assert relaxed.verdict.verdict is exact.verdict.verdict

    def test_refine_method_needs_data(self, engine, api_system):
        risk = _reachable_risk(api_system, 0.5)
        with pytest.raises(ValueError, match="set_refinement_data"):
            engine.run_query(VerificationQuery(risk=risk, method="refine"))

    def test_refine_method(self, api_system):
        model, images, cut, _ = api_system
        engine = VerificationEngine(model, cut, solver="highs")
        engine.add_feature_set_from_data(images)
        engine.set_refinement_data(images)
        unreachable = _unreachable_risk(engine)
        result = engine.run_query(VerificationQuery(risk=unreachable, method="refine"))
        assert result.verdict.proved
        assert result.refinement is not None and result.refinement.proved

    def test_robustness_method(self, engine, api_system):
        model, images, cut, _ = api_system
        anchor = tuple(model.prefix_apply(images[:1], cut)[0])
        result = engine.run_query(
            VerificationQuery(
                method="robustness", anchor=anchor, epsilon=0.01, delta=10.0
            )
        )
        assert result.robustness is not None and result.robustness.robust

    def test_characterizer_conjunct_tightens_range(self, engine):
        free = engine.run_query(VerificationQuery(method="range", output_index=0))
        constrained = engine.run_query(
            VerificationQuery(method="range", output_index=0, property_name="high_f0")
        )
        assert constrained.output_range.lower >= free.output_range.lower - 1e-6
        assert constrained.output_range.upper <= free.output_range.upper + 1e-6

    def test_missing_characterizer_raises(self, engine, api_system):
        risk = _reachable_risk(api_system, 0.5)
        with pytest.raises(KeyError, match="no characterizer"):
            engine.run_query(VerificationQuery(risk=risk, property_name="ghost"))

    def test_unknown_set_raises(self, engine, api_system):
        risk = _reachable_risk(api_system, 0.5)
        with pytest.raises(KeyError, match="no feature set"):
            engine.run_query(VerificationQuery(risk=risk, set_name="nope"))

    def test_budget_reaches_solver(self, api_system):
        model, images, cut, _ = api_system
        engine = VerificationEngine(model, cut, lp_screen=False)
        engine.add_feature_set_from_data(images)
        risk = _reachable_risk(api_system, 0.5)
        result = engine.run_query(
            VerificationQuery(risk=risk, node_limit=1, prescreen_domain=None)
        )
        assert result.verdict.verdict in (Verdict.UNKNOWN, Verdict.UNSAFE_IN_SET)


class TestShimEquivalence:
    def test_verify_matches_engine(self, api_system):
        from repro.core.workflow import SafetyVerifier

        model, images, cut, characterizer = api_system
        verifier = SafetyVerifier(model, cut)
        verifier.add_feature_set_from_data(images)
        verifier.attach_characterizer(characterizer)
        engine = VerificationEngine(model, cut)
        engine.add_feature_set_from_data(images)
        engine.attach_characterizer(characterizer)

        outputs = model.forward(images)
        for quantile in (0.1, 0.5, 0.9):
            risk = RiskCondition(
                "q", (output_geq(2, 0, float(np.quantile(outputs[:, 0], quantile))),)
            )
            for prop in (None, "high_f0"):
                legacy = verifier.verify(risk, property_name=prop)
                modern = engine.run_query(
                    VerificationQuery(risk=risk, property_name=prop)
                ).verdict
                assert legacy.verdict is modern.verdict
                assert legacy.monitored == modern.monitored
                assert legacy.feature_set_kind == modern.feature_set_kind

    def test_shim_is_engine_backed(self, api_system):
        from repro.core.workflow import SafetyVerifier

        model, images, cut, _ = api_system
        verifier = SafetyVerifier(model, cut)
        assert isinstance(verifier.engine, VerificationEngine)
        assert verifier.suffix is verifier.engine.suffix
