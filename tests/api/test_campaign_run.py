"""Campaign execution: parallel determinism, reports, shim equivalence."""

import json

import numpy as np
import pytest

from repro.api import Campaign, VerificationEngine, VerificationQuery
from repro.core.workflow import SafetyVerifier
from repro.properties.library import steer_far_left


@pytest.fixture(scope="module")
def campaign_engine(api_system):
    model, images, cut, characterizer = api_system
    engine = VerificationEngine(model, cut, solver="highs")
    engine.add_feature_set_from_data(images)
    engine.attach_characterizer(characterizer)
    return engine


@pytest.fixture(scope="module")
def sweep(api_system):
    """A 24-query campaign over two characterizer settings × 12 thresholds."""
    model, images, _, _ = api_system
    outputs = model.forward(images)
    lo, hi = float(outputs[:, 0].min()) - 0.5, float(outputs[:, 0].max()) + 0.5
    risks = [steer_far_left(t) for t in np.linspace(lo, hi, 12)]
    return Campaign("sweep").add_grid(risks=risks, properties=(None, "high_f0"))


class TestCampaignRun:
    def test_sequential_report(self, campaign_engine, sweep):
        report = campaign_engine.run(sweep)
        assert len(report) == 24
        assert report.executor == "sequential"
        assert not report.errors
        assert sum(report.verdict_counts().values()) == 24
        # every query after the first shares the cached artifacts
        assert report.cache_hit_counts().get("prescreen-enclosure", 0) >= 20

    def test_parallel_matches_sequential_and_legacy_verify(
        self, api_system, campaign_engine, sweep
    ):
        """Acceptance: 20+ queries, workers=4, verdicts identical to the
        sequential legacy SafetyVerifier.verify path."""
        model, images, cut, characterizer = api_system
        parallel = campaign_engine.run(sweep, workers=4)
        assert len(parallel) == 24

        verifier = SafetyVerifier(model, cut, solver="highs")
        verifier.add_feature_set_from_data(images)
        verifier.attach_characterizer(characterizer)
        legacy = [
            verifier.verify(
                query.risk,
                property_name=query.property_name,
                prescreen_domain=query.prescreen_domain,
            )
            for query in sweep
        ]
        for result, expected in zip(parallel.results, legacy):
            assert result.ok
            assert result.verdict.verdict is expected.verdict
            assert result.verdict.monitored == expected.monitored

    def test_parallel_is_deterministic(self, campaign_engine, sweep):
        first = campaign_engine.run(sweep, workers=2)
        second = campaign_engine.run(sweep, workers=4)
        sequential = campaign_engine.run(sweep, workers=1)
        for a, b, c in zip(first.results, second.results, sequential.results):
            assert a.verdict.verdict is b.verdict.verdict is c.verdict.verdict
            assert a.decided_by == b.decided_by == c.decided_by

    def test_single_query_accepted(self, campaign_engine, sweep):
        report = campaign_engine.run(sweep[0])
        assert len(report) == 1
        assert report.results[0].ok

    def test_bad_query_becomes_error_result(self, campaign_engine, sweep):
        broken = Campaign("broken").add(
            sweep[0],
            VerificationQuery(risk=sweep[0].risk, set_name="missing-set"),
        )
        report = campaign_engine.run(broken)
        assert report.results[0].ok
        assert not report.results[1].ok
        assert "missing-set" in report.results[1].error
        assert report.verdict_counts().get("error") == 1

    def test_report_json_round_trip(self, campaign_engine, sweep):
        report = campaign_engine.run(sweep)
        payload = json.loads(report.to_json())
        assert payload["campaign"] == "sweep"
        assert len(payload["results"]) == 24
        assert all("query" in entry for entry in payload["results"])
        assert payload["verdict_counts"] == report.verdict_counts()

    def test_summary_mentions_cache_and_executor(self, campaign_engine, sweep):
        report = campaign_engine.run(sweep)
        text = report.summary()
        assert "sweep" in text and "24 queries" in text

    def test_mixed_method_campaign(self, campaign_engine, sweep):
        mixed = (
            Campaign("mixed")
            .add(sweep[0])
            .add_ranges(output_indices=(0, 1), properties=("high_f0",))
        )
        report = campaign_engine.run(mixed)
        assert report.results[0].verdict is not None
        assert report.results[1].output_range is not None
        assert report.results[2].output_range.output_index == 1
