"""CEGAR as an engine strategy: method dispatch, fallback rung, reports."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import Campaign, VerificationEngine, VerificationQuery
from repro.perception.network import build_mlp_perception_network, default_cut_layer
from repro.properties.risk import RiskCondition, output_geq
from repro.verification.solver import register_solver
from repro.verification.solver.result import SolveResult, SolveStatus


@pytest.fixture(scope="module")
def model():
    return build_mlp_perception_network(
        input_dim=4, hidden=(8,), feature_width=4, seed=1
    )


@pytest.fixture(scope="module")
def cut(model):
    return default_cut_layer(model)


@pytest.fixture(scope="module")
def reachable(model):
    rng = np.random.default_rng(0)
    out = model.forward(rng.uniform(0, 1, size=(4000, 4)), training=False)
    return float(out[:, 0].min()), float(out[:, 0].max())


def _engine(model, cut, **kwargs) -> VerificationEngine:
    engine = VerificationEngine(model, cut, solver="highs", **kwargs)
    engine.add_static_feature_set(0.0, 1.0, name="domain")
    return engine


def _risk(threshold: float) -> RiskCondition:
    return RiskCondition("y0-high", (output_geq(2, 0, threshold),))


class TestCegarMethod:
    def test_safe_region_gets_unconditional_safe_verdict(self, model, cut, reachable):
        engine = _engine(model, cut)
        query = VerificationQuery(
            risk=_risk(reachable[1] + 50.0), set_name="domain",
            method="cegar", refine_budget=16,
        )
        result = engine.run_query(query)
        assert result.verdict.verdict.value == "safe"
        assert not result.verdict.monitored  # input-region proofs are sound
        assert result.decided_by == "cegar"
        assert result.ladder == ("cegar",)
        assert result.cegar is not None and result.cegar.proved

    def test_unsafe_region_gets_feature_counterexample(self, model, cut, reachable):
        lo, hi = reachable
        engine = _engine(model, cut)
        query = VerificationQuery(
            risk=_risk(0.5 * (lo + hi)), set_name="domain", method="cegar"
        )
        result = engine.run_query(query)
        assert result.verdict.verdict.value == "unsafe-in-set"
        cex = result.verdict.counterexample
        assert cex is not None
        # the decoded feature witness replays: suffix(features) == output
        replay = model.suffix_apply(cex.features[None, :], cut)[0]
        np.testing.assert_allclose(replay, cex.predicted_output, atol=1e-6)
        assert cex.risk_occurs

    def test_budget_exhaustion_is_unknown_and_resumable(self, model, cut, reachable):
        engine = _engine(model, cut)
        query = VerificationQuery(
            risk=_risk(reachable[1] + 0.3), set_name="domain",
            method="cegar", refine_budget=2,
        )
        first = engine.run_query(query)
        assert first.verdict.verdict.value == "unknown"
        assert first.cegar.trace.open_frontier > 0
        # the same query resumes the cached loop instead of restarting
        second = engine.run_query(
            VerificationQuery(
                risk=_risk(reachable[1] + 0.3), set_name="domain",
                method="cegar", refine_budget=4000,
            )
        )
        assert "cegar-loop" in second.cache_hits
        assert second.verdict.verdict.value == "safe"
        combined = second.cegar.trace.decided_fractions()
        assert all(a <= b + 1e-12 for a, b in zip(combined, combined[1:]))

    def test_resume_is_per_solver_configuration(self, model, cut, reachable):
        # a re-submitted query with a different backend or budget must
        # not silently resume the loop built for the old configuration
        engine = _engine(model, cut)
        base = dict(
            risk=_risk(reachable[1] + 0.3), set_name="domain",
            method="cegar", refine_budget=2,
        )
        first = engine.run_query(VerificationQuery(**base))
        assert "cegar-loop" not in first.cache_hits
        same = engine.run_query(VerificationQuery(**base))
        assert "cegar-loop" in same.cache_hits
        different = engine.run_query(
            VerificationQuery(**{**base, "solver": "branch-and-bound"})
        )
        assert "cegar-loop" not in different.cache_hits

    def test_failed_loop_is_evicted_not_resumed(self, model, cut, reachable, monkeypatch):
        # if a cached loop dies mid-round, the engine must evict it so a
        # re-submitted query starts fresh instead of resuming a frontier
        # with lost subproblems (which could end in an unsound SAFE)
        engine = _engine(model, cut)
        query = VerificationQuery(
            risk=_risk(reachable[1] + 0.3), set_name="domain",
            method="cegar", refine_budget=2,
        )
        first = engine.run_query(query)
        assert first.verdict.verdict.value == "unknown"
        (loop,) = engine._cegar_loops.values()
        monkeypatch.setattr(
            loop, "_prescreen", lambda boxes: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        failed = engine.run_query_safe(query)
        assert not failed.ok and "boom" in failed.error
        assert not engine._cegar_loops  # evicted
        monkeypatch.undo()
        retry = engine.run_query(
            VerificationQuery(
                risk=_risk(reachable[1] + 0.3), set_name="domain",
                method="cegar", refine_budget=4000,
            )
        )
        assert "cegar-loop" not in retry.cache_hits  # fresh loop, not resume
        assert retry.verdict.verdict.value == "safe"

    def test_cegar_needs_input_region_provenance(self, model, cut, reachable):
        engine = _engine(model, cut)
        rng = np.random.default_rng(3)
        engine.add_feature_set_from_data(
            rng.uniform(0, 1, size=(50, 4)), name="data"
        )
        query = VerificationQuery(
            risk=_risk(reachable[1]), set_name="data", method="cegar"
        )
        with pytest.raises(ValueError, match="input-region provenance"):
            engine.run_query(query)
        # run_query_safe reports it as a per-query error instead
        assert "input-region" in engine.run_query_safe(query).error

    def test_cegar_is_phi_free(self, model, cut, reachable):
        engine = _engine(model, cut)
        query = VerificationQuery(
            risk=_risk(reachable[1]), set_name="domain",
            property_name="bends_right", method="cegar",
        )
        with pytest.raises(ValueError, match="phi-free"):
            engine.run_query(query)

    def test_region_sets_carry_input_boxes(self, model, cut):
        engine = VerificationEngine(model, cut, solver="highs")
        from repro.verification.sets import BoxBatch

        lower = np.zeros((3, 4))
        upper = np.full((3, 4), 0.5)
        names = engine.add_region_sets(BoxBatch(lower, upper), name_prefix="r")
        for index, name in enumerate(names):
            box = engine._registered(name).input_box
            assert box is not None
            np.testing.assert_array_equal(box[0], lower[index])
            np.testing.assert_array_equal(box[1], upper[index])


@pytest.fixture
def unknown_solver():
    """A backend that always gives up, removed from the registry after."""
    from repro.verification.solver import _REGISTRY

    spec = register_solver(
        "always-unknown",
        lambda **_: type(
            "Stub",
            (),
            {"solve": staticmethod(lambda m: SolveResult(status=SolveStatus.UNKNOWN))},
        )(),
        encoding="milp",
        supports_minimize=False,
        overwrite=True,
    )
    yield spec.name
    for name in spec.all_names():
        _REGISTRY.pop(name, None)


class TestCegarFallback:
    def test_unknown_solver_results_fall_back_to_cegar(
        self, model, cut, reachable, unknown_solver
    ):
        engine = VerificationEngine(
            model, cut, solver="always-unknown",
            lp_screen=False, refine_fallback=True, cegar_budget=4000,
        )
        engine.add_static_feature_set(0.0, 1.0, name="domain")
        query = VerificationQuery(
            risk=_risk(reachable[1] + 0.3), set_name="domain",
            prescreen_domain=None,
        )
        result = engine.run_query(query)
        assert result.decided_by == "cegar-fallback"
        assert "cegar-fallback" in result.ladder
        assert result.verdict.verdict.value == "safe"
        assert result.cegar is not None


class TestCampaignSerialization:
    def test_report_serializes_the_trace(self, model, cut, reachable):
        engine = _engine(model, cut)
        campaign = Campaign("cegar-sweep").add_grid(
            risks=[_risk(reachable[1] + 50.0), _risk(reachable[1] + 0.3)],
            sets=("domain",),
            method="cegar",
            refine_budget=4000,
        )
        report = engine.run(campaign)
        assert not report.errors
        payload = json.loads(report.to_json())
        for entry in payload["results"]:
            assert entry["cegar"]["status"] == "unsat"
            trace = entry["cegar"]["trace"]
            fractions = [r["decided_volume"] for r in trace["rounds"]]
            assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))
            assert trace["decided_fraction"] == pytest.approx(1.0)
        assert report.decided_by_counts() == {"cegar": 2}

    def test_query_to_dict_includes_budget(self, reachable):
        query = VerificationQuery(
            risk=_risk(0.0), method="cegar", refine_budget=7
        )
        assert query.to_dict()["refine_budget"] == 7

    def test_parallel_campaign_with_cegar_queries(self, model, cut, reachable):
        engine = _engine(model, cut)
        campaign = Campaign("cegar-parallel").add_grid(
            risks=[_risk(reachable[1] + 50.0), _risk(reachable[1] + 40.0)],
            sets=("domain",),
            method="cegar",
            refine_budget=64,
        )
        report = engine.run(campaign, workers=2)
        assert not report.errors
        assert [r.verdict.verdict.value for r in report.results] == ["safe", "safe"]
