"""Golden-file regression test for the ``CampaignReport`` JSON contract.

Engine refactors must not silently change the report *shape* (the set of
JSON key paths) or the *verdict semantics* (per-query verdict, monitor
flag, solver status and deciding ladder step) of a fixed, fully seeded
12-query campaign.  Timing fields are zeroed and value-level floats are
dropped before comparison, so the golden file only pins what a refactor
must preserve.

Regenerating after an **intentional** contract change::

    PYTHONPATH=src python tests/api/test_report_golden.py --regenerate

then commit the updated ``tests/api/golden/campaign_report.json``
together with the change that motivated it.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

from repro.api import Campaign, VerificationEngine
from repro.perception.characterizer import train_characterizer
from repro.perception.network import build_mlp_perception_network, default_cut_layer
from repro.properties.library import steer_far_left

GOLDEN_PATH = Path(__file__).parent / "golden" / "campaign_report.json"

#: fixed absolute thresholds, all well clear of the system's decision
#: boundaries (reachable waypoint range is about [-1.79, 0.54] plain and
#: [-0.14, 0.54] under the characterizer) so float drift cannot flip a verdict
THRESHOLDS = (-1.0, -0.2, 0.1, 0.4, 0.7, 1.2)


def _build_report_dict() -> dict:
    """The seeded 12-query campaign report, as a JSON dict."""
    model = build_mlp_perception_network(
        input_dim=6, hidden=(12,), feature_width=6, seed=4
    )
    rng = np.random.default_rng(12345)
    images = rng.uniform(0, 1, size=(200, 6))
    cut = default_cut_layer(model)
    features = model.prefix_apply(images, cut)
    labels = (features[:, 0] > np.median(features[:, 0])).astype(float)
    characterizer, _ = train_characterizer(
        "high_f0", cut, features, labels, features, labels, epochs=100, seed=0
    )
    engine = VerificationEngine(model, cut, solver="highs")
    engine.add_feature_set_from_features(features, kind="box+diff")
    engine.attach_characterizer(characterizer)
    campaign = Campaign("golden-12").add_grid(
        risks=[steer_far_left(t) for t in THRESHOLDS],
        properties=("high_f0", None),
    )
    report = engine.run(campaign)
    assert len(report) == 12
    assert not report.errors, [r.error for r in report.errors]
    return json.loads(report.to_json())


def _key_paths(node, prefix: str = "") -> set[str]:
    """All JSON key paths; list elements collapse to ``[]``."""
    paths = set()
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            paths.add(path)
            paths.update(_key_paths(value, path))
    elif isinstance(node, list):
        for value in node:
            paths.update(_key_paths(value, f"{prefix}[]"))
    return paths


def _normalize(report: dict) -> dict:
    """The schema + verdict-semantics projection pinned by the golden file."""
    return {
        "campaign": report["campaign"],
        "workers": report["workers"],
        "executor": report["executor"],
        "verdict_counts": report["verdict_counts"],
        "schema": sorted(_key_paths(report)),
        "queries": [
            {
                "label": result["query"]["label"],
                "set": result["query"]["set"],
                "property": result["query"]["property"],
                "risk_description": result["query"]["risk_description"],
                "verdict": result["verdict"],
                "monitored": result["monitored"],
                "solver_status": result["solver_status"],
                "decided_by": result["decided_by"],
                "has_counterexample": "counterexample" in result,
            }
            for result in report["results"]
        ],
    }


def test_campaign_report_matches_golden():
    """See the module docstring for the regeneration command."""
    assert GOLDEN_PATH.exists(), (
        f"golden file missing; generate it with "
        f"PYTHONPATH=src python {Path(__file__).relative_to(Path.cwd())} --regenerate"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    actual = _normalize(_build_report_dict())
    assert actual == golden, (
        "CampaignReport schema or verdict semantics changed; if intentional, "
        "regenerate the golden file (see module docstring) and commit it"
    )


def main(argv: list[str]) -> int:
    if "--regenerate" not in argv:
        print(__doc__)
        return 2
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    normalized = _normalize(_build_report_dict())
    GOLDEN_PATH.write_text(json.dumps(normalized, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
