"""Region-major campaigns: batched region sets, planner, verdict parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Campaign, Method, VerificationEngine
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.properties.library import steer_far_left
from repro.scenario.regions import scenario_region_grid
from repro.verification.output_range import output_range_batch
from repro.verification.prescreen import prescreen, prescreen_batch
from repro.verification.sets import BoxBatch


@pytest.fixture(scope="module")
def grid():
    return scenario_region_grid(
        n_scenes=3, weather_levels=(0.0, 1.0), traffic_levels=(0, 1), seed=2
    )


@pytest.fixture(scope="module")
def conv_model():
    model = Sequential(
        [
            Conv2D(4, 3, stride=2, padding=1),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(12),
            ReLU(),
            Dense(2),
        ],
        input_shape=(1, 32, 32),
        seed=13,
    )
    model.forward(
        np.random.default_rng(0).uniform(0, 1, size=(4, 1, 32, 32)), training=True
    )
    return model


@pytest.fixture(scope="module")
def cut_layer(conv_model):
    return 6


def _engine(conv_model, cut_layer, **kwargs):
    return VerificationEngine(conv_model, cut_layer, solver="highs", **kwargs)


class TestAddRegionSets:
    def test_batched_equals_scalar_registration(self, conv_model, cut_layer, grid):
        batched = _engine(conv_model, cut_layer)
        scalar = _engine(conv_model, cut_layer)
        names = batched.add_region_sets(grid)
        assert names == scalar.add_region_sets(grid, batch=False)
        for name in names:
            a = batched.feature_set(name)
            b = scalar.feature_set(name)
            np.testing.assert_allclose(a.lower, b.lower, atol=1e-9)
            np.testing.assert_allclose(a.upper, b.upper, atol=1e-9)

    def test_sets_are_sound(self, conv_model, cut_layer, grid):
        engine = _engine(conv_model, cut_layer)
        engine.add_region_sets(grid)
        registered = engine._registered("region-000")
        assert registered.sound is True
        assert registered.kind == "interval(region)"

    def test_raw_box_batch_with_prefix(self, conv_model, cut_layer):
        engine = _engine(conv_model, cut_layer)
        lower = np.zeros((3, 1, 32, 32))
        names = engine.add_region_sets(
            BoxBatch(lower, lower + 0.5), name_prefix="cell"
        )
        assert names == ["cell-000", "cell-001", "cell-002"]

    def test_shape_mismatch_rejected(self, conv_model, cut_layer):
        engine = _engine(conv_model, cut_layer)
        bad = BoxBatch(np.zeros((2, 1, 8, 8)), np.ones((2, 1, 8, 8)))
        with pytest.raises(ValueError, match="model input"):
            engine.add_region_sets(bad)

    def test_duplicate_names_atomic(self, conv_model, cut_layer, grid):
        engine = _engine(conv_model, cut_layer)
        engine.add_region_sets(grid)
        before = set(engine.feature_set_names())
        with pytest.raises(ValueError, match="already registered"):
            engine.add_region_sets(grid)
        assert set(engine.feature_set_names()) == before
        engine.add_region_sets(grid, overwrite=True)  # no error

    def test_region_contains_rendered_features(self, conv_model, cut_layer, grid):
        """Cut-layer features of any in-box input lie in the region set."""
        engine = _engine(conv_model, cut_layer)
        engine.add_region_sets(grid)
        rng = np.random.default_rng(1)
        region = grid[0]
        span = region.upper - region.lower
        inputs = region.lower[None] + rng.uniform(0, 1, size=(5, 1, 32, 32)) * span[None]
        features = conv_model.prefix_apply(inputs, cut_layer)
        assert np.all(engine.feature_set("region-000").contains(features, tol=1e-7))


class TestFromScenarioGrid:
    def test_region_major_expansion(self, grid):
        risks = [steer_far_left(1.0), steer_far_left(2.0)]
        campaign = Campaign.from_scenario_grid(grid, risks, properties=(None,))
        assert len(campaign) == len(grid) * 2
        # regions outermost: the first two queries share region-000
        assert campaign[0].set_name == "region-000"
        assert campaign[1].set_name == "region-000"
        assert campaign[2].set_name == "region-001"

    def test_metadata_provenance(self, grid):
        campaign = Campaign.from_scenario_grid(grid, [steer_far_left(1.0)])
        meta = dict(campaign[0].metadata)
        assert meta["region"] == "region-000"
        assert "weather" in meta and "traffic" in meta
        assert dict(campaign[0].to_dict()["metadata"])["region"] == "region-000"

    def test_needs_risks(self, grid):
        with pytest.raises(ValueError, match="risk"):
            Campaign.from_scenario_grid(grid, risks=[])

    def test_method_and_budget_forwarded(self, grid):
        campaign = Campaign.from_scenario_grid(
            grid, [steer_far_left(1.0)], method="relaxed", time_limit=2.0
        )
        assert campaign[0].method is Method.RELAXED
        assert campaign[0].time_limit == 2.0


class TestRegionMajorExecution:
    @pytest.fixture(scope="class")
    def campaign(self, conv_model, cut_layer, grid):
        engine = _engine(conv_model, cut_layer)
        engine.add_region_sets(grid)
        ranges = output_range_batch(
            engine.suffix, [engine.feature_set(n) for n in grid.names]
        )
        hi = max(r.upper for r in ranges)
        lo = min(r.lower for r in ranges)
        return Campaign.from_scenario_grid(
            grid,
            risks=[steer_far_left(hi + 0.25), steer_far_left(0.5 * (lo + hi))],
        )

    def test_batched_and_scalar_verdicts_identical(
        self, conv_model, cut_layer, grid, campaign
    ):
        batched = _engine(conv_model, cut_layer)
        batched.add_region_sets(grid)
        scalar = _engine(conv_model, cut_layer, batch_prescreen=False)
        scalar.add_region_sets(grid, batch=False)

        batched_report = batched.run(campaign)
        scalar_report = scalar.run(campaign)
        assert [r.verdict.verdict for r in batched_report.results] == [
            r.verdict.verdict for r in scalar_report.results
        ]
        # the batched planner computed every enclosure in one pass ...
        assert (
            batched_report.cache_stats["batch:prescreen-enclosure:interval"]
            == len(grid)
        )
        # ... so per-query prescreens only ever hit the cache
        assert batched_report.cache_stats.get("miss:prescreen-enclosure", 0) == 0
        assert scalar_report.cache_stats["miss:prescreen-enclosure"] == len(grid)

    def test_prescreen_excludes_safe_region_queries(
        self, conv_model, cut_layer, grid, campaign
    ):
        engine = _engine(conv_model, cut_layer)
        engine.add_region_sets(grid)
        report = engine.run(campaign)
        decided = report.decided_by_counts()
        # the high-threshold half is excluded by bound propagation alone
        assert decided.get("prescreen", 0) >= len(grid)
        # region sets are sound: exclusion proves SAFE, not conditional
        safe = [r for r in report if r.decided_by == "prescreen"]
        assert all(r.verdict.verdict.value == "safe" for r in safe)

    def test_prescreen_batch_matches_scalar_prescreen(
        self, conv_model, cut_layer, grid
    ):
        engine = _engine(conv_model, cut_layer)
        names = engine.add_region_sets(grid)
        sets = [engine.feature_set(n) for n in names]
        risk = steer_far_left(1.0)
        batched = prescreen_batch(engine.suffix, sets, risk)
        for feature_set, result in zip(sets, batched):
            scalar = prescreen(engine.suffix, feature_set, risk)
            assert result.excluded == scalar.excluded
            assert result.best_possible_margin == pytest.approx(
                scalar.best_possible_margin, abs=1e-9
            )

    def test_zonotope_domain_batched_parity(self, conv_model, cut_layer, grid):
        engine = _engine(conv_model, cut_layer)
        engine.add_region_sets(grid)
        risks = [steer_far_left(0.0)]
        campaign = Campaign.from_scenario_grid(
            grid, risks, prescreen_domain="zonotope"
        )
        scalar = _engine(conv_model, cut_layer, batch_prescreen=False)
        scalar.add_region_sets(grid, batch=False)
        a = engine.run(campaign)
        b = scalar.run(campaign)
        assert a.cache_stats["batch:prescreen-enclosure:zonotope"] == len(grid)
        assert [r.verdict.verdict for r in a.results] == [
            r.verdict.verdict for r in b.results
        ]

    def test_output_enclosures_seed_the_campaign_prescreen(
        self, conv_model, cut_layer, grid, campaign
    ):
        """Threshold derivation and the campaign share one propagation."""
        engine = _engine(conv_model, cut_layer)
        engine.add_region_sets(grid)
        enclosures = engine.output_enclosures(grid.names)
        assert len(enclosures) == len(grid)
        assert engine.cache_stats["batch:prescreen-enclosure:interval"] == len(grid)
        report = engine.run(campaign)
        # the planner found everything cached: no recomputation at all
        assert "batch:prescreen-enclosure:interval" not in report.cache_stats
        assert report.cache_stats.get("miss:prescreen-enclosure", 0) == 0
        # repeated calls are pure cache reads
        again = engine.output_enclosures(grid.names)
        for a, b in zip(enclosures, again):
            assert a is b

    def test_parallel_workers_inherit_batched_plan(
        self, conv_model, cut_layer, grid, campaign
    ):
        engine = _engine(conv_model, cut_layer)
        engine.add_region_sets(grid)
        sequential = engine.run(campaign)
        parallel = engine.run(campaign, workers=2)
        assert [r.verdict.verdict for r in parallel.results] == [
            r.verdict.verdict for r in sequential.results
        ]
