"""Domain wiring through the query/engine/campaign stack.

Acceptance surface of the IR + domain-registry refactor: every
registered abstract domain is a first-class engine backend — region
sets, prescreen ladder, CEGAR frontier prescreen — and a scenario-grid
campaign returns **identical verdicts** whichever domain it runs under
(precision changes who decides, never what is decided).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Campaign, VerificationEngine, VerificationQuery
from repro.nn import Dense, Flatten, ReLU, Sequential
from repro.properties.library import steer_far_left
from repro.properties.risk import RiskCondition, output_geq
from repro.scenario.regions import scenario_region_grid
from repro.verification.abstraction import registered_domains
from repro.verification.sets import BoxWithDiffs


@pytest.fixture(scope="module")
def grid():
    return scenario_region_grid(
        n_scenes=2, weather_levels=(0.0, 1.0), traffic_levels=(0,), seed=4
    )


@pytest.fixture(scope="module")
def model():
    model = Sequential(
        [Flatten(), Dense(16), ReLU(), Dense(8), ReLU(), Dense(2)],
        input_shape=(1, 32, 32),
        seed=21,
    )
    return model


def _risk(threshold: float) -> RiskCondition:
    return steer_far_left(threshold)


class TestQueryDomain:
    def test_domain_defaults_to_prescreen_domain(self):
        risk = _risk(1.0)
        assert VerificationQuery(risk=risk).domain == "interval"
        assert VerificationQuery(risk=risk, prescreen_domain=None).domain is None
        query = VerificationQuery(risk=risk, domain="octagon")
        assert query.prescreen_domain == "octagon"

    def test_unknown_domain_rejected_at_query_time(self):
        with pytest.raises(ValueError, match="unknown domain"):
            VerificationQuery(risk=_risk(1.0), domain="polyhedra")

    def test_non_interval_domain_serialized(self):
        query = VerificationQuery(risk=_risk(1.0), domain="zonotope")
        assert query.to_dict()["domain"] == "zonotope"
        assert "domain" not in VerificationQuery(risk=_risk(1.0)).to_dict()


class TestPrescreenLadder:
    def test_ladder_caches_every_rung(self, model, grid):
        engine = VerificationEngine(model, 4, solver="highs")
        names = engine.add_region_sets(grid)
        query = VerificationQuery(
            risk=_risk(1e6), set_name=names[0], domain="symbolic"
        )
        result = engine.run_query(query)
        assert result.decided_by == "prescreen"
        # the cheapest rung (interval) excludes an absurd threshold, so
        # the expensive rungs are never computed
        assert result.verdict.solve_result.stats["prescreen"] == "interval"
        cached = {key[1] for key in engine._enclosure_cache}
        assert cached == {"interval"}

    def test_ladder_escalates_to_requested_domain(self, model, grid):
        # cut after the first ReLU: the suffix is affine -> relu ->
        # affine, where shared noise symbols make zonotope strictly
        # tighter than interval, so the band between the two hulls is
        # decidable only by the escalated rung
        engine = VerificationEngine(model, 3, solver="highs")
        names = engine.add_region_sets(grid)
        # a threshold the interval hull cannot exclude but a relational
        # domain can: probe the band between the two hulls' upper bounds
        enclosure = engine.output_enclosures(names[:1])[0]
        hi_interval = float(enclosure.upper[0])
        from repro.verification.prescreen import output_enclosure

        zonotope_hull = output_enclosure(
            engine.suffix, engine.feature_set(names[0]), "zonotope"
        ).to_box()
        hi_zonotope = float(zonotope_hull.upper[0])
        if not hi_zonotope < hi_interval - 1e-9:
            pytest.skip("zonotope adds no precision on this network")
        threshold = 0.5 * (hi_zonotope + hi_interval)
        query = VerificationQuery(
            risk=_risk(threshold), set_name=names[0], domain="zonotope"
        )
        result = engine.run_query(query)
        assert result.decided_by == "prescreen"
        assert result.verdict.solve_result.stats["prescreen"] == "zonotope"
        cached = {key[1] for key in engine._enclosure_cache}
        assert {"interval", "octagon", "zonotope"} <= cached


class TestRegionSetsPerDomain:
    def test_relational_domains_register_box_with_diffs(self, model, grid):
        engine = VerificationEngine(model, 4, solver="highs")
        names = engine.add_region_sets(grid, domain="octagon")
        for name in names:
            assert isinstance(engine.feature_set(name), BoxWithDiffs)
        registered = engine._registered(names[0])
        assert registered.kind == "octagon(region)"
        assert registered.sound

    def test_static_set_every_domain(self, model):
        for domain in registered_domains():
            engine = VerificationEngine(model, 4, solver="highs")
            fs = engine.add_static_feature_set(0.0, 1.0, domain=domain)
            assert fs.dim == model.feature_dim(4)


class TestCampaignDomainParity:
    def test_identical_verdicts_across_all_domains(self, model, grid):
        """The acceptance check: repro campaign --domain X for every
        registered X yields the same verdict sequence on the grid."""
        verdicts = {}
        for domain in registered_domains():
            engine = VerificationEngine(model, 4, solver="highs")
            engine.add_region_sets(grid, domain=domain)
            enclosures = engine.output_enclosures(grid.names)
            hi = max(float(e.upper[0]) for e in enclosures)
            lo = min(float(e.lower[0]) for e in enclosures)
            campaign = Campaign.from_scenario_grid(
                grid,
                risks=[_risk(round(hi + 0.25, 3)), _risk(round(0.5 * (lo + hi), 3))],
                domain=domain,
            )
            report = engine.run(campaign)
            assert not report.errors
            verdicts[domain] = [r.verdict.verdict.value for r in report.results]
        baseline = verdicts["interval"]
        for domain, values in verdicts.items():
            assert values == baseline, f"{domain} verdicts diverge"


class TestCegarDomain:
    def test_cegar_requires_a_domain(self, model):
        engine = VerificationEngine(model, 0, solver="highs")
        engine.add_static_feature_set(0.0, 1.0, name="root")
        query = VerificationQuery(
            risk=RiskCondition("far", (output_geq(2, 0, 1e6),)),
            set_name="root",
            method="cegar",
            prescreen_domain=None,
        )
        with pytest.raises(ValueError, match="cegar queries need"):
            engine.run_query(query)

    def test_cegar_runs_under_every_domain(self, model):
        reach_hi = 1.0
        for domain in registered_domains():
            engine = VerificationEngine(
                model, 0, solver="highs", cegar_budget=64
            )
            engine.add_static_feature_set(0.0, 1.0, name="root", domain="interval")
            risk = RiskCondition("far", (output_geq(2, 0, 1e6),))
            query = VerificationQuery(
                risk=risk, set_name="root", method="cegar", domain=domain
            )
            result = engine.run_query(query)
            assert result.verdict.verdict.value == "safe", domain
