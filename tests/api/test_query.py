"""Query construction/validation and campaign grid expansion."""

import pytest

from repro.api import Campaign, Method, VerificationQuery
from repro.properties.library import STEER_STRAIGHT, steer_far_left


class TestVerificationQuery:
    def test_defaults(self):
        query = VerificationQuery(risk=STEER_STRAIGHT)
        assert query.method is Method.EXACT
        assert query.set_name == "data"
        assert query.solver is None
        assert query.prescreen_domain == "interval"

    def test_method_coerced_from_string(self):
        query = VerificationQuery(risk=STEER_STRAIGHT, method="relaxed")
        assert query.method is Method.RELAXED

    def test_frozen(self):
        query = VerificationQuery(risk=STEER_STRAIGHT)
        with pytest.raises(AttributeError):
            query.set_name = "other"

    def test_verdict_methods_require_risk(self):
        for method in ("exact", "relaxed", "refine"):
            with pytest.raises(ValueError, match="need a risk"):
                VerificationQuery(method=method)

    def test_robustness_requires_ball(self):
        with pytest.raises(ValueError, match="anchor"):
            VerificationQuery(method="robustness", epsilon=0.1, delta=0.5)
        with pytest.raises(ValueError, match="positive"):
            VerificationQuery(
                method="robustness", anchor=(0.0, 0.0), epsilon=-1.0, delta=0.5
            )

    def test_range_needs_no_risk(self):
        query = VerificationQuery(method="range", output_index=1)
        assert query.risk is None
        assert query.output_index == 1

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="time_limit"):
            VerificationQuery(risk=STEER_STRAIGHT, time_limit=0.0)
        with pytest.raises(ValueError, match="node_limit"):
            VerificationQuery(risk=STEER_STRAIGHT, node_limit=-5)

    def test_name_and_to_dict(self):
        query = VerificationQuery(
            risk=steer_far_left(2.0), property_name="bends_right", solver="highs"
        )
        assert "bends_right" in query.name
        payload = query.to_dict()
        assert payload["method"] == "exact"
        assert payload["solver"] == "highs"
        assert payload["property"] == "bends_right"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            VerificationQuery(risk=STEER_STRAIGHT, method="quantum")


class TestCampaign:
    def test_grid_expansion_order_and_count(self):
        risks = [steer_far_left(t) for t in (1.0, 2.0, 3.0)]
        campaign = Campaign("grid").add_grid(
            risks=risks, properties=("bends_right", None), sets=("data",)
        )
        assert len(campaign) == 6
        # risks vary fastest, then properties
        assert campaign[0].property_name == "bends_right"
        assert campaign[0].risk is risks[0]
        assert campaign[2].risk is risks[2]
        assert campaign[3].property_name is None

    def test_grid_requires_risks(self):
        with pytest.raises(ValueError, match="at least one risk"):
            Campaign().add_grid(risks=[])

    def test_add_and_chaining(self):
        campaign = (
            Campaign("mixed")
            .add(VerificationQuery(risk=STEER_STRAIGHT))
            .add_ranges(output_indices=(0, 1))
        )
        assert len(campaign) == 3
        assert campaign[1].method is Method.RANGE
        assert campaign[2].output_index == 1

    def test_queries_iterable(self):
        campaign = Campaign().add_grid(risks=[STEER_STRAIGHT])
        methods = [query.method for query in campaign]
        assert methods == [Method.EXACT]
