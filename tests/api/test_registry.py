"""Solver registry: round-trips, metadata, and uniform dispatch."""

import pytest

from repro.verification.solver import (
    BranchAndBoundSolver,
    HighsSolver,
    PhaseSplitSolver,
    make_solver,
    register_solver,
    solver_names,
    solver_spec,
)


class TestRegistry:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("branch-and-bound", BranchAndBoundSolver),
            ("bb", BranchAndBoundSolver),
            ("highs", HighsSolver),
            ("phase-split", PhaseSplitSolver),
            ("planet", PhaseSplitSolver),
        ],
    )
    def test_round_trip(self, name, cls):
        assert isinstance(make_solver(name), cls)

    def test_canonical_names(self):
        assert solver_names() == ["branch-and-bound", "highs", "phase-split"]

    def test_encoding_metadata(self):
        assert solver_spec("bb").encoding == "milp"
        assert solver_spec("highs").encoding == "milp"
        assert solver_spec("phase-split").encoding == "relaxed"
        assert solver_spec("planet").name == "phase-split"
        assert not solver_spec("planet").supports_minimize

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown solver"):
            make_solver("cplex")

    def test_options_forwarded(self):
        solver = make_solver("phase-split", node_limit=7)
        assert solver.node_limit == 7

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_solver("highs", HighsSolver)

    def test_custom_backend_registration(self):
        spec = register_solver(
            "test-backend-echo",
            HighsSolver,
            encoding="milp",
            aliases=("test-backend-alias",),
        )
        try:
            assert isinstance(make_solver("test-backend-alias"), HighsSolver)
            assert solver_spec("test-backend-echo") is spec
        finally:
            # keep the global registry clean for other tests
            from repro.verification.solver import _REGISTRY

            for key in spec.all_names():
                _REGISTRY.pop(key, None)

    def test_overwrite_removes_displaced_aliases(self):
        from repro.verification.solver import _REGISTRY

        first = register_solver(
            "test-ow", HighsSolver, aliases=("test-ow-alias",)
        )
        try:
            replacement = register_solver(
                "test-ow", BranchAndBoundSolver, overwrite=True
            )
            assert isinstance(make_solver("test-ow"), BranchAndBoundSolver)
            # the displaced spec's alias must not keep serving the old backend
            with pytest.raises(ValueError, match="unknown solver"):
                make_solver("test-ow-alias")
        finally:
            for key in (*first.all_names(), "test-ow"):
                _REGISTRY.pop(key, None)

    def test_bad_encoding_rejected(self):
        with pytest.raises(ValueError, match="encoding"):
            register_solver("test-bad-encoding", HighsSolver, encoding="smt")


class TestDispatch:
    """All registered backends answer the same query identically."""

    @pytest.mark.parametrize("solver", ["branch-and-bound", "highs", "phase-split"])
    def test_verdict_through_every_backend(self, solver, api_system):
        import numpy as np

        from repro.api import VerificationEngine, VerificationQuery
        from repro.properties.risk import RiskCondition, output_geq

        model, images, cut, _ = api_system
        outputs = model.forward(images)
        risk = RiskCondition(
            "q", (output_geq(2, 0, float(np.quantile(outputs[:, 0], 0.9))),)
        )
        engine = VerificationEngine(model, cut, solver=solver)
        engine.add_feature_set_from_data(images)
        result = engine.run_query(
            VerificationQuery(risk=risk, prescreen_domain=None)
        )
        # the 0.9-quantile threshold is reachable from the data set
        from repro.core.verdict import Verdict

        assert result.verdict.verdict is Verdict.UNSAFE_IN_SET
