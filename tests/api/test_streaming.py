"""Streaming scenario campaigns: parity with the eager path, memory guard.

The streaming pipeline's whole contract is *observational equivalence*
to the eager grid at O(shard) memory:

- region parity: the sharded generator yields bitwise-identical regions
  in the eager grid's order, for any shard size (hypothesis);
- verdict + coverage parity: ``run_stream`` decides every query exactly
  as ``engine.run`` over the eager campaign does (hypothesis over shard
  sizes and thresholds);
- coverage-guided sampling visits distinct, in-range regions and
  reports coverage for exactly the sampled population;
- the memory guard rejects eager grids that cannot fit, pointing at
  the streaming path, while ``run_stream`` itself stays unguarded.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Campaign, VerificationEngine
from repro.nn import Dense, Flatten, ReLU, Sequential
from repro.properties.library import steer_far_left
from repro.scenario import regions as regions_mod
from repro.scenario.regions import (
    RegionMemoryError,
    ensure_regions_fit,
    scenario_region_grid,
)
from repro.scenario.streaming import (
    StreamPlan,
    run_stream,
    stream_enclosure_range,
    stream_scenario_regions,
)

_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def model():
    model = Sequential(
        [Flatten(), Dense(8), ReLU(), Dense(2)],
        input_shape=(1, 32, 32),
        seed=7,
    )
    model.forward(
        np.random.default_rng(0).uniform(0, 1, size=(4, 1, 32, 32)),
        training=True,
    )
    return model


@pytest.fixture(scope="module")
def engine(model):
    return VerificationEngine(model, 3, solver="highs")


@pytest.fixture(scope="module")
def enclosure_range(engine):
    plan = StreamPlan(n_scenes=2, seed=3, shard_size=8)
    return stream_enclosure_range(engine, plan)


class TestRegionParity:
    @_SETTINGS
    @given(
        seed=st.integers(0, 50),
        n_scenes=st.integers(1, 3),
        shard_size=st.integers(1, 16),
    )
    def test_streamed_regions_bitwise_equal_eager(
        self, seed, n_scenes, shard_size
    ):
        plan = StreamPlan(n_scenes=n_scenes, seed=seed, shard_size=shard_size)
        eager = scenario_region_grid(n_scenes=n_scenes, seed=seed)
        streamed = [r for grid in stream_scenario_regions(plan) for r in grid]
        assert len(streamed) == len(eager.regions) == plan.total_regions
        for a, b in zip(eager.regions, streamed):
            assert a.name == b.name
            assert np.array_equal(a.lower, b.lower)
            assert np.array_equal(a.upper, b.upper)
            assert a.axes == b.axes

    def test_jitter_axis_parity(self):
        plan = StreamPlan(
            n_scenes=2, jitter_levels=(0.0, 1.5), seed=5, shard_size=3
        )
        eager = scenario_region_grid(
            n_scenes=2, jitter_levels=(0.0, 1.5), seed=5
        )
        streamed = [r for grid in stream_scenario_regions(plan) for r in grid]
        for a, b in zip(eager.regions, streamed):
            assert a.name == b.name
            assert np.array_equal(a.lower, b.lower)
            assert np.array_equal(a.upper, b.upper)

    def test_limit_matches_truncated_grid(self):
        plan = StreamPlan(n_scenes=3, seed=1, shard_size=4, limit=7)
        eager = scenario_region_grid(n_scenes=3, seed=1).truncated(7)
        streamed = [r for grid in stream_scenario_regions(plan) for r in grid]
        assert [r.name for r in streamed] == [r.name for r in eager.regions]


class TestVerdictParity:
    @_SETTINGS
    @given(
        shard_size=st.integers(1, 9),
        offset=st.floats(-0.5, 0.5, allow_nan=False),
    )
    def test_stream_matches_eager_campaign(
        self, engine, enclosure_range, shard_size, offset
    ):
        """Same verdicts, same coverage, any shard size, any threshold."""
        lo, hi = enclosure_range
        # thresholds spanning provable, frontier-ish, and falsifiable
        risks = [
            steer_far_left(round(hi + 0.25 + offset, 3)),
            steer_far_left(round(0.5 * (lo + hi) + offset, 3)),
        ]
        grid = scenario_region_grid(n_scenes=2, seed=3)
        names = engine.add_region_sets(grid)
        try:
            eager = engine.run(
                Campaign("eager").add_grid(
                    risks=risks, properties=(None,), sets=names
                )
            )
        finally:
            engine.remove_feature_sets(names)

        plan = StreamPlan(n_scenes=2, seed=3, shard_size=shard_size)
        streamed = run_stream(engine, plan, risks, collect_results=True)

        assert streamed.results is not None
        assert len(streamed.results) == len(eager.results)
        for a, b in zip(eager.results, streamed.results):
            assert a.query.set_name == b.query.set_name
            assert a.query.risk is b.query.risk
            assert a.verdict is not None and b.verdict is not None
            assert a.verdict.verdict == b.verdict.verdict, (
                f"{a.query.set_name}: eager {a.verdict.verdict} vs "
                f"streamed {b.verdict.verdict} (shard_size={shard_size})"
            )
        # coverage aggregates exactly the verdicts the eager run produced
        total = sum(
            count
            for levels in streamed.coverage["weather"].values()
            for count in levels.values()
        )
        assert total == len(eager.results)

    def test_report_shape(self, engine, enclosure_range):
        lo, hi = enclosure_range
        risks = [steer_far_left(round(hi + 0.25, 3))]
        plan = StreamPlan(n_scenes=2, seed=3, shard_size=3)
        report = run_stream(engine, plan, risks)
        assert report.total_regions == plan.total_regions
        assert report.total_queries == report.total_regions
        assert report.shards == 3  # 8 regions in shards of 3
        assert report.decided == report.total_queries
        assert set(report.coverage) == {"weather", "camera_jitter", "traffic"}
        payload = report.to_dict()
        assert payload["verdict_counts"] == report.verdict_counts
        # collect_results=False keeps the report O(1): campaign_report
        # (which needs every QueryResult) must refuse, not return empty
        with pytest.raises(ValueError):
            report.campaign_report("nope")


class TestCoverageSampling:
    @_SETTINGS
    @given(
        sample=st.integers(1, 20),
        sample_seed=st.integers(0, 100),
    )
    def test_sample_indices_distinct_sorted_in_range(self, sample, sample_seed):
        plan = StreamPlan(
            n_scenes=6, seed=0, sample=sample, sample_seed=sample_seed
        )
        indices = list(plan.indices())
        assert len(indices) == min(sample, plan.grid_size)
        assert len(set(indices)) == len(indices)
        assert indices == sorted(indices)
        assert all(0 <= i < plan.grid_size for i in indices)

    def test_sampled_stream_covers_every_axis(self, engine, enclosure_range):
        lo, hi = enclosure_range
        risks = [steer_far_left(round(hi + 0.25, 3))]
        plan = StreamPlan(n_scenes=4, seed=3, shard_size=4, sample=9)
        report = run_stream(engine, plan, risks)
        assert report.total_regions == 9
        # the coprime-stride lattice spreads across every axis level
        for axis in ("weather", "traffic"):
            assert len(report.coverage[axis]) == 2, report.coverage[axis]

    def test_sampled_regions_are_a_subset_of_the_grid(self):
        plan = StreamPlan(n_scenes=3, seed=1, shard_size=4, sample=5)
        eager = {r.name: r for r in scenario_region_grid(n_scenes=3, seed=1)}
        for grid in stream_scenario_regions(plan):
            for region in grid:
                assert np.array_equal(region.lower, eager[region.name].lower)
                assert np.array_equal(region.upper, eager[region.name].upper)


class TestMemoryGuard:
    def test_ensure_regions_fit_rejects_oversize(self):
        with pytest.raises(RegionMemoryError) as err:
            ensure_regions_fit(10**6, 1024, available=2**30)
        message = str(err.value)
        assert "run_stream" in message
        assert "--stream" in message

    def test_ensure_regions_fit_accepts_small(self):
        ensure_regions_fit(100, 1024, available=2**30)

    def test_scenario_region_grid_guarded(self, monkeypatch):
        monkeypatch.setattr(
            regions_mod, "available_memory_bytes", lambda: 2**20
        )
        with pytest.raises(RegionMemoryError):
            scenario_region_grid(n_scenes=10_000)

    def test_from_scenario_grid_guarded(self):
        grid = scenario_region_grid(n_scenes=1)
        risks = [steer_far_left(1.0)]
        pixels = int(grid[0].lower.size)
        # the real builder call stays fine on a small grid
        Campaign.from_scenario_grid(grid, risks=risks)
        with pytest.raises(RegionMemoryError):
            ensure_regions_fit(
                10**9, pixels, available=2**30, what="scenario-grid campaign"
            )

    def test_cli_campaign_rejects_oversize_grid(self, monkeypatch, capsys):
        from repro import cli

        monkeypatch.setattr(
            regions_mod, "available_memory_bytes", lambda: 2**20
        )

        class _Args:
            out = "unused"
            solver = "highs"
            precision = "exact64"
            refine_budget = 0
            scenario_grid = 10_000
            stream = False
            sample = None
            portfolio = False
            seed = 0
            domain = "interval"
            workers = 1
            json = None

        def fake_load(path, **kwargs):
            model = Sequential(
                [Flatten(), Dense(4), ReLU(), Dense(2)],
                input_shape=(1, 32, 32),
                seed=0,
            )
            return VerificationEngine(model, 3, solver="highs"), {
                "properties": ()
            }

        monkeypatch.setattr(cli, "_load", fake_load)
        code = cli._campaign(_Args())
        assert code == 2
        out = capsys.readouterr().out
        assert "error:" in out
        assert "--stream" in out
