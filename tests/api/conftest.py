"""Fixtures for the declarative API tests: a small trained MLP system."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perception.characterizer import train_characterizer
from repro.perception.network import build_mlp_perception_network, default_cut_layer


@pytest.fixture(scope="module")
def api_system():
    """(model, images, cut, characterizer) over synthetic 6-d 'images'."""
    rng = np.random.default_rng(12345)
    model = build_mlp_perception_network(
        input_dim=6, hidden=(12,), feature_width=6, seed=4
    )
    images = rng.uniform(0, 1, size=(200, 6))
    cut = default_cut_layer(model)
    features = model.prefix_apply(images, cut)
    labels = (features[:, 0] > np.median(features[:, 0])).astype(float)
    characterizer, _ = train_characterizer(
        "high_f0", cut, features, labels, features, labels, epochs=100, seed=0
    )
    return model, images, cut, characterizer
