"""Portfolio racing: verdict parity with every racer, adaptive order.

Soundness story: every racer in a portfolio answers the *same* query
through a sound configuration, so any two decided answers must agree on
the safe/unsafe side — racing only ever changes *who answers first*,
never *what the answer is*.  These tests check that claim directly
(portfolio verdict vs each racer run alone, hypothesis over
thresholds), plus the adaptive bookkeeping and the parallel pool's
cleanup.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    Campaign,
    DEFAULT_RACERS,
    Method,
    Portfolio,
    RacerConfig,
    VerificationEngine,
    VerificationQuery,
)
from repro.api.portfolio import _decided, _run_config, _verdict_side
from repro.nn import Dense, Flatten, ReLU, Sequential
from repro.properties.library import steer_far_left
from repro.scenario.regions import scenario_region_grid

_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def model():
    model = Sequential(
        [Flatten(), Dense(8), ReLU(), Dense(2)],
        input_shape=(1, 32, 32),
        seed=7,
    )
    model.forward(
        np.random.default_rng(0).uniform(0, 1, size=(4, 1, 32, 32)),
        training=True,
    )
    return model


@pytest.fixture(scope="module")
def engine(model):
    engine = VerificationEngine(model, 3, solver="highs")
    engine.add_region_sets(scenario_region_grid(n_scenes=1, seed=3))
    return engine


@pytest.fixture(scope="module")
def enclosure_range(engine):
    enclosure = engine.output_enclosures(["region-000"])[0]
    return float(enclosure.lower[0]), float(enclosure.upper[0])


class TestRacerConfig:
    def test_apply_syncs_domain_and_prescreen(self):
        config = RacerConfig("symbolic", domain="symbolic")
        query = VerificationQuery(
            risk=steer_far_left(1.0), set_name="region-000"
        )
        applied = config.apply(query)
        assert applied.domain == "symbolic"
        assert applied.prescreen_domain == "symbolic"

    def test_apply_domain_none_disables_prescreen(self):
        config = RacerConfig("direct", domain=None)
        query = VerificationQuery(
            risk=steer_far_left(1.0), set_name="region-000"
        )
        applied = config.apply(query)
        assert applied.domain is None
        assert applied.prescreen_domain is None

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            RacerConfig("bad", method="range")

    def test_default_racers_have_unique_names(self):
        names = [config.name for config in DEFAULT_RACERS]
        assert len(set(names)) == len(names)


class TestVerdictParity:
    @_SETTINGS
    @given(offset=st.floats(-0.4, 0.6, allow_nan=False))
    def test_portfolio_agrees_with_every_racer(
        self, engine, enclosure_range, offset
    ):
        """The raced answer matches each racer's solo answer in kind."""
        lo, hi = enclosure_range
        threshold = round(lo + (hi - lo) * (0.5 + offset * 0.8), 3)
        query = VerificationQuery(
            risk=steer_far_left(threshold), set_name="region-000"
        )
        portfolio = Portfolio(engine)
        raced = portfolio.run_query(query)
        assert _decided(raced), raced.error
        for config in DEFAULT_RACERS:
            solo = _run_config(engine, config, query)
            if not _decided(solo):
                continue  # an undecided racer loses; it cannot disagree
            assert _verdict_side(solo) == _verdict_side(raced), (
                f"racer {config.name} disagrees with the portfolio at "
                f"threshold {threshold}"
            )

    def test_debug_parity_runs_every_racer(self, engine, enclosure_range):
        lo, hi = enclosure_range
        query = VerificationQuery(
            risk=steer_far_left(round(hi + 1.0, 3)), set_name="region-000"
        )
        portfolio = Portfolio(engine, debug_parity=True)
        portfolio.run_query(query)
        assert len(portfolio.race_log) == 1
        raced = set(portfolio.race_log[0]["racers"])
        assert raced == {config.name for config in DEFAULT_RACERS}


class TestAdaptiveOrder:
    def test_winner_rises_in_priority(self, model):
        # a fresh engine: a warm support/bounds cache could answer the
        # broken racer's query before its unknown solver is ever touched
        engine = VerificationEngine(model, 3, solver="highs")
        engine.add_region_sets(scenario_region_grid(n_scenes=1, seed=3))
        hi = float(engine.output_enclosures(["region-000"])[0].upper[0])
        racers = (
            # registry order puts the broken racer first; its errors
            # must teach the portfolio to try the screened racer first
            RacerConfig("broken", domain=None, solver="no-such-solver"),
            RacerConfig("screened", domain="interval"),
        )
        portfolio = Portfolio(engine, racers)
        query = VerificationQuery(
            risk=steer_far_left(round(hi + 1.0, 3)), set_name="region-000"
        )
        for _ in range(3):
            result = portfolio.run_query(query)
            assert _decided(result)
        order = [config.name for config in portfolio.priority()]
        assert order[0] == "screened"
        stats = portfolio.stats["screened"]
        assert stats.wins >= 2
        assert portfolio.stats["broken"].errors >= 1
        assert stats.score > portfolio.stats["broken"].score

    def test_decided_by_names_the_winner(self, engine, enclosure_range):
        lo, hi = enclosure_range
        portfolio = Portfolio(engine)
        result = portfolio.run_query(
            VerificationQuery(
                risk=steer_far_left(round(hi + 1.0, 3)), set_name="region-000"
            )
        )
        assert result.decided_by is not None
        assert result.decided_by.startswith("portfolio:")

    def test_rejects_non_verdict_methods(self, engine):
        portfolio = Portfolio(engine)
        with pytest.raises(ValueError):
            portfolio.run_query(
                VerificationQuery(method=Method.RANGE, set_name="region-000")
            )


class TestStructuralRacer:
    def test_default_racers_include_structural_cegar(self):
        structural = [c for c in DEFAULT_RACERS if c.structural]
        assert [c.name for c in structural] == ["structural-cegar"]
        assert Method(structural[0].method) is Method.CEGAR

    def test_apply_keeps_structural_a_cegar_only_flag(self):
        cegar = RacerConfig("s", method="cegar", structural=True)
        exact = RacerConfig("e", method="exact")
        query = VerificationQuery(
            risk=steer_far_left(1.0), set_name="region-000"
        )
        assert cegar.apply(query).structural is True
        # a non-cegar racer must drop the flag even when the incoming
        # query carries it (replace() would otherwise build an invalid
        # exact+structural query)
        structural_query = VerificationQuery(
            risk=steer_far_left(1.0),
            set_name="region-000",
            method=Method.CEGAR,
            structural=True,
        )
        assert exact.apply(structural_query).structural is False

    def test_structural_config_requires_cegar(self):
        with pytest.raises(ValueError, match="cegar"):
            RacerConfig("bad", method="exact", structural=True)

    def test_structural_racer_agrees_with_every_solo_racer(
        self, engine, enclosure_range
    ):
        lo, hi = enclosure_range
        structural = next(c for c in DEFAULT_RACERS if c.structural)
        for threshold in (round(hi + 1.0, 3), round(0.5 * (lo + hi), 3)):
            query = VerificationQuery(
                risk=steer_far_left(threshold), set_name="region-000"
            )
            mine = _run_config(engine, structural, query)
            if not _decided(mine):
                continue
            for config in DEFAULT_RACERS:
                if config.name == structural.name:
                    continue
                solo = _run_config(engine, config, query)
                if not _decided(solo):
                    continue
                assert _verdict_side(solo) == _verdict_side(mine), (
                    f"structural racer disagrees with {config.name} at "
                    f"threshold {threshold}"
                )

    def test_broken_structural_racer_sinks_in_adaptive_order(self, model):
        engine = VerificationEngine(model, 3, solver="highs")
        engine.add_region_sets(scenario_region_grid(n_scenes=1, seed=3))
        hi = float(engine.output_enclosures(["region-000"])[0].upper[0])
        racers = (
            RacerConfig(
                "broken-structural",
                method="cegar",
                structural=True,
                solver="no-such-solver",
            ),
            RacerConfig("screened", domain="interval"),
        )
        portfolio = Portfolio(engine, racers)
        query = VerificationQuery(
            risk=steer_far_left(round(hi + 1.0, 3)), set_name="region-000"
        )
        for _ in range(3):
            result = portfolio.run_query(query)
            assert _decided(result)
        order = [config.name for config in portfolio.priority()]
        assert order[-1] == "broken-structural"
        assert portfolio.stats["broken-structural"].errors >= 1
        assert (
            portfolio.stats["screened"].score
            > portfolio.stats["broken-structural"].score
        )


class TestCampaignRun:
    def test_campaign_verdicts_match_engine_run(self, engine, enclosure_range):
        lo, hi = enclosure_range
        risks = [
            steer_far_left(round(hi + 1.0, 3)),
            steer_far_left(round(0.5 * (lo + hi), 3)),
        ]
        campaign = Campaign("race").add_grid(
            risks=risks, properties=(None,), sets=["region-000"]
        )
        baseline = engine.run(campaign)
        raced = Portfolio(engine).run(campaign)
        assert raced.executor == "portfolio-adaptive"
        assert len(raced.results) == len(baseline.results)
        for a, b in zip(baseline.results, raced.results):
            assert a.verdict is not None and b.verdict is not None
            assert _verdict_side(a) == _verdict_side(b)
        assert raced.cache_stats["portfolio:races"] == len(raced.results)

    def test_parallel_race_no_zombies(self, engine, enclosure_range):
        lo, hi = enclosure_range
        campaign = Campaign("race").add_grid(
            risks=[steer_far_left(round(0.5 * (lo + hi), 3))],
            properties=(None,),
            sets=["region-000"],
        )
        report = Portfolio(engine).run(campaign, workers=2)
        assert report.results[0].verdict is not None
        assert multiprocessing.active_children() == []
