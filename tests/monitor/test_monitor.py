"""Unit tests for the runtime monitor."""

import numpy as np
import pytest

from repro.monitor.events import MonitorEvent, MonitorReport
from repro.monitor.runtime import RuntimeMonitor, false_alarm_rate
from repro.monitor.throughput import adjacent_differences, monitor_feature_batch
from repro.nn import Dense, ReLU, Sequential
from repro.verification.assume_guarantee import box_with_diffs_from_data
from repro.verification.sets import Box, BoxWithDiffs


@pytest.fixture
def setup(rng):
    model = Sequential([Dense(6), ReLU(), Dense(4), ReLU()], input_shape=(3,), seed=1)
    images = rng.normal(size=(100, 3))
    features = model.prefix_apply(images, model.num_layers)
    sbox = box_with_diffs_from_data(features)
    return model, images, features, sbox


class TestRuntimeMonitor:
    def test_training_data_never_violates(self, setup):
        model, images, _, sbox = setup
        monitor = RuntimeMonitor(model, model.num_layers, sbox)
        report = monitor.run(images)
        assert report.frames == 100
        assert report.violations == 0
        assert report.coverage == 1.0

    def test_out_of_distribution_flagged(self, setup, rng):
        model, images, _, sbox = setup
        monitor = RuntimeMonitor(model, model.num_layers, sbox)
        # far out-of-distribution inputs
        ood = rng.normal(size=(20, 3)) * 100.0
        report = monitor.run(ood)
        assert report.violations > 0

    def test_check_features_direct(self, setup):
        model, _, features, sbox = setup
        monitor = RuntimeMonitor(model, model.num_layers, sbox)
        event = monitor.check_features(features[0])
        assert isinstance(event, MonitorEvent)
        assert not event.violation

    def test_violation_diagnosis(self, setup):
        model, _, features, sbox = setup
        monitor = RuntimeMonitor(model, model.num_layers, sbox)
        bad = features[0].copy()
        bad[2] = sbox.bounds()[1][2] + 10.0
        event = monitor.check_features(bad)
        assert event.violation
        assert event.worst_excess > 0.0
        assert "VIOLATED" in str(event)

    def test_diff_violation_diagnosed(self, setup):
        model, _, features, sbox = setup
        assert isinstance(sbox, BoxWithDiffs)
        monitor = RuntimeMonitor(model, model.num_layers, sbox)
        lower, upper = sbox.bounds()
        # stay inside the box but break an adjacent-difference bound
        bad = np.clip(features[0].copy(), lower, upper)
        bad[0] = lower[0]
        bad[1] = upper[1]
        if not sbox.contains(bad[None])[0]:
            event = monitor.check_features(bad)
            assert event.violation

    def test_frame_indices_increment(self, setup):
        model, images, _, sbox = setup
        monitor = RuntimeMonitor(model, model.num_layers, sbox)
        monitor.run(images[:5])
        assert [e.frame_index for e in monitor.report.events] == [0, 1, 2, 3, 4]

    def test_keep_events_false_saves_memory(self, setup):
        model, images, _, sbox = setup
        monitor = RuntimeMonitor(model, model.num_layers, sbox, keep_events=False)
        monitor.run(images)
        assert monitor.report.events == []
        assert monitor.report.frames == 100

    def test_dimension_mismatch_rejected(self, setup):
        model, _, _, _ = setup
        wrong = Box(np.zeros(2), np.ones(2))
        with pytest.raises(ValueError, match="dimension"):
            RuntimeMonitor(model, model.num_layers, wrong)


class TestFalseAlarmRate:
    def test_zero_on_training_data(self, setup):
        model, images, _, sbox = setup
        assert false_alarm_rate(model, model.num_layers, sbox, images) == 0.0

    def test_positive_on_heldout(self, setup, rng):
        model, _, _, sbox = setup
        heldout = rng.normal(size=(200, 3)) * 2.0
        rate = false_alarm_rate(model, model.num_layers, sbox, heldout)
        assert rate > 0.0


class TestMonitorReport:
    def test_summary_format(self):
        report = MonitorReport()
        report.record(MonitorEvent(0, False, np.zeros(2)))
        report.record(MonitorEvent(1, True, np.zeros(2), 0, 1.0))
        assert report.violation_rate == 0.5
        assert "50.00%" in report.summary()

    def test_empty_report(self):
        report = MonitorReport()
        assert report.violation_rate == 0.0
        assert report.coverage == 1.0


class TestThroughput:
    def test_batch_matches_sequential(self, setup):
        model, images, features, sbox = setup
        batch_mask = monitor_feature_batch(sbox, features)
        monitor = RuntimeMonitor(model, model.num_layers, sbox)
        sequential = np.array(
            [monitor.check_features(f).violation for f in features]
        )
        np.testing.assert_array_equal(batch_mask, sequential)

    def test_batch_requires_2d(self, setup):
        _, _, features, sbox = setup
        with pytest.raises(ValueError, match="expected"):
            monitor_feature_batch(sbox, features[0])

    def test_adjacent_differences_matches_numpy(self, rng):
        features = rng.normal(size=(10, 6))
        np.testing.assert_array_equal(
            adjacent_differences(features), np.diff(features, axis=1)
        )

    def test_adjacent_differences_validation(self):
        with pytest.raises(ValueError, match="d>=2"):
            adjacent_differences(np.zeros((5, 1)))
