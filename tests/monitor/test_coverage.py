"""Unit tests for activation coverage metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.monitor.coverage import (
    ActivationPatternSet,
    coverage_report,
    k_section_coverage,
    neuron_onoff_coverage,
)


class TestOnOffCoverage:
    def test_full_coverage(self):
        features = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert neuron_onoff_coverage(features) == 1.0

    def test_always_active_neuron_uncovered(self):
        features = np.array([[1.0, 1.0], [2.0, 0.0]])
        assert neuron_onoff_coverage(features) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            neuron_onoff_coverage(np.zeros((0, 3)))


class TestKSectionCoverage:
    def test_uniform_data_covers_everything(self, rng):
        features = rng.uniform(0, 1, size=(5000, 3))
        assert k_section_coverage(features, k=8) > 0.99

    def test_two_point_data_covers_two_sections(self):
        features = np.array([[0.0], [1.0]])
        assert k_section_coverage(features, k=10) == pytest.approx(0.2)

    def test_constant_neuron_counts_covered(self):
        features = np.full((10, 2), 3.3)
        assert k_section_coverage(features, k=8) == 1.0

    def test_more_sections_lower_coverage(self, rng):
        features = rng.normal(size=(30, 4))
        assert k_section_coverage(features, k=32) <= k_section_coverage(features, k=4)

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            k_section_coverage(np.ones((2, 2)), k=0)


class TestActivationPatternSet:
    def test_training_patterns_contained(self, rng):
        features = np.maximum(rng.normal(size=(50, 6)), 0.0)
        patterns = ActivationPatternSet.from_features(features)
        assert patterns.contains(features).all()
        assert patterns.novelty_rate(features) == 0.0

    def test_novel_pattern_flagged(self):
        features = np.array([[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
        patterns = ActivationPatternSet.from_features(features)
        novel = np.array([[1.0, 1.0, 1.0]])
        assert not patterns.contains(novel)[0]
        assert patterns.novelty_rate(novel) == 1.0

    def test_pattern_count(self):
        features = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        assert len(ActivationPatternSet.from_features(features)) == 2

    def test_dim_checked(self):
        patterns = ActivationPatternSet.from_features(np.ones((2, 3)))
        with pytest.raises(ValueError, match="expected 3-d"):
            patterns.contains(np.ones((1, 5)))

    @given(
        arrays(np.float64, (12, 5), elements=st.floats(-2, 2)),
    )
    @settings(max_examples=30, deadline=None)
    def test_self_containment_property(self, features):
        patterns = ActivationPatternSet.from_features(features)
        assert patterns.contains(features).all()


class TestCoverageReport:
    def test_report_fields(self, rng):
        features = np.maximum(rng.normal(size=(100, 8)), 0.0)
        report = coverage_report(features, k=4)
        assert 0.0 <= report.onoff <= 1.0
        assert 0.0 <= report.k_section <= 1.0
        assert report.samples == 100
        assert "coverage" in report.summary()

    def test_real_cut_layer_features(self, verified_system):
        """Coverage on the actual verified system's features is informative
        but not saturated — exactly the 'thin evidence' signal."""
        report = coverage_report(verified_system.train_features)
        assert report.onoff > 0.5  # post-ReLU features see both states
        assert 0.0 < report.k_section < 1.0
        assert report.patterns_seen > 1
