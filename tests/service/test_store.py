"""The persistent result store: map semantics, replay, invalidation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.campaign import QueryResult
from repro.api.query import VerificationQuery
from repro.core.verdict import Verdict, VerificationVerdict
from repro.properties.risk import RiskCondition, output_geq
from repro.service.store import STORE_VERSION, ResultStore, StoredResult, StoreKey
from repro.verification.counterexample import FeatureCounterexample
from repro.verification.solver.result import SolveResult, SolveStatus


def _key(model="m" * 8, query="q" * 8, method="exact") -> StoreKey:
    return StoreKey(
        model=model, query=query, domain="interval", method=method,
        precision="exact64",
    )


def _unsat_result() -> StoredResult:
    return StoredResult(
        verdict="safe",
        solver_status="unsat",
        decided_by="prescreen",
        monitored=False,
        feature_set_kind="static",
        elapsed=0.25,
        ladder=("prescreen",),
    )


def _sat_result() -> StoredResult:
    return StoredResult(
        verdict="unsafe-in-set",
        solver_status="sat",
        decided_by="solve",
        monitored=False,
        feature_set_kind="static",
        counterexample_features=(0.1, -0.7, 0.3),
        counterexample_output=(1.5, -0.2),
        risk_margin=0.5,
        characterizer_logit=None,
    )


def _risk() -> RiskCondition:
    return RiskCondition("r", (output_geq(2, 0, 0.0),))


class TestMapSemantics:
    def test_put_then_get(self):
        store = ResultStore()
        key = _key()
        store.put(key, _unsat_result())
        assert store.get(key) == _unsat_result()
        assert len(store) == 1 and key in store

    def test_miss_and_hit_are_counted(self):
        store = ResultStore()
        assert store.get(_key()) is None
        store.put(_key(), _unsat_result())
        store.get(_key())
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.puts == 1

    def test_last_writer_wins(self):
        store = ResultStore()
        store.put(_key(), _unsat_result())
        store.put(_key(), _sat_result())
        assert store.get(_key()) == _sat_result()
        assert len(store) == 1

    def test_results_for_model_and_digest_listing(self):
        store = ResultStore()
        store.put(_key(model="a" * 8), _unsat_result())
        store.put(_key(model="b" * 8, method="relaxed"), _sat_result())
        assert store.model_digests() == ["a" * 8, "b" * 8]
        rows = store.results_for_model("b" * 8)
        assert len(rows) == 1
        assert rows[0]["method"] == "relaxed"
        assert rows[0]["verdict"] == "unsafe-in-set"
        assert rows[0]["counterexample"]["features"] == [0.1, -0.7, 0.3]


class TestPersistence:
    def test_round_trips_through_the_file(self, tmp_path):
        path = tmp_path / "results.jsonl"
        first = ResultStore(path)
        first.put(_key(), _unsat_result())
        first.put(_key(method="cegar"), _sat_result())

        second = ResultStore(path)
        assert len(second) == 2
        assert second.get(_key(method="cegar")) == _sat_result()
        assert second.skipped_lines == 0

    def test_invalidation_tombstone_survives_restart(self, tmp_path):
        path = tmp_path / "results.jsonl"
        first = ResultStore(path)
        first.put(_key(model="a" * 8), _unsat_result())
        first.put(_key(model="b" * 8), _unsat_result())
        assert first.invalidate("a" * 8) == 1
        assert first.stats.invalidations == 1

        second = ResultStore(path)
        assert len(second) == 1
        assert second.get(_key(model="b" * 8)) is not None
        assert second.get(_key(model="a" * 8)) is None
        # the log stays append-only: the evicted line is still there
        kinds = [json.loads(l)["kind"] for l in path.read_text().splitlines()]
        assert kinds == ["result", "result", "invalidate"]

    def test_corrupt_and_unknown_version_lines_are_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(_key(), _unsat_result())
        with path.open("a") as handle:
            handle.write("{ not json\n")
            handle.write(json.dumps({"v": STORE_VERSION + 1, "kind": "result"}) + "\n")
            handle.write(json.dumps({"v": STORE_VERSION, "kind": "mystery"}) + "\n")
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.skipped_lines == 3

    def test_half_written_tail_does_not_sink_the_store(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(_key(), _unsat_result())
        # simulate a daemon killed mid-append
        with path.open("a") as handle:
            handle.write('{"v": 1, "kind": "res')
        reloaded = ResultStore(path)
        assert reloaded.get(_key()) == _unsat_result()
        assert reloaded.skipped_lines == 1


class TestStorability:
    def test_only_decided_verdicts_are_storable(self):
        query = VerificationQuery(risk=_risk())
        error_result = QueryResult(query=query, error="boom", decided_by="error")
        with pytest.raises(ValueError, match="decided"):
            StoredResult.from_query_result(error_result)

    def test_unknown_verdicts_are_never_stored(self):
        query = VerificationQuery(risk=_risk())
        unknown = QueryResult(
            query=query,
            verdict=VerificationVerdict(
                verdict=Verdict.UNKNOWN,
                property_name=None,
                risk=_risk(),
                feature_set_kind="static",
                monitored=False,
                solve_result=SolveResult(status=SolveStatus.UNKNOWN),
            ),
            decided_by="solve",
        )
        with pytest.raises(ValueError, match="UNKNOWN"):
            StoredResult.from_query_result(unknown)

    def test_restored_result_carries_store_provenance(self):
        query = VerificationQuery(risk=_risk())
        restored = _sat_result().to_query_result(query)
        assert restored.decided_by == "store"
        assert restored.ladder == ("result-store",)
        assert restored.verdict.verdict is Verdict.UNSAFE_IN_SET
        assert restored.verdict.solve_result.status is SolveStatus.SAT
        np.testing.assert_array_equal(
            restored.verdict.counterexample.features, [0.1, -0.7, 0.3]
        )
        assert restored.verdict.solve_result.stats["computed_by"] == "solve"


class TestInvalidationHook:
    def test_hook_captures_the_wiring_time_digest(self):
        store = ResultStore()
        store.put(_key(model="old" * 3), _unsat_result())
        hook = store.invalidation_hook("old" * 3)
        hook(object())  # the model argument is irrelevant to the store
        assert len(store) == 0

    def test_hook_is_idempotent(self):
        store = ResultStore()
        store.put(_key(model="old" * 3), _unsat_result())
        hook = store.invalidation_hook("old" * 3)
        hook(None)
        hook(None)
        assert store.stats.invalidations == 1
