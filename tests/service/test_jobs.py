"""The async job queue: states, priorities, faults, shutdown.

Every test runs against a real :class:`VerificationService` (background
event loop, thread-pool executors, shared engines) — no mocked
scheduler.  Determinism comes from the workload, not from sleeps: the
"slow" job is a sliced CEGAR run whose every slice re-enters the
service, so cancellation points and queue reordering are exercised at
well-defined boundaries.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service import ResultStore, VerificationService
from repro.service.jobs import JobSpec, JobState, ServiceClosed

from tests.service.conftest import submit_wait

#: a sliced CEGAR job on the undecidable-without-refinement property;
#: large budget + slice=1 keeps the worker busy for many slices
HARD_CEGAR = {
    "model": "model.onnx",
    "property": "hard.vnnlib",
    "method": "cegar",
    "refine_budget": 5000,
}


def _slow_service(bench_dir, workers=1):
    return VerificationService(
        ResultStore(),
        workers=workers,
        solver="highs",
        root=bench_dir,
        cegar_slice=1,
    )


def _gate_engine(monkeypatch):
    """Block the worker inside its first engine query until released.

    Returns ``(entered, release)`` events: ``entered`` fires once a
    worker is provably mid-execution (occupying its slot), and the
    query only proceeds after the test sets ``release`` — so whatever
    the test does in between happens at a well-defined point.
    """
    from repro.api import VerificationEngine

    entered = threading.Event()
    release = threading.Event()
    original = VerificationEngine.run_query_safe

    def gated(engine, query):
        entered.set()
        release.wait(timeout=60.0)
        return original(engine, query)

    monkeypatch.setattr(VerificationEngine, "run_query_safe", gated)
    return entered, release


class TestLifecycle:
    def test_unsat_instance_runs_to_done(self, service):
        job = submit_wait(
            service, {"model": "model.onnx", "property": "unsat.vnnlib"}
        )
        assert job.state is JobState.DONE
        assert job.result["status"] == "unsat"
        assert job.result["decided_by"] == ["prescreen"]
        assert job.started is not None and job.finished >= job.started

    def test_sat_instance_reports_sat(self, service):
        job = submit_wait(
            service, {"model": "model.onnx", "property": "sat.vnnlib"}
        )
        assert job.state is JobState.DONE
        assert job.result["status"] == "sat"

    def test_job_ids_are_deterministic(self, service):
        first = submit_wait(
            service, {"model": "model.onnx", "property": "unsat.vnnlib"}
        )
        second = submit_wait(
            service, {"model": "model.onnx", "property": "sat.vnnlib"}
        )
        assert (first.id, second.id) == ("job-000001", "job-000002")

    def test_to_dict_is_json_shaped(self, service):
        job = submit_wait(
            service, {"model": "model.onnx", "property": "unsat.vnnlib"}
        )
        payload = job.to_dict()
        assert payload["state"] == "done"
        assert payload["spec"]["model"] == "model.onnx"
        assert payload["result"]["model_digest"]


class TestStoreIntegration:
    def test_resubmission_hits_the_store(self, service):
        cold = submit_wait(
            service, {"model": "model.onnx", "property": "unsat.vnnlib"}
        )
        assert cold.result["store_hits"] == 0
        warm = submit_wait(
            service, {"model": "model.onnx", "property": "unsat.vnnlib"}
        )
        assert warm.result["store_hits"] == 1
        assert warm.result["status"] == cold.result["status"]
        assert warm.result["decided_by"] == ["store"]

    def test_invalidate_on_retrain_evicts_the_stored_results(self, service):
        job = submit_wait(
            service, {"model": "model.onnx", "property": "unsat.vnnlib"}
        )
        digest = job.result["model_digest"]
        assert len(service.store) == 1
        # a training pass through the daemon's cached model fires the
        # IR-invalidation hook, which carries the eviction into the store
        entry = next(iter(service._engines.values()))
        import numpy as np

        entry.model.forward(np.zeros((1, 4)), training=True)
        assert len(service.store) == 0
        assert service.store.stats.invalidations == 1
        assert service.results_for_model(digest) == []

    def test_explicit_invalidate_reports_the_eviction_count(self, service):
        job = submit_wait(
            service, {"model": "model.onnx", "property": "unsat.vnnlib"}
        )
        assert service.invalidate(job.result["model_digest"]) == 1
        assert service.invalidate(job.result["model_digest"]) == 0

    def test_single_flight_computes_the_answer_once(self, bench_dir):
        """N identical concurrent jobs -> exactly one solve.

        Whatever the interleaving — follower coalesces onto the
        in-flight leader, or arrives late and hits the store — the
        expensive answer is computed and stored exactly once.
        """
        svc = VerificationService(
            ResultStore(), workers=4, solver="highs", root=bench_dir
        )
        try:
            payload = {"model": "model.onnx", "property": "sat.vnnlib"}
            jobs = [svc.submit_payload(payload) for _ in range(4)]
            for job in jobs:
                assert job.wait(120.0)
                assert job.state is JobState.DONE
                assert job.result["status"] == "sat"
            assert svc.store.stats.puts == 1
            metrics = svc.metrics()
            deduped = metrics["coalesced"] + svc.store.stats.hits
            assert deduped == 3
        finally:
            svc.close(drain=False)


class TestPrioritiesAndCancellation:
    def test_higher_priority_overtakes_the_queue(self, bench_dir, monkeypatch):
        svc = _slow_service(bench_dir, workers=1)
        entered, release = _gate_engine(monkeypatch)
        try:
            blocker = svc.submit_payload({**HARD_CEGAR, "refine_budget": 30})
            assert entered.wait(60.0), "blocker never reached the engine"
            # the single worker is held inside the blocker: both rivals
            # are queued, and the heap must release the high-priority
            # one first
            low = svc.submit_payload(
                {"model": "model.onnx", "property": "unsat.vnnlib", "priority": 0}
            )
            high = svc.submit_payload(
                {"model": "model.onnx", "property": "sat.vnnlib", "priority": 10}
            )
            release.set()
            for job in (blocker, low, high):
                assert job.wait(300.0)
            assert high.started <= low.started
        finally:
            svc.close(drain=False)

    def test_cancel_queued_job_never_runs(self, bench_dir, monkeypatch):
        svc = _slow_service(bench_dir, workers=1)
        entered, release = _gate_engine(monkeypatch)
        try:
            svc.submit_payload({**HARD_CEGAR, "refine_budget": 30})
            assert entered.wait(60.0)
            queued = svc.submit_payload(
                {"model": "model.onnx", "property": "unsat.vnnlib"}
            )
            assert svc.cancel(queued.id) is True
            assert queued.state is JobState.CANCELLED
            assert queued.started is None
            release.set()
        finally:
            svc.close(drain=False)

    def test_cancel_mid_cegar_leaves_a_resumable_frontier(
        self, bench_dir, monkeypatch
    ):
        from repro.api import VerificationEngine

        svc = _slow_service(bench_dir, workers=1)
        # gate the worker between CEGAR slices: after the first slice
        # returns (UNKNOWN, open frontier) the worker blocks until the
        # test has issued the cancellation — no timing races
        first_slice_done = threading.Event()
        may_continue = threading.Event()
        original = VerificationEngine.run_query_safe

        def gated(engine, query):
            result = original(engine, query)
            if not first_slice_done.is_set():
                first_slice_done.set()
                may_continue.wait(timeout=60.0)
            return result

        monkeypatch.setattr(VerificationEngine, "run_query_safe", gated)
        try:
            job = svc.submit_payload(HARD_CEGAR)
            assert first_slice_done.wait(60.0), "first CEGAR slice never ran"
            assert job.state is JobState.RUNNING
            entry = next(iter(svc._engines.values()))
            frontier = [
                loop
                for loop in entry.engine._cegar_loops.values()
                if loop.frontier_size > 0
            ]
            assert frontier, "first slice left no open frontier"
            assert svc.cancel(job.id) is True
            may_continue.set()
            assert job.wait(60.0)
            assert job.state is JobState.CANCELLED
            # the engine's cached loop survived the cancellation with
            # its frontier intact: a resubmission resumes refinement
            # instead of restarting from the root subproblem
            assert frontier[0].frontier_size > 0
            svc.cegar_slice = 64  # the resume needn't stay cancellation-fine
            resumed = submit_wait(svc, dict(HARD_CEGAR), timeout=600.0)
            assert resumed.state is JobState.DONE
            assert resumed.result["status"] == "unsat"
            assert resumed.result["cegar"]["subproblems_processed"] >= 1
        finally:
            svc.close(drain=False)

    def test_cancel_unknown_or_finished_job_is_false(self, service):
        assert service.cancel("job-999999") is False
        job = submit_wait(
            service, {"model": "model.onnx", "property": "unsat.vnnlib"}
        )
        assert service.cancel(job.id) is False


class TestStructuralJobs:
    def test_structural_flag_round_trips_and_reports_splits(self, service):
        job = submit_wait(service, {**HARD_CEGAR, "structural": True})
        assert job.state is JobState.DONE
        assert job.result["status"] == "unsat"
        assert job.to_dict()["spec"]["structural"] is True
        # the hard property sits just above the reachable maximum: the
        # structural axis genuinely splits merged groups on the way
        assert job.result["cegar"]["structural_splits"] >= 1

    def test_sliced_structural_job_resumes_merge_state(self, bench_dir):
        # slice=1 forces every round through the service checkpoint: the
        # merge state must survive each frontier handoff or the job
        # would re-merge (and re-pay) every slice
        svc = _slow_service(bench_dir, workers=1)
        try:
            job = submit_wait(
                svc, {**HARD_CEGAR, "structural": True}, timeout=600.0
            )
            assert job.state is JobState.DONE
            assert job.result["status"] == "unsat"
            assert job.result["cegar"]["structural_splits"] >= 1
        finally:
            svc.close(drain=False)

    def test_structural_verdict_matches_plain_cegar(self, service):
        plain = submit_wait(service, dict(HARD_CEGAR))
        structural = submit_wait(service, {**HARD_CEGAR, "structural": True})
        assert plain.result["status"] == structural.result["status"] == "unsat"
        # the store is verdict-level and method-agnostic on purpose:
        # structural is a strategy, not a different question, so the
        # resubmission is legitimately served from the plain run's entry
        assert structural.result["decided_by"] == ["store"]

    def test_structural_requires_cegar_method(self):
        with pytest.raises(ValueError, match="cegar"):
            JobSpec(
                model="m", property="p", method="exact", structural=True
            )


class TestBudgets:
    def test_budget_exceeded_is_timeout_not_failed(self, service):
        job = submit_wait(
            service,
            {"model": "model.onnx", "property": "sat.vnnlib", "timeout": 0.001},
        )
        assert job.state is JobState.TIMEOUT
        assert job.result["status"] == "timeout"
        assert job.error is None

    def test_sliced_cegar_respects_the_wall_budget(self, bench_dir, monkeypatch):
        from repro.api import VerificationEngine

        original = VerificationEngine.run_query_safe

        def slow(engine, query):
            # each slice outlasts most of the wall budget, so the
            # between-slice deadline check (or the late-answer rule)
            # must fire well before the refine budget runs out
            time.sleep(0.2)
            return original(engine, query)

        monkeypatch.setattr(VerificationEngine, "run_query_safe", slow)
        svc = _slow_service(bench_dir, workers=1)
        try:
            job = svc.submit_payload({**HARD_CEGAR, "timeout": 0.3})
            assert job.wait(120.0)
            assert job.state is JobState.TIMEOUT
            assert job.result["status"] == "timeout"
        finally:
            svc.close(drain=False)

    def test_rejects_non_positive_budgets(self):
        with pytest.raises(ValueError, match="timeout"):
            JobSpec(model="m", property="p", timeout=0.0)
        with pytest.raises(ValueError, match="refine_budget"):
            JobSpec(model="m", property="p", refine_budget=-1)


class TestFaultIsolation:
    def test_missing_model_fails_the_job_not_the_daemon(self, service):
        bad = submit_wait(
            service, {"model": "nope.onnx", "property": "unsat.vnnlib"}
        )
        assert bad.state is JobState.FAILED
        assert "nope.onnx" in bad.error
        good = submit_wait(
            service, {"model": "model.onnx", "property": "unsat.vnnlib"}
        )
        assert good.state is JobState.DONE

    def test_corrupt_model_fails_the_job_not_the_daemon(self, service, bench_dir):
        (bench_dir / "corrupt.onnx").write_bytes(b"not an onnx file")
        bad = submit_wait(
            service, {"model": "corrupt.onnx", "property": "unsat.vnnlib"}
        )
        assert bad.state is JobState.FAILED
        good = submit_wait(
            service, {"model": "model.onnx", "property": "sat.vnnlib"}
        )
        assert good.state is JobState.DONE

    def test_dimension_mismatch_fails_cleanly(self, service, bench_dir):
        import numpy as np

        from repro.interchange.vnnlib import write_vnnlib
        from repro.properties.risk import RiskCondition, output_geq

        write_vnnlib(
            bench_dir / "wrong-dims.vnnlib",
            np.zeros(7),
            np.ones(7),
            [RiskCondition("r", (output_geq(2, 0, 0.0),))],
        )
        bad = submit_wait(
            service, {"model": "model.onnx", "property": "wrong-dims.vnnlib"}
        )
        assert bad.state is JobState.FAILED
        assert "input variables" in bad.error

    def test_crashed_executor_degrades_the_job_only(self, service, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        def explode(*_args, **_kwargs):
            raise BrokenProcessPool("a worker died")

        monkeypatch.setattr(service, "_execute_instance", explode)
        crashed = submit_wait(
            service, {"model": "model.onnx", "property": "unsat.vnnlib"}
        )
        assert crashed.state is JobState.FAILED
        assert "BrokenProcessPool" in crashed.error
        monkeypatch.undo()
        recovered = submit_wait(
            service, {"model": "model.onnx", "property": "unsat.vnnlib"}
        )
        assert recovered.state is JobState.DONE

    def test_path_escape_is_rejected(self, service):
        job = submit_wait(
            service, {"model": "../../etc/passwd", "property": "unsat.vnnlib"}
        )
        assert job.state is JobState.FAILED
        assert "escape" in job.error or "No such file" in job.error


class TestPayloadValidation:
    def test_unknown_fields_are_rejected(self, service):
        with pytest.raises(ValueError, match="unknown job fields"):
            service.submit_payload(
                {"model": "m", "property": "p", "bogus": 1}
            )

    def test_missing_paths_are_rejected(self, service):
        with pytest.raises(ValueError, match="model"):
            service.submit_payload({"method": "exact"})

    def test_unknown_suite_instance_is_rejected(self, service):
        with pytest.raises(ValueError, match="no instance"):
            service.submit_payload({"suite": "smoke", "instance": "nope"})

    def test_non_verdict_method_is_rejected(self, service):
        with pytest.raises(ValueError, match="verdict methods"):
            service.submit_payload(
                {"model": "m", "property": "p", "method": "range"}
            )


class TestShutdown:
    def test_drain_finishes_queued_work(self, bench_dir):
        svc = VerificationService(
            ResultStore(), workers=1, solver="highs", root=bench_dir
        )
        jobs = [
            svc.submit_payload({"model": "model.onnx", "property": "unsat.vnnlib"})
            for _ in range(3)
        ]
        assert svc.close(drain=True) is True
        assert all(job.state is JobState.DONE for job in jobs)

    def test_no_drain_cancels_the_queue_and_interrupts_cegar(
        self, bench_dir, monkeypatch
    ):
        svc = _slow_service(bench_dir, workers=1)
        entered, release = _gate_engine(monkeypatch)
        running = svc.submit_payload(HARD_CEGAR)
        assert entered.wait(60.0)
        queued = svc.submit_payload(
            {"model": "model.onnx", "property": "unsat.vnnlib"}
        )
        # close() sets every live job's cancel event before waiting on
        # the done events; release the gated worker at that point so it
        # observes the cancellation at its next slice boundary
        threading.Thread(
            target=lambda: (running.cancel_event.wait(60.0), release.set()),
            daemon=True,
        ).start()
        assert svc.close(drain=False, timeout=60.0) is True
        assert queued.state is JobState.CANCELLED
        assert queued.started is None
        assert running.state is JobState.CANCELLED

    def test_submit_after_close_raises(self, bench_dir):
        svc = VerificationService(ResultStore(), root=bench_dir)
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit_payload({"model": "model.onnx", "property": "unsat.vnnlib"})

    def test_close_is_idempotent(self, bench_dir):
        svc = VerificationService(ResultStore(), root=bench_dir)
        assert svc.close() is True
        assert svc.close() is True


class TestMetrics:
    def test_metrics_shape_and_counts(self, service):
        submit_wait(service, {"model": "model.onnx", "property": "unsat.vnnlib"})
        submit_wait(service, {"model": "model.onnx", "property": "unsat.vnnlib"})
        metrics = service.metrics()
        assert metrics["jobs"]["done"] == 2
        assert metrics["queue_depth"] == 0
        assert metrics["running"] == 0
        assert metrics["engines"] == 1
        assert metrics["store"]["puts"] == 1
        assert metrics["store"]["hits"] == 1
        assert metrics["latency_p50"] is not None
        assert metrics["latency_p95"] >= metrics["latency_p50"] - 1e-9
        assert metrics["uptime"] > 0
