"""The PR's acceptance bar: the store turns recomputation into lookup.

A cold submission pays for a genuine MILP solve; resubmitting the same
(model, property, method, domain, precision) must answer from the
persistent store at least **10x faster** with the identical verdict —
across a daemon restart, since the store is the only state carried over.
"""

from __future__ import annotations

import pytest

from repro.service import ResultStore, VerificationService
from tests.service.conftest import submit_wait


def test_warm_resubmission_is_10x_faster_with_identical_verdict(
    bench_dir, tmp_path
):
    store_path = tmp_path / "results.jsonl"
    # the SAT instance needs a genuine MILP solve (~tens of ms cold,
    # measured warm/cold ratio is >100x; the asserted bar is 10x)
    payload = {"model": "model.onnx", "property": "sat.vnnlib", "method": "exact"}

    cold_svc = VerificationService(
        ResultStore(store_path), workers=1, solver="highs", root=bench_dir
    )
    try:
        cold = submit_wait(cold_svc, dict(payload))
    finally:
        assert cold_svc.close(drain=False, timeout=60.0)
    assert cold.state.value == "done"
    assert cold.result["store_hits"] == 0
    assert cold_svc.store.stats.puts == 1

    # a fresh daemon on the same store file: nothing survives but the log
    warm_svc = VerificationService(
        ResultStore(store_path), workers=1, solver="highs", root=bench_dir
    )
    try:
        warm = submit_wait(warm_svc, dict(payload))
    finally:
        assert warm_svc.close(drain=False, timeout=60.0)
    assert warm.state.value == "done"
    assert warm.result["store_hits"] == 1
    assert warm.result["decided_by"] == ["store"]

    assert warm.result["status"] == cold.result["status"]
    assert warm.result["statuses"] == cold.result["statuses"]
    assert 10.0 * warm.result["elapsed"] <= cold.result["elapsed"], (
        f"warm {warm.result['elapsed']:.6f}s vs cold "
        f"{cold.result['elapsed']:.6f}s: less than 10x"
    )
