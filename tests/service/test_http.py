"""HTTP/JSON front-end contract: routes, errors, and a golden file.

The live tests exercise every route through :class:`ServiceClient` (the
same client the CLI and the bench runner use) plus raw-socket edge cases
the client never produces (malformed JSON, oversized bodies).  The
golden test replays a fixed request script against a fresh daemon and
pins each response's status code, JSON schema and verdict-level
semantics — value-level floats, timestamps and digests are normalized
away, so only intentional API changes touch the file.

Regenerating after an **intentional** contract change::

    PYTHONPATH=src:. python tests/service/test_http.py --regenerate

then commit the updated ``tests/service/golden/http_contract.json``
together with the change that motivated it.
"""

from __future__ import annotations

import json
import re
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.service import (
    ResultStore,
    ServiceClient,
    ServiceError,
    VerificationService,
    start_server,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "http_contract.json"

_HEX_DIGEST = re.compile(r"^[0-9a-f]{64}$")

#: response keys whose values are wall-clock dependent
_VOLATILE = frozenset(
    {
        "created",
        "started",
        "finished",
        "elapsed",
        "uptime",
        "latency_p50",
        "latency_p95",
    }
)


@pytest.fixture
def server(bench_dir):
    service = VerificationService(
        ResultStore(), workers=2, solver="highs", root=bench_dir
    )
    server, _thread = start_server(service)
    yield server
    server.shutdown()
    service.close(drain=False, timeout=60.0)


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=60.0)


class TestRoutes:
    def test_healthz(self, client):
        assert client.health() == {"status": "ok", "closing": False}

    def test_submit_wait_and_list(self, client):
        job = client.submit({"model": "model.onnx", "property": "unsat.vnnlib"})
        assert job["id"] == "job-000001"
        assert job["state"] in ("queued", "running", "done")
        done = client.wait_for(job["id"])
        assert done["state"] == "done"
        assert done["result"]["status"] == "unsat"
        assert done["result"]["decided_by"] == ["prescreen"]
        listed = client.jobs()
        assert [j["id"] for j in listed] == ["job-000001"]

    def test_server_side_wait_blocks_until_terminal(self, client):
        job = client.submit({"model": "model.onnx", "property": "sat.vnnlib"})
        # one long-poll round trip, no client-side polling loop
        done = client.job(job["id"], wait=60.0)
        assert done["state"] == "done"
        assert done["result"]["status"] == "sat"

    def test_results_and_invalidate(self, client):
        job = client.submit({"model": "model.onnx", "property": "unsat.vnnlib"})
        done = client.wait_for(job["id"])
        digest = done["result"]["model_digest"]
        assert client.model_digests() == [digest]
        results = client.results(digest)
        assert len(results) == 1 and results[0]["verdict"]
        assert client.invalidate(digest) == 1
        assert client.model_digests() == []

    def test_cancel_routes(self, client):
        job = client.submit({"model": "model.onnx", "property": "unsat.vnnlib"})
        client.wait_for(job["id"])
        # already terminal: the route answers, the cancel is a no-op
        assert client.cancel(job["id"]) is False
        with pytest.raises(ServiceError) as exc:
            client.cancel("job-999999")
        assert exc.value.status == 404

    def test_metrics_over_http(self, client):
        job = client.submit({"model": "model.onnx", "property": "unsat.vnnlib"})
        client.wait_for(job["id"])
        metrics = client.metrics()
        assert metrics["jobs"]["done"] == 1
        assert metrics["engines"] == 1
        assert metrics["store"]["puts"] == 1


class TestErrors:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.job("job-424242")
        assert exc.value.status == 404
        assert "no such job" in str(exc.value)

    def test_unknown_routes_are_404(self, client):
        for method, path in (
            ("GET", "/v2/jobs"),
            ("POST", "/v1/nope"),
            ("DELETE", "/v1/results"),
        ):
            status, body = _exchange(client.base_url, method, path, payload={})
            assert status == 404, (method, path)
            assert "no such route" in body["error"]

    def test_invalid_payload_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.submit({"model": "model.onnx"})
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            client.submit({"model": "m", "property": "p", "bogus": 1})
        assert exc.value.status == 400
        assert "unknown job fields" in str(exc.value)

    def test_malformed_json_body_is_400(self, client):
        status, body = _exchange(client.base_url, "POST", "/v1/jobs", raw=b"{nope")
        assert status == 400 and "invalid JSON" in body["error"]
        status, body = _exchange(client.base_url, "POST", "/v1/jobs", raw=b"[1, 2]")
        assert status == 400 and "must be an object" in body["error"]

    def test_oversized_body_is_413(self, client):
        import http.client
        from urllib.parse import urlparse

        # declare an oversized Content-Length without sending the body:
        # the server must answer (and close) without reading it
        parsed = urlparse(client.base_url)
        conn = http.client.HTTPConnection(parsed.hostname, parsed.port, timeout=60)
        try:
            conn.putrequest("POST", "/v1/jobs")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str((1 << 20) + 1))
            conn.endheaders()
            response = conn.getresponse()
            body = json.loads(response.read().decode())
        finally:
            conn.close()
        assert response.status == 413
        assert "body too large" in body["error"]
        assert response.getheader("Connection") == "close"

    def test_invalid_wait_value_is_400(self, client):
        job = client.submit({"model": "model.onnx", "property": "unsat.vnnlib"})
        status, body = _exchange(
            client.base_url, "GET", f"/v1/jobs/{job['id']}?wait=forever"
        )
        assert status == 400
        assert "invalid wait" in body["error"]

    def test_invalidate_needs_a_digest_string(self, client):
        status, body = _exchange(
            client.base_url, "POST", "/v1/invalidate", payload={"model": 7}
        )
        assert status == 400
        assert "digest string" in body["error"]

    def test_submit_after_close_is_503(self, server, client):
        server.service.close(drain=False, timeout=60.0)
        with pytest.raises(ServiceError) as exc:
            client.submit({"model": "model.onnx", "property": "unsat.vnnlib"})
        assert exc.value.status == 503


# -- golden contract -------------------------------------------------------


def _exchange(base, method, path, payload=None, raw=None):
    """One HTTP exchange, returning (status, parsed JSON body)."""
    body = raw if raw is not None else (
        json.dumps(payload).encode() if payload is not None else None
    )
    request = urllib.request.Request(
        base + path,
        data=body,
        headers={"Content-Type": "application/json"} if body else {},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=60.0) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def _normalize(node):
    """Zero wall-clock values, mask digests; keep everything else."""
    if isinstance(node, dict):
        return {
            key: 0 if key in _VOLATILE and isinstance(value, (int, float)) else _normalize(value)
            for key, value in node.items()
        }
    if isinstance(node, list):
        return [_normalize(value) for value in node]
    if isinstance(node, str) and _HEX_DIGEST.match(node):
        return "<digest>"
    return node


#: the scripted conversation: (method, path template, payload).
#: ``{digest}`` resolves to the model digest learned from the first job.
_SCRIPT = (
    ("GET", "/healthz", None),
    ("POST", "/v1/jobs", {"model": "model.onnx", "property": "unsat.vnnlib"}),
    ("GET", "/v1/jobs/job-000001?wait=60", None),
    ("POST", "/v1/jobs", {"model": "model.onnx", "property": "unsat.vnnlib"}),
    ("GET", "/v1/jobs/job-000002?wait=60", None),
    ("GET", "/v1/jobs", None),
    ("GET", "/v1/results", None),
    ("GET", "/v1/results?model={digest}", None),
    ("DELETE", "/v1/jobs/job-000001", None),
    ("POST", "/v1/invalidate", {"model": "{digest}"}),
    ("GET", "/metrics", None),
    ("GET", "/v1/jobs/job-424242", None),
    ("POST", "/v1/jobs", {"model": "model.onnx"}),
    ("GET", "/v1/nope", None),
)


def _run_script(bench) -> list[dict]:
    service = VerificationService(
        ResultStore(), workers=2, solver="highs", root=bench
    )
    server, _thread = start_server(service)
    digest = None
    transcript = []
    try:
        for method, path, payload in _SCRIPT:
            if digest is not None:
                path = path.format(digest=digest)
                if payload:
                    payload = {
                        k: v.format(digest=digest) if isinstance(v, str) else v
                        for k, v in payload.items()
                    }
            status, body = _exchange(server.url, method, path, payload=payload)
            if digest is None and isinstance(body.get("result"), dict):
                digest = body["result"]["model_digest"]
            if status == 201:
                # a fresh submission races the worker (the job may
                # already be running or even done), so only the stable
                # subset of the response is pinned
                body = {"id": body["id"], "spec": body["spec"]}
            transcript.append(
                {
                    "request": f"{method} {path.split('?')[0]}",
                    "status": status,
                    "response": _normalize(body),
                }
            )
    finally:
        server.shutdown()
        service.close(drain=False, timeout=60.0)
    return transcript


def test_http_contract_matches_golden(bench_dir):
    """See the module docstring for the regeneration command."""
    assert GOLDEN_PATH.exists(), (
        f"golden file missing; generate it with "
        f"PYTHONPATH=src:. python tests/service/test_http.py --regenerate"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    actual = _run_script(bench_dir)
    assert actual == golden, (
        "HTTP contract changed; if intentional, regenerate the golden "
        "file (see module docstring) and commit it"
    )


def main(argv: list[str]) -> int:
    if "--regenerate" not in argv:
        print(__doc__)
        return 2
    from tests.service.conftest import standalone_bench

    with tempfile.TemporaryDirectory() as tmp:
        transcript = _run_script(standalone_bench(Path(tmp)))
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(transcript, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
