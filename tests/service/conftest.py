"""Shared fixtures for the service layer tests.

One module-scoped benchmark directory (ONNX model + three ``.vnnlib``
properties of graded difficulty) feeds every test; services themselves
are function-scoped so each test gets a fresh store, fresh engines and
deterministic job ids starting at ``job-000001``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.interchange.onnx import export_onnx
from repro.interchange.vnnlib import write_vnnlib
from repro.perception.network import build_mlp_perception_network
from repro.properties.risk import RiskCondition, output_geq
from repro.service import ResultStore, VerificationService


@pytest.fixture(scope="module")
def svc_model():
    return build_mlp_perception_network(
        input_dim=4, hidden=(8,), feature_width=4, seed=1
    )


@pytest.fixture(scope="module")
def reachable(svc_model):
    """Empirical y0 range over [0, 1]^4 (for picking thresholds)."""
    rng = np.random.default_rng(0)
    out = svc_model.forward(rng.uniform(0, 1, size=(4000, 4)), training=False)
    return float(out[:, 0].min()), float(out[:, 0].max())


def _risk(threshold: float) -> RiskCondition:
    return RiskCondition("y0-high", (output_geq(2, 0, threshold),))


def make_bench(directory, svc_model, reachable):
    """Write model.onnx + unsat/sat/hard properties over the unit box.

    - ``unsat.vnnlib``: threshold far above the enclosure — the interval
      prescreen decides it instantly;
    - ``sat.vnnlib``: mid-range threshold — needs a genuine solve, the
      answer is a counterexample;
    - ``hard.vnnlib``: threshold just above the reachable maximum —
      undecidable without refinement, so CEGAR genuinely splits.

    A plain function (not a fixture) so golden-file ``main()`` entry
    points can build the same benchmark outside pytest.
    """
    export_onnx(svc_model, directory / "model.onnx")
    lo, hi = reachable
    lower, upper = np.zeros(4), np.ones(4)
    write_vnnlib(directory / "unsat.vnnlib", lower, upper, [_risk(hi + 50.0)])
    write_vnnlib(directory / "sat.vnnlib", lower, upper, [_risk(0.5 * (lo + hi))])
    write_vnnlib(directory / "hard.vnnlib", lower, upper, [_risk(hi + 0.3)])
    return directory


@pytest.fixture(scope="module")
def bench_dir(tmp_path_factory, svc_model, reachable):
    """See :func:`make_bench`."""
    return make_bench(tmp_path_factory.mktemp("svc-bench"), svc_model, reachable)


def standalone_bench(directory):
    """The ``bench_dir`` contents, computable outside pytest."""
    model = build_mlp_perception_network(
        input_dim=4, hidden=(8,), feature_width=4, seed=1
    )
    rng = np.random.default_rng(0)
    out = model.forward(rng.uniform(0, 1, size=(4000, 4)), training=False)
    reachable = (float(out[:, 0].min()), float(out[:, 0].max()))
    return make_bench(directory, model, reachable)


@pytest.fixture
def service(bench_dir):
    svc = VerificationService(
        ResultStore(), workers=2, solver="highs", root=bench_dir
    )
    yield svc
    svc.close(drain=False, timeout=60.0)


def submit_wait(svc: VerificationService, payload: dict, timeout: float = 120.0):
    """Submit a payload and block until the job is terminal."""
    job = svc.submit_payload(payload)
    assert job.wait(timeout), f"{job.id} still {job.state} after {timeout}s"
    return job
