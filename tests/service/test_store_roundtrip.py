"""Property-based round trips for the result store.

Two claims the daemon's correctness leans on, checked with Hypothesis
rather than a handful of examples:

1. **Bit-exact persistence** — any storable :class:`StoredResult`
   survives ``to_dict -> json -> from_dict`` and a full file-backed
   store restart without losing a single bit of any float (Python's
   ``json`` writes ``repr(float)``, the shortest round-tripping form),
   so a restored SAT witness replays to exactly the recorded outputs.

2. **Replay semantics** — an arbitrary interleaving of puts and
   invalidations replayed from the JSONL log reconstructs exactly the
   in-memory map (last writer wins, tombstones evict).
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import ResultStore, StoredResult
from repro.service.store import StoreKey

_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
)


@st.composite
def stored_results(draw):
    sat = draw(st.booleans())
    witness = (
        draw(st.lists(_floats, min_size=1, max_size=6)) if sat else None
    )
    return StoredResult(
        verdict=draw(
            st.sampled_from(["safe", "conditionally-safe", "unsafe-in-set"])
        ),
        solver_status=draw(st.sampled_from(["optimal", "infeasible", "unknown"])),
        decided_by=draw(_names),
        monitored=draw(st.booleans()),
        feature_set_kind=draw(st.sampled_from(["box", "box+diff", "input-region"])),
        elapsed=draw(_floats.filter(lambda v: v >= 0.0)),
        ladder=tuple(draw(st.lists(_names, max_size=4))),
        counterexample_features=tuple(witness) if witness else None,
        counterexample_output=(
            tuple(draw(st.lists(_floats, min_size=1, max_size=3)))
            if witness
            else None
        ),
        risk_margin=draw(_floats) if sat and draw(st.booleans()) else None,
        characterizer_logit=draw(_floats) if sat and draw(st.booleans()) else None,
    )


@st.composite
def store_keys(draw):
    return StoreKey(
        model=draw(_names),
        query=draw(_names),
        domain=draw(st.sampled_from(["interval", "zonotope", "none"])),
        method=draw(st.sampled_from(["exact", "relaxed", "cegar"])),
        precision=draw(st.sampled_from(["exact64", "fast32"])),
    )


@settings(max_examples=80, deadline=None)
@given(result=stored_results())
def test_stored_result_json_round_trip_is_bit_exact(result):
    restored = StoredResult.from_dict(
        json.loads(json.dumps(result.to_dict()))
    )
    # dataclass equality compares every float by value; == on floats is
    # bitwise for non-NaN doubles, so this pins bit-exactness
    assert restored == result


@settings(max_examples=25, deadline=None)
@given(
    entries=st.lists(
        st.tuples(store_keys(), stored_results()), min_size=1, max_size=8
    )
)
def test_file_backed_store_restart_is_bit_exact(tmp_path_factory, entries):
    path = tmp_path_factory.mktemp("store") / "results.jsonl"
    store = ResultStore(path)
    for key, result in entries:
        store.put(key, result)
    reloaded = ResultStore(path)
    assert set(reloaded.keys()) == {key for key, _ in entries}
    for key, result in entries:
        # last writer wins on duplicate keys
        if store._entries[key] is result:
            assert reloaded._entries[key] == result
    assert reloaded._entries == store._entries


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("put"), store_keys(), stored_results()),
            st.tuples(st.just("invalidate"), _names),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_replay_of_interleaved_puts_and_tombstones(tmp_path_factory, ops):
    path = tmp_path_factory.mktemp("store") / "results.jsonl"
    store = ResultStore(path)
    shadow: dict[StoreKey, StoredResult] = {}
    for op in ops:
        if op[0] == "put":
            _, key, result = op
            store.put(key, result)
            shadow[key] = result
        else:
            _, model = op
            store.invalidate(model)
            shadow = {k: v for k, v in shadow.items() if k.model != model}
    reloaded = ResultStore(path)
    assert reloaded._entries == shadow
    assert reloaded.model_digests() == sorted({k.model for k in shadow})
