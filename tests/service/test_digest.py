"""Content digests: determinism, IR parity, invalidation on retraining."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.interchange.onnx import export_onnx, import_onnx
from repro.nn import Dense, ReLU, Sequential
from repro.perception.network import build_mlp_perception_network
from repro.properties.risk import LinearInequality, RiskCondition, output_geq
from repro.service.digest import (
    model_digest,
    property_digest,
    query_digest,
    risk_digest,
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _mlp(seed: int = 3) -> Sequential:
    return Sequential(
        [Dense(8), ReLU(), Dense(8), ReLU(), Dense(2)],
        input_shape=(3,),
        seed=seed,
    )


class TestModelDigest:
    def test_equal_weights_share_a_digest(self):
        assert model_digest(_mlp(0)) == model_digest(_mlp(0))

    def test_different_weights_differ(self):
        assert model_digest(_mlp(0)) != model_digest(_mlp(1))

    def test_onnx_round_trip_preserves_the_digest(self, tmp_path):
        """An imported model must hash like the native construction it
        round-trips — otherwise the store never hits across the
        interchange boundary.  Covers MLPs and the conv/pool/LeakyReLU
        op set (whose float32 ``alpha`` attribute is the risky field)."""
        native = build_mlp_perception_network(
            input_dim=6, hidden=(10, 8), feature_width=6, seed=4
        )
        path = tmp_path / "m.onnx"
        export_onnx(native, path)
        assert model_digest(import_onnx(path)) == model_digest(native)

    def test_conv_model_round_trip_preserves_the_digest(self, tmp_path, tiny_convnet):
        path = tmp_path / "conv.onnx"
        export_onnx(tiny_convnet, path)
        assert model_digest(import_onnx(path)) == model_digest(tiny_convnet)

    def test_digest_is_cached_until_training_invalidates_it(self, rng):
        model = _mlp(0)
        before = model_digest(model)
        assert model.__dict__["_model_digest"] == before
        # inference passes keep the cache ...
        model.forward(rng.uniform(size=(2, 3)), training=False)
        assert "_model_digest" in model.__dict__
        # ... training passes drop it, and updated weights re-hash fresh
        model.forward(rng.uniform(size=(2, 3)), training=True)
        assert "_model_digest" not in model.__dict__
        for parameter in model.parameters():
            parameter.value += 0.05
        model.invalidate_lowering()
        assert model_digest(model) != before

    def test_digest_is_stable_across_process_restarts(self):
        """No ``id()``, dict order or address may leak into the hash."""
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.nn import Dense, ReLU, Sequential\n"
            "from repro.service.digest import model_digest\n"
            "m = Sequential([Dense(8), ReLU(), Dense(8), ReLU(), Dense(2)],"
            " input_shape=(3,), seed=3)\n"
            "print(model_digest(m))\n"
        )
        runs = [
            subprocess.run(
                [sys.executable, "-c", script, REPO_SRC],
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        ]
        assert runs[0] == runs[1] == model_digest(_mlp(3))


class TestRiskAndQueryDigests:
    def test_risk_digest_ignores_names_but_not_geometry(self):
        a = RiskCondition("steer-left", (output_geq(2, 0, 0.5),))
        b = RiskCondition("completely-different-name", (output_geq(2, 0, 0.5),))
        c = RiskCondition("steer-left", (output_geq(2, 0, 0.6),))
        assert risk_digest(a) == risk_digest(b)
        assert risk_digest(a) != risk_digest(c)

    def test_risk_digest_normalizes_inequality_direction(self):
        geq = RiskCondition("r", (output_geq(2, 0, 0.5),))
        leq = RiskCondition(
            "r", (LinearInequality((-1.0, 0.0), "<=", -0.5),)
        )
        assert risk_digest(geq) == risk_digest(leq)

    def test_property_digest_orders_disjuncts(self):
        lower, upper = np.zeros(3), np.ones(3)
        r1 = RiskCondition("a", (output_geq(2, 0, 0.1),))
        r2 = RiskCondition("b", (output_geq(2, 1, 0.2),))
        assert property_digest(lower, upper, [r1, r2]) != property_digest(
            lower, upper, [r2, r1]
        )

    def test_query_digest_separates_sound_from_data_derived(self):
        risk = RiskCondition("r", (output_geq(2, 0, 0.5),))
        box = (np.zeros(3), np.ones(3))
        sound = query_digest(risk, box, None, sound=True)
        derived = query_digest(risk, box, None, sound=False)
        assert sound != derived

    def test_query_digest_depends_on_the_box(self):
        risk = RiskCondition("r", (output_geq(2, 0, 0.5),))
        a = query_digest(risk, (np.zeros(3), np.ones(3)), None, sound=True)
        b = query_digest(risk, (np.zeros(3), np.full(3, 0.5)), None, sound=True)
        assert a != b
