"""Unit tests for the risk-condition DSL."""

import numpy as np
import pytest

from repro.properties.risk import (
    LinearInequality,
    RiskCondition,
    output_geq,
    output_in_band,
    output_leq,
)


class TestLinearInequality:
    def test_leq_satisfied(self):
        ineq = LinearInequality((1.0, 0.0), "<=", 2.0)
        assert ineq.satisfied(np.array([1.5, 99.0]))
        assert not ineq.satisfied(np.array([2.5, 0.0]))

    def test_geq_normalization(self):
        ineq = LinearInequality((1.0, 0.0), ">=", 2.0)
        a, b = ineq.normalized()
        np.testing.assert_array_equal(a, [-1.0, 0.0])
        assert b == -2.0
        assert ineq.satisfied(np.array([3.0, 0.0]))

    def test_batch_evaluation(self):
        ineq = LinearInequality((1.0,), "<=", 0.0)
        result = ineq.satisfied(np.array([[-1.0], [1.0]]))
        assert result.tolist() == [True, False]

    def test_margin_sign_convention(self):
        ineq = LinearInequality((1.0,), "<=", 5.0)
        assert ineq.margin(np.array([3.0])) == pytest.approx(2.0)
        assert ineq.margin(np.array([7.0])) == pytest.approx(-2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="op"):
            LinearInequality((1.0,), "<", 0.0)
        with pytest.raises(ValueError, match="non-zero"):
            LinearInequality((0.0, 0.0), "<=", 0.0)

    def test_str_rendering(self):
        text = str(LinearInequality((1.0, -2.0), ">=", 0.5))
        assert "y[0]" in text and ">=" in text


class TestRiskCondition:
    def test_conjunction_semantics(self):
        band = RiskCondition("band", tuple(output_in_band(2, 0, -1.0, 1.0)))
        y = np.array([[0.0, 9.0], [2.0, 0.0], [-2.0, 0.0]])
        assert band.satisfied(y).tolist() == [True, False, False]

    def test_margin_is_worst_inequality(self):
        band = RiskCondition("band", tuple(output_in_band(2, 0, -1.0, 1.0)))
        margins = band.margin(np.array([[0.5, 0.0]]))
        assert margins[0] == pytest.approx(0.5)  # distance to nearest edge

    def test_as_matrix_shape(self):
        band = RiskCondition("band", tuple(output_in_band(3, 1, 0.0, 2.0)))
        a, b = band.as_matrix()
        assert a.shape == (2, 3) and b.shape == (2,)
        # both rows must hold exactly for y[1] in [0, 2]
        y = np.array([1.0, 1.0, 1.0])
        assert np.all(a @ y <= b)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            RiskCondition("empty", ())
        with pytest.raises(ValueError, match="dimensions"):
            RiskCondition(
                "mixed",
                (output_geq(2, 0, 0.0), output_geq(3, 0, 0.0)),
            )


class TestHelpers:
    def test_output_leq_geq(self):
        leq = output_leq(3, 2, 1.0)
        assert leq.coeffs == (0.0, 0.0, 1.0) and leq.op == "<="
        geq = output_geq(3, 0, -1.0)
        assert geq.op == ">="

    def test_band_rejects_empty(self):
        with pytest.raises(ValueError, match="empty band"):
            list(output_in_band(2, 0, 1.0, -1.0))
