"""Unit tests for input properties and the canonical specification library."""

import numpy as np
import pytest

from repro.properties.library import (
    STEER_FAR_LEFT,
    STEER_FAR_RIGHT,
    STEER_STRAIGHT,
    canonical_specifications,
    orientation_hard_left,
    steer_far_left,
)
from repro.properties.phi import InputProperty


class TestInputProperty:
    def test_from_registry(self):
        prop = InputProperty.from_registry("bends_right")
        assert prop.name == "bends_right"
        assert prop.description

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown property"):
            InputProperty.from_registry("nonsense")

    def test_labels_over_dataset(self, small_dataset):
        prop = InputProperty.from_registry("bends_left")
        labels = prop.labels(small_dataset)
        assert labels.shape == (len(small_dataset),)
        np.testing.assert_array_equal(
            labels, small_dataset.property_labels("bends_left")
        )

    def test_str(self):
        assert str(InputProperty.from_registry("is_foggy")) == "phi[is_foggy]"


class TestCanonicalRisks:
    def test_far_left_triggers_on_left_waypoint(self):
        assert STEER_FAR_LEFT.satisfied(np.array([2.0, 0.0]))
        assert not STEER_FAR_LEFT.satisfied(np.array([0.0, 0.0]))

    def test_far_right_triggers_on_right_waypoint(self):
        assert STEER_FAR_RIGHT.satisfied(np.array([-2.0, 0.0]))
        assert not STEER_FAR_RIGHT.satisfied(np.array([0.0, 0.0]))

    def test_straight_band(self):
        assert STEER_STRAIGHT.satisfied(np.array([0.0, 0.0]))
        assert STEER_STRAIGHT.satisfied(np.array([0.25, 0.0]))
        assert not STEER_STRAIGHT.satisfied(np.array([0.5, 0.0]))

    def test_custom_threshold(self):
        risk = steer_far_left(threshold=3.0)
        assert not risk.satisfied(np.array([2.0, 0.0]))
        assert risk.satisfied(np.array([3.5, 0.0]))

    def test_orientation_risk(self):
        risk = orientation_hard_left(0.2)
        assert risk.satisfied(np.array([0.0, 0.3]))
        assert not risk.satisfied(np.array([0.0, 0.1]))

    def test_far_left_and_far_right_disjoint(self):
        rng = np.random.default_rng(0)
        y = rng.uniform(-3, 3, size=(200, 2))
        both = STEER_FAR_LEFT.satisfied(y) & STEER_FAR_RIGHT.satisfied(y)
        assert not both.any()


class TestCanonicalSpecifications:
    def test_structure(self):
        specs = canonical_specifications()
        assert len(specs) == 3
        names = [(phi.name, psi.name) for phi, psi, _ in specs]
        assert ("bends_right", "steer_far_left") in names
        assert ("bends_right", "steer_straight") in names

    def test_expected_provability_flags(self):
        specs = {
            (phi.name, psi.name): expected
            for phi, psi, expected in canonical_specifications()
        }
        assert specs[("bends_right", "steer_far_left")] is True
        assert specs[("bends_right", "steer_straight")] is False
