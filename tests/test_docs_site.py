"""Docs-site integrity checks that need no mkdocs install.

CI runs the real ``mkdocs build --strict``; these tests catch the
failure modes that would break it — nav entries pointing at missing
pages, mkdocstrings directives naming unimportable modules, dead
relative links between pages — so they surface in the tier-1 suite
without the docs toolchain.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
DOCS = REPO / "docs"
MKDOCS_YML = REPO / "mkdocs.yml"


def _nav_pages() -> list[str]:
    return re.findall(r":\s*([\w/.-]+\.md)\s*$", MKDOCS_YML.read_text(), re.M)


class TestMkdocsConfig:
    def test_config_exists_and_is_strict(self):
        text = MKDOCS_YML.read_text()
        assert "strict: true" in text
        assert "name: material" in text
        assert "mkdocstrings" in text

    def test_every_nav_entry_exists(self):
        pages = _nav_pages()
        assert pages, "nav parsed empty — mkdocs.yml layout changed?"
        for page in pages:
            assert (DOCS / page).is_file(), f"nav references missing docs/{page}"

    def test_core_pages_are_in_nav(self):
        pages = set(_nav_pages())
        for required in ("index.md", "architecture.md", "tutorial.md",
                        "benchmarks.md", "benchmarks/report.md", "cli.md",
                        "api/api.md", "api/cegar.md", "api/regions.md",
                        "api/interchange.md"):
            assert required in pages


class TestApiReferencePages:
    @pytest.mark.parametrize("page", sorted((DOCS / "api").glob("*.md")))
    def test_mkdocstrings_targets_import(self, page):
        targets = re.findall(r"^::: ([\w.]+)$", page.read_text(), re.M)
        assert targets, f"{page.name} has no mkdocstrings directive"
        for target in targets:
            importlib.import_module(target)


class TestInternalLinks:
    def test_relative_markdown_links_resolve(self):
        for page in DOCS.rglob("*.md"):
            for link in re.findall(r"\]\(([^)#]+?\.md)(?:#[\w-]+)?\)", page.read_text()):
                if link.startswith(("http://", "https://")):
                    continue
                resolved = (page.parent / link).resolve()
                assert resolved.is_file(), f"{page}: dead link {link}"

    def test_all_link_targets_exist(self):
        """The broader link-checker pass: every non-http target resolves."""
        for page in DOCS.rglob("*.md"):
            for _, target in re.findall(r"(!?)\[[^\]]*\]\(([^)]+)\)", page.read_text()):
                target = target.split("#", 1)[0].strip()
                if not target or target.startswith(("http://", "https://", "mailto:")):
                    continue
                resolved = (page.parent / target).resolve()
                assert resolved.exists(), f"{page}: dead link target {target}"

    def test_mkdocstrings_targets_outside_api_import(self):
        """Pages like benchmarks.md also embed ::: directives."""
        import importlib

        for page in DOCS.glob("*.md"):
            for target in re.findall(r"^::: ([\w.]+)$", page.read_text(), re.M):
                importlib.import_module(target)
