"""Unit tests for the perception stack (network, features, characterizer)."""

import numpy as np
import pytest

from repro.nn import ReLU, Sequential
from repro.perception.characterizer import (
    Characterizer,
    build_characterizer_network,
    train_characterizer,
)
from repro.perception.features import extract_features
from repro.perception.network import (
    build_direct_perception_network,
    build_mlp_perception_network,
    default_cut_layer,
)
from repro.perception.train import train_direct_perception
from repro.scenario.dataset import generate_dataset


class TestNetworkBuilders:
    def test_conv_network_shapes(self):
        model = build_direct_perception_network((1, 32, 32), feature_width=16)
        assert model.input_shape == (1, 32, 32)
        assert model.output_shape == (2,)
        x = np.random.default_rng(0).uniform(0, 1, size=(4, 1, 32, 32))
        assert model.forward(x).shape == (4, 2)

    def test_default_cut_layer_is_last_relu(self):
        model = build_direct_perception_network(feature_width=16)
        cut = default_cut_layer(model)
        assert isinstance(model.layers[cut - 1], ReLU)
        # suffix must be a single Dense: the affordance head
        assert cut == model.num_layers - 1

    def test_cut_layer_suffix_is_piecewise_linear(self):
        model = build_direct_perception_network()
        cut = default_cut_layer(model)
        assert cut in model.piecewise_linear_cut_points()

    def test_feature_width_respected(self):
        model = build_direct_perception_network(feature_width=24)
        cut = default_cut_layer(model)
        assert model.feature_dim(cut) == 24

    def test_feature_width_validation(self):
        with pytest.raises(ValueError, match="feature_width"):
            build_direct_perception_network(feature_width=1)

    def test_mlp_variant(self):
        model = build_mlp_perception_network(input_dim=6, hidden=(10,), feature_width=5)
        assert model.input_shape == (6,)
        assert model.output_shape == (2,)
        cut = default_cut_layer(model)
        assert model.feature_dim(cut) == 5

    def test_no_relu_raises(self):
        from repro.nn import Dense

        model = Sequential([Dense(2)], input_shape=(3,), seed=0)
        with pytest.raises(ValueError, match="no ReLU"):
            default_cut_layer(model)


class TestExtractFeatures:
    def test_matches_prefix_apply(self, rng):
        model = build_mlp_perception_network(input_dim=4, seed=1)
        x = rng.normal(size=(20, 4))
        cut = default_cut_layer(model)
        np.testing.assert_array_equal(
            extract_features(model, x, cut), model.prefix_apply(x, cut)
        )

    def test_batching_invariant(self, rng):
        model = build_mlp_perception_network(input_dim=4, seed=2)
        x = rng.normal(size=(23, 4))
        a = extract_features(model, x, 2, batch_size=5)
        b = extract_features(model, x, 2, batch_size=100)
        np.testing.assert_array_equal(a, b)

    def test_batch_size_validated(self, rng):
        model = build_mlp_perception_network(input_dim=4)
        with pytest.raises(ValueError, match="batch_size"):
            extract_features(model, rng.normal(size=(5, 4)), 2, batch_size=0)


class TestTrainDirectPerception:
    def test_training_reduces_error(self):
        train_data = generate_dataset(150, seed=1)
        val_data = generate_dataset(50, seed=2)
        model = build_direct_perception_network(feature_width=8, seed=3)
        result = train_direct_perception(
            model, train_data, val_data, epochs=10, patience=None, seed=0
        )
        assert result.history.train_loss[-1] < result.history.train_loss[0]
        assert result.val_mae.shape == (2,)
        assert "val_mae" in result.summary()


class TestCharacterizer:
    def _separable_features(self, rng, n=200, d=6):
        """Features where label = [x0 > 0] is linearly separable."""
        features = rng.normal(size=(n, d))
        labels = (features[:, 0] > 0).astype(float)
        return features, labels

    def test_perfect_training_on_separable_data(self, rng):
        features, labels = self._separable_features(rng)
        characterizer, history = train_characterizer(
            "synthetic", 3, features, labels, features, labels,
            epochs=300, seed=0,
        )
        assert characterizer.train_accuracy == 1.0
        assert characterizer.is_perfect_on_training
        assert characterizer.val_accuracy == 1.0
        assert len(history.train_loss) <= 300

    def test_early_exit_on_target_accuracy(self, rng):
        features, labels = self._separable_features(rng)
        _, history = train_characterizer(
            "synthetic", 3, features, labels, features, labels,
            epochs=500, target_train_accuracy=0.9, seed=0,
        )
        assert len(history.train_loss) < 500

    def test_decide_matches_logit_threshold(self, rng):
        features, labels = self._separable_features(rng, n=100)
        characterizer, _ = train_characterizer(
            "synthetic", 3, features, labels, features, labels, epochs=50, seed=1
        )
        logits = characterizer.logits(features)
        np.testing.assert_array_equal(characterizer.decide(features), logits >= 0.0)

    def test_piecewise_linear_lowering_matches(self, rng):
        features, labels = self._separable_features(rng, n=80)
        characterizer, _ = train_characterizer(
            "synthetic", 3, features, labels, features, labels, epochs=30, seed=2
        )
        pl = characterizer.as_piecewise_linear()
        np.testing.assert_allclose(
            pl.apply(features)[:, 0],
            characterizer.logits(features),
            atol=1e-10,
        )

    def test_unlearnable_labels_stay_near_chance(self, rng):
        """Random labels on random features: accuracy ~ coin flip on val."""
        features = rng.normal(size=(300, 6))
        labels = (rng.random(300) > 0.5).astype(float)
        val_features = rng.normal(size=(300, 6))
        val_labels = (rng.random(300) > 0.5).astype(float)
        characterizer, _ = train_characterizer(
            "noise", 3, features, labels, val_features, val_labels,
            epochs=60, seed=3,
        )
        assert characterizer.val_accuracy < 0.65  # information-free property

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValueError, match="mismatch"):
            train_characterizer(
                "x", 1, rng.normal(size=(10, 3)), np.zeros(5),
                rng.normal(size=(5, 3)), np.zeros(5),
            )

    def test_builder_validation(self):
        with pytest.raises(ValueError, match="feature_dim"):
            build_characterizer_network(0)
