"""Integration tests: the full pipeline on the shared trained system."""

import numpy as np

from repro.core.verdict import Verdict
from repro.perception.features import extract_features
from repro.properties.library import steer_far_left
from repro.verification.abstraction.interval import propagate_box
from repro.verification.sets import Box
from repro.verification.statistical import estimate_confusion


class TestPipelineArtifacts:
    def test_system_summary(self, verified_system):
        text = verified_system.summary()
        assert "perception" in text and "characterizer" in text

    def test_perception_learned_something(self, verified_system):
        # waypoint MAE clearly better than predicting the mean
        targets = verified_system.val_data.affordances
        baseline = np.abs(targets - targets.mean(axis=0)).mean(axis=0)
        assert verified_system.training.val_mae[0] < baseline[0]

    def test_characterizers_beat_chance(self, verified_system):
        for name, characterizer in verified_system.characterizers.items():
            assert characterizer.val_accuracy > 0.6, name

    def test_features_consistent(self, verified_system):
        sys_ = verified_system
        recomputed = extract_features(
            sys_.model, sys_.train_data.images, sys_.cut_layer
        )
        np.testing.assert_array_equal(recomputed, sys_.train_features)

    def test_confusions_match_characterizers(self, verified_system):
        sys_ = verified_system
        for name, confusion in sys_.confusions.items():
            characterizer = sys_.characterizers[name]
            decisions = characterizer.decide(sys_.val_features)
            labels = sys_.val_data.property_labels(name).astype(bool)
            expected = estimate_confusion(decisions, labels)
            assert confusion.gamma == expected.gamma


class TestVerificationQueries:
    def test_far_left_threshold_ladder(self, verified_system):
        """Raising the risk threshold flips UNSAFE to CONDITIONALLY_SAFE."""
        sys_ = verified_system
        feature_set = sys_.verifier.feature_set("data")
        hull = propagate_box(sys_.verifier.suffix, Box(*feature_set.bounds()))
        impossible = float(hull.upper[0]) + 1.0

        low = sys_.verifier.verify(steer_far_left(-100.0), property_name="bends_right")
        high = sys_.verifier.verify(
            steer_far_left(impossible), property_name="bends_right"
        )
        assert low.verdict is Verdict.UNSAFE_IN_SET  # everything steers "far left" of -100
        assert high.verdict is Verdict.CONDITIONALLY_SAFE

    def test_witness_is_valid_feature_vector(self, verified_system):
        sys_ = verified_system
        verdict = sys_.verifier.verify(
            steer_far_left(-100.0), property_name="bends_right"
        )
        cx = verdict.counterexample
        assert cx is not None
        feature_set = sys_.verifier.feature_set("data")
        # LP solutions may sit on the boundary up to solver tolerance
        assert feature_set.contains(cx.features[None], tol=1e-6)[0]
        # the characterizer really accepts the witness (boundary-tolerant)
        characterizer = sys_.characterizers["bends_right"]
        assert characterizer.logits(cx.features[None])[0] >= -1e-6

    def test_monitor_accepts_training_stream(self, verified_system):
        sys_ = verified_system
        monitor = sys_.verifier.make_monitor()
        report = monitor.run(sys_.train_data.images[:40])
        assert report.violations == 0

    def test_statistical_guarantee_attached(self, verified_system):
        sys_ = verified_system
        feature_set = sys_.verifier.feature_set("data")
        hull = propagate_box(sys_.verifier.suffix, Box(*feature_set.bounds()))
        verdict = sys_.verifier.verify(
            steer_far_left(float(hull.upper[0]) + 1.0),
            property_name="bends_right",
            confusion=sys_.confusions["bends_right"],
        )
        assert verdict.proved
        guarantee = verdict.statistical_guarantee
        assert guarantee is not None and 0.0 < guarantee <= 1.0
