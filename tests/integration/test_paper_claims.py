"""Integration tests for the paper's Section V claims (the reproduction core).

Each test corresponds to an experiment in EXPERIMENTS.md.  The claims are
about the *workflow behaviour* — which ingredients make which properties
provable — not about the authors' absolute numbers, so thresholds are
derived adaptively from exact output-range analysis of the system under
test.
"""

import numpy as np
import pytest

from repro.core.verdict import Verdict
from repro.properties.library import STEER_STRAIGHT, steer_far_left
from repro.verification.assume_guarantee import (
    box_from_data,
    box_with_diffs_from_data,
    feature_set_from_data,
)
from repro.verification.output_range import output_range


@pytest.fixture(scope="module")
def ranges(verified_system):
    """Exact reachable y0 ranges per set shape, with/without characterizer."""
    sys_ = verified_system
    characterizer = sys_.characterizers["bends_right"].as_piecewise_linear()
    out = {}
    for kind in ("box", "box+diff", "box+pairs"):
        fs = feature_set_from_data(sys_.train_features, kind=kind)
        out[(kind, "no-h")] = output_range(sys_.verifier.suffix, fs, None, 0)
        out[(kind, "h")] = output_range(sys_.verifier.suffix, fs, characterizer, 0)
    return out


class TestClaimProvableProperty:
    """§V: 'possible to conditionally prove … impossibility to suggest
    steering to the far left, when the road image is bending to the right'.

    The provable "far left" frontier is the exact max of the waypoint
    output over S~ ∩ {h accepts}; any threshold above it is conditionally
    proved.  Real bend-right scenes stay far below that frontier."""

    def test_adaptive_far_left_threshold_proved(self, verified_system, ranges):
        sys_ = verified_system
        frontier = ranges[("box+diff", "h")].upper
        verdict = sys_.verifier.verify(
            steer_far_left(frontier + 0.25), property_name="bends_right"
        )
        assert verdict.verdict is Verdict.CONDITIONALLY_SAFE
        assert verdict.monitored

    def test_frontier_far_above_real_behaviour(self, verified_system, ranges):
        """The proof is not vacuous: real bend-right outputs are well below."""
        sys_ = verified_system
        labels = sys_.train_data.property_labels("bends_right") > 0.5
        outputs = sys_.model.suffix_apply(
            sys_.train_features[labels], sys_.cut_layer
        )
        assert outputs[:, 0].max() < ranges[("box+diff", "h")].upper

    def test_characterizer_tightens_frontier(self, ranges):
        """The h conjunct can only shrink (and here strictly shrinks) the
        reachable set — the mechanism that makes phi-conditional proofs
        stronger than unconditional ones."""
        for kind in ("box", "box+diff", "box+pairs"):
            assert ranges[(kind, "h")].upper <= ranges[(kind, "no-h")].upper + 1e-6
        assert (
            ranges[("box+diff", "h")].upper
            < ranges[("box+diff", "no-h")].upper - 0.05
        )

    def test_threshold_not_provable_without_characterizer(
        self, verified_system, ranges
    ):
        sys_ = verified_system
        with_h = ranges[("box+diff", "h")].upper
        without_h = ranges[("box+diff", "no-h")].upper
        if without_h - with_h < 0.1:
            pytest.skip("characterizer gap too small on this seed")
        threshold = 0.5 * (with_h + without_h)
        proved = sys_.verifier.verify(
            steer_far_left(threshold), property_name="bends_right"
        )
        unconstrained = sys_.verifier.verify(steer_far_left(threshold))
        assert proved.verdict is Verdict.CONDITIONALLY_SAFE
        assert unconstrained.verdict is Verdict.UNSAFE_IN_SET


class TestClaimUnprovableProperty:
    """§V: 'still impossible to prove … impossibility to suggest steering
    straight, when the road image is bending to the right'."""

    def test_steer_straight_not_proved(self, verified_system):
        verdict = verified_system.verifier.verify(
            STEER_STRAIGHT, property_name="bends_right"
        )
        assert verdict.verdict is Verdict.UNSAFE_IN_SET
        assert verdict.counterexample is not None
        # the witness output really lies in the "straight" band
        assert abs(verdict.counterexample.predicted_output[0]) <= 0.3 + 1e-6


class TestClaimBoxTooCoarse:
    """§V: 'it is commonly not sufficient to only record the minimum and
    maximum value for each neuron' — relational records are tighter."""

    def test_diff_set_cuts_volume(self, verified_system, rng):
        sys_ = verified_system
        box = box_from_data(sys_.train_features)
        diff = box_with_diffs_from_data(sys_.train_features)
        probe = box.sample(rng, 4000)
        assert diff.contains(probe).sum() < box.contains(probe).sum()

    def test_frontier_ladder_monotone(self, ranges):
        """box ⊇ box+diff ⊇ box+pairs: reachable maxima shrink in order."""
        assert (
            ranges[("box+diff", "h")].upper
            <= ranges[("box", "h")].upper + 1e-6
        )
        assert (
            ranges[("box+pairs", "h")].upper
            <= ranges[("box+diff", "h")].upper + 1e-6
        )
        # and the full octagon strictly improves over the plain box
        assert ranges[("box+pairs", "h")].upper < ranges[("box", "h")].upper - 0.05

    def test_diff_set_proves_at_least_as_much(self, verified_system):
        """Any risk provable under box is provable under box+diff."""
        sys_ = verified_system
        sys_.verifier.add_feature_set_from_features(
            sys_.train_features, kind="box", name="box-only"
        )
        sys_.verifier.add_feature_set_from_features(
            sys_.train_features, kind="box+diff", name="box-diff"
        )
        for threshold in np.linspace(0.5, 6.0, 6):
            risk = steer_far_left(float(threshold))
            box_verdict = sys_.verifier.verify(
                risk, property_name="bends_right", set_name="box-only"
            )
            diff_verdict = sys_.verifier.verify(
                risk, property_name="bends_right", set_name="box-diff"
            )
            if box_verdict.proved:
                assert diff_verdict.proved


class TestClaimInformationBottleneck:
    """§V: properties like 'traffic participants in adjacent lanes' are
    nearly un-characterizable from close-to-output features (the trained
    classifier 'almost acts like fair coin flipping')."""

    @staticmethod
    def _balanced_accuracy(decisions, labels):
        labels = labels.astype(bool)
        if labels.all() or not labels.any():
            return 0.5
        recall_pos = decisions[labels].mean()
        recall_neg = (~decisions[~labels]).mean()
        return 0.5 * (recall_pos + recall_neg)

    def test_traffic_characterizer_near_coin_flip(self, verified_system):
        from repro.perception.characterizer import train_characterizer
        from repro.scenario.dataset import balanced_property_dataset
        from repro.perception.features import extract_features

        sys_ = verified_system
        char_data = balanced_property_dataset(
            300, "adjacent_traffic", sys_.config.scene, seed=777
        )
        char_features = extract_features(sys_.model, char_data.images, sys_.cut_layer)
        char_labels = char_data.property_labels("adjacent_traffic")
        val_labels = sys_.val_data.property_labels("adjacent_traffic")
        traffic_char, _ = train_characterizer(
            "adjacent_traffic",
            sys_.cut_layer,
            char_features,
            char_labels,
            sys_.val_features,
            val_labels,
            hidden=(16,),
            epochs=200,
            seed=0,
        )
        traffic_ba = self._balanced_accuracy(
            traffic_char.decide(sys_.val_features), val_labels
        )
        bend_ba = self._balanced_accuracy(
            sys_.characterizers["bends_right"].decide(sys_.val_features),
            sys_.val_data.property_labels("bends_right"),
        )
        # bend direction is visible in the affordance-relevant features;
        # adjacent traffic is bottlenecked away
        assert bend_ba > 0.65
        assert traffic_ba < bend_ba - 0.1


class TestClaimOddCounterexamples:
    """Footnote 1: verifying from the raw input domain produces
    counterexamples 'so distant from what can be observed in practice'."""

    def test_static_set_much_wider_than_data_set(self, verified_system):
        sys_ = verified_system
        static = sys_.verifier.add_static_feature_set(0.0, 1.0, name="static-e7")
        data = sys_.verifier.feature_set("data")
        swidth = static.bounds()[1] - static.bounds()[0]
        dwidth = data.bounds()[1] - data.bounds()[0]
        assert np.median(swidth / np.maximum(dwidth, 1e-9)) > 3.0

    def test_provable_under_data_not_under_static(self, verified_system, ranges):
        sys_ = verified_system
        static = sys_.verifier.add_static_feature_set(0.0, 1.0, name="static-e7b")
        threshold = ranges[("box+diff", "h")].upper + 0.25
        static_range = output_range(
            sys_.verifier.suffix,
            static,
            sys_.characterizers["bends_right"].as_piecewise_linear(),
            0,
        )
        assert static_range.upper > threshold  # static analysis cannot prove it
        data_verdict = sys_.verifier.verify(
            steer_far_left(threshold), property_name="bends_right", set_name="data"
        )
        static_verdict = sys_.verifier.verify(
            steer_far_left(threshold),
            property_name="bends_right",
            set_name="static-e7b",
        )
        assert data_verdict.proved
        assert static_verdict.verdict is Verdict.UNSAFE_IN_SET
        # the static counterexample is out-of-ODD: its features violate
        # the data envelope the monitor would enforce
        cx = static_verdict.counterexample
        assert not sys_.verifier.feature_set("data").contains(
            cx.features[None], tol=1e-6
        )[0]
