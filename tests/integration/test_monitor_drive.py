"""Integration: runtime monitor on temporally-correlated drive streams."""

import dataclasses

import numpy as np

from repro.monitor.coverage import ActivationPatternSet, coverage_report
from repro.perception.features import extract_features
from repro.scenario.drive import DriveConfig, simulate_drive
from repro.scenario.weather import Weather


class TestMonitorOnDriveStreams:
    def test_in_odd_drive_mostly_covered(self, verified_system):
        sys_ = verified_system
        drive = simulate_drive(
            DriveConfig(num_frames=60), sys_.config.scene, seed=42
        )
        monitor = sys_.verifier.make_monitor(keep_events=False)
        report = monitor.run(drive.images)
        # temporally-correlated in-ODD frames: low violation rate
        assert report.violation_rate < 0.3

    def test_scripted_odd_exit_detected(self, verified_system):
        sys_ = verified_system
        config = DriveConfig(
            num_frames=60,
            odd_exit_frame=30,
            odd_exit_weather=Weather(brightness=0.3, noise_sigma=0.05),
        )
        drive = simulate_drive(config, sys_.config.scene, seed=43)
        monitor = sys_.verifier.make_monitor()
        monitor.run(drive.images)
        events = monitor.report.events
        before = np.mean([e.violation for e in events[:30]])
        after = np.mean([e.violation for e in events[30:]])
        assert after > before + 0.3  # the exit is clearly visible

    def test_violations_cluster_after_exit(self, verified_system):
        """Temporal correlation: the first violation appears near the exit."""
        sys_ = verified_system
        config = DriveConfig(
            num_frames=40,
            odd_exit_frame=20,
            odd_exit_weather=Weather(brightness=0.3),
        )
        drive = simulate_drive(config, sys_.config.scene, seed=44)
        monitor = sys_.verifier.make_monitor()
        monitor.run(drive.images)
        violating = [e.frame_index for e in monitor.report.events if e.violation]
        if violating:
            assert min(v for v in violating if v >= 20) <= 25


class TestCoverageOnDriveStreams:
    def test_single_drive_covers_less_than_full_odd(self, verified_system):
        """One drive's feature coverage is a strict subset of the ODD's —
        the 'incomplete data collection' signal of footnote 2."""
        sys_ = verified_system
        drive = simulate_drive(
            DriveConfig(num_frames=80), sys_.config.scene, seed=45
        )
        drive_features = extract_features(sys_.model, drive.images, sys_.cut_layer)
        drive_cov = coverage_report(drive_features)
        odd_cov = coverage_report(sys_.train_features)
        assert drive_cov.k_section < odd_cov.k_section

    def test_pattern_novelty_detects_unseen_data(self, verified_system):
        """Patterns from half the data flag novelty on the other half —
        while being silent on their own training half by construction."""
        sys_ = verified_system
        half = sys_.train_features.shape[0] // 2
        first, second = sys_.train_features[:half], sys_.train_features[half:]
        patterns = ActivationPatternSet.from_features(first)
        assert patterns.novelty_rate(first) == 0.0
        assert patterns.novelty_rate(second) >= 0.0
        assert patterns.novelty_rate(second) >= patterns.novelty_rate(first)

    def test_interval_monitor_complements_pattern_monitor(self, verified_system):
        """The night exit saturates neurons into *common* dark patterns, so
        the discrete pattern monitor can stay silent — while the interval
        envelope monitor fires.  The two are complementary detectors."""
        sys_ = verified_system
        night = simulate_drive(
            DriveConfig(
                num_frames=50,
                odd_exit_frame=0,
                odd_exit_weather=Weather(brightness=0.3),
            ),
            sys_.config.scene,
            seed=46,
        )
        monitor = sys_.verifier.make_monitor(keep_events=False)
        report = monitor.run(night.images)
        assert report.violation_rate > 0.3  # the interval monitor sees it
