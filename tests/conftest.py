"""Shared fixtures.

Expensive artifacts (rendered datasets, the trained end-to-end system)
are session-scoped; everything else is built per test from fixed seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExperimentConfig, build_verified_system
from repro.nn import (
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.scenario.dataset import SceneConfig, generate_dataset


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_mlp() -> Sequential:
    """4 -> 8 -> 8 -> 2 ReLU MLP (pure piecewise-linear)."""
    return Sequential(
        [Dense(8), ReLU(), Dense(8), ReLU(), Dense(2)],
        input_shape=(4,),
        seed=7,
    )


@pytest.fixture
def tiny_convnet() -> Sequential:
    """Small conv net over 1x12x12 images with a BN close-to-output stack."""
    return Sequential(
        [
            Conv2D(4, 3, stride=2, padding=1),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(10),
            BatchNorm(),
            ReLU(),
            Dense(2),
        ],
        input_shape=(1, 12, 12),
        seed=11,
    )


@pytest.fixture(scope="session")
def small_dataset():
    """60 rendered scenes, shared across tests (read-only)."""
    return generate_dataset(60, SceneConfig(), seed=99)


@pytest.fixture(scope="session")
def verified_system():
    """A small but fully trained end-to-end system (read-only)."""
    config = ExperimentConfig(
        train_scenes=500,
        val_scenes=150,
        epochs=30,
        feature_width=12,
        characterizer_epochs=150,
        properties=("bends_right", "bends_left"),
        seed=0,
    )
    return build_verified_system(config)
