"""Differential and property tests for the batched abstraction backend.

The batched interval/zonotope transformers must be *bound-identical*
(within float reassociation, 1e-9) to looping the scalar transformers
over the batch, and must keep the soundness invariant: any concrete
point inside batch member ``i``'s input box maps into member ``i``'s
propagated output enclosure.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.nn.graph import AffineOp, LeakyReLUOp, MaxGroupOp, ReLUOp, PiecewiseLinearNetwork
from repro.verification.abstraction.domain import get_domain
from repro.verification.abstraction.interval import propagate_box, transform
from repro.verification.abstraction.propagate import (
    IntervalBoundError,
    layer_interval,
    layer_interval_batch,
    propagate_input_box,
    region_boxes,
)
from repro.verification.abstraction.zonotope import ZonotopeBatch, propagate_zonotope
from repro.verification.sets import Box, BoxBatch

ATOL = 1e-9

INTERVAL = get_domain("interval")
ZONOTOPE = get_domain("zonotope")


def _interval_batch(net, batch):
    """Batched interval image of a whole network via the registry."""
    return INTERVAL.propagate(net, INTERVAL.lift(batch))


def _zonotope_batch(net, batch):
    """Batched zonotope image of a whole network via the registry."""
    return ZONOTOPE.propagate(net, ZONOTOPE.lift(batch))


def _region_box(model, lower, upper, to_layer):
    """Canonical batch-of-one replacement for propagate_input_box."""
    return region_boxes(
        model, BoxBatch(lower[None], upper[None]), to_layer
    ).box(0)


def _random_box_batch(rng, n, dim, degenerate_every=3):
    """(n, dim) batch; every ``degenerate_every``-th member is zero-width."""
    lower = rng.uniform(-1.0, 1.0, size=(n, dim))
    width = rng.uniform(0.0, 1.5, size=(n, dim))
    if degenerate_every:
        width[::degenerate_every] = 0.0
    return BoxBatch(lower, lower + width)


def _random_pl_network(rng, in_dim):
    """Random Affine/ReLU/LeakyReLU/MaxGroup chain over flat vectors."""
    ops = []
    dim = in_dim
    for _ in range(int(rng.integers(2, 5))):
        kind = rng.choice(["affine", "relu", "leaky", "max"])
        if kind == "affine":
            out = int(rng.integers(2, 7))
            ops.append(
                AffineOp(rng.normal(size=(out, dim)), rng.normal(size=out))
            )
            dim = out
        elif kind == "relu":
            ops.append(ReLUOp(dim))
        elif kind == "leaky":
            ops.append(LeakyReLUOp(dim, alpha=float(rng.uniform(0.01, 0.3))))
        else:
            groups = [
                rng.choice(dim, size=int(rng.integers(1, min(dim, 3) + 1)), replace=False)
                for _ in range(int(rng.integers(2, 5)))
            ]
            ops.append(MaxGroupOp(dim, groups))
            dim = len(groups)
    ops.append(AffineOp(rng.normal(size=(3, dim)), rng.normal(size=3)))
    return PiecewiseLinearNetwork(ops, in_dim)


@pytest.fixture
def batched_convnet():
    """Conv/BN/pool/LeakyReLU stack with warmed BatchNorm statistics."""
    model = Sequential(
        [
            Conv2D(4, 3, stride=2, padding=1),
            BatchNorm(),
            LeakyReLU(0.1),
            MaxPool2D(2),
            Flatten(),
            Dense(10),
            BatchNorm(),
            ReLU(),
            Dense(3),
        ],
        input_shape=(1, 12, 12),
        seed=5,
    )
    rng = np.random.default_rng(7)
    model.forward(rng.uniform(0, 1, size=(16, 1, 12, 12)), training=True)
    return model


class TestOpLevelDifferential:
    """Batched op transformers == looped scalar transformers."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_interval_random_networks(self, seed):
        rng = np.random.default_rng(seed)
        net = _random_pl_network(rng, in_dim=5)
        batch = _random_box_batch(rng, n=9, dim=5)
        out = _interval_batch(net, batch)
        for i in range(len(batch)):
            ref = propagate_box(net, batch.box(i))
            np.testing.assert_allclose(out.box(i).lower, ref.lower, atol=ATOL)
            np.testing.assert_allclose(out.box(i).upper, ref.upper, atol=ATOL)

    @pytest.mark.parametrize("seed", [10, 11, 12, 13, 14])
    def test_zonotope_random_networks(self, seed):
        rng = np.random.default_rng(seed)
        net = _random_pl_network(rng, in_dim=4)
        batch = _random_box_batch(rng, n=7, dim=4)
        out = _zonotope_batch(net, batch)
        for i in range(len(batch)):
            ref = propagate_zonotope(net, batch.box(i)).to_box()
            got = out.zonotope(i).to_box()
            np.testing.assert_allclose(got.lower, ref.lower, atol=ATOL)
            np.testing.assert_allclose(got.upper, ref.upper, atol=ATOL)

    def test_single_op_transformers_match(self):
        rng = np.random.default_rng(42)
        batch = _random_box_batch(rng, n=6, dim=4)
        ops = [
            AffineOp(rng.normal(size=(3, 4)), rng.normal(size=3)),
            ReLUOp(4),
            LeakyReLUOp(4, alpha=0.05),
            MaxGroupOp(4, [np.array([0, 1]), np.array([2, 3]), np.array([0, 3])]),
        ]
        for op in ops:
            out = INTERVAL.transform(op, batch)
            for i in range(len(batch)):
                ref = transform(op, batch.box(i))
                np.testing.assert_allclose(out.box(i).lower, ref.lower, atol=ATOL)
                np.testing.assert_allclose(out.box(i).upper, ref.upper, atol=ATOL)

    def test_degenerate_point_batch_is_exact(self):
        """Zero-width boxes propagate to (near-)zero-width outputs."""
        rng = np.random.default_rng(3)
        net = _random_pl_network(rng, in_dim=5)
        point = rng.normal(size=(4, 5))
        batch = BoxBatch(point, point.copy())
        out = _interval_batch(net, batch)
        values = net.apply(point)
        np.testing.assert_allclose(out.lower, values, atol=1e-9)
        np.testing.assert_allclose(out.upper, values, atol=1e-9)


class TestLayerLevelDifferential:
    """Batched layer propagation == looped scalar layer propagation."""

    def test_full_convnet_batch_matches_scalar(self, batched_convnet):
        model = batched_convnet
        rng = np.random.default_rng(0)
        n = 6
        lower = rng.uniform(0.0, 0.6, size=(n, 1, 12, 12))
        width = rng.uniform(0.0, 0.3, size=(n, 1, 12, 12))
        width[2] = 0.0  # degenerate member
        batch = BoxBatch(lower, lower + width)
        out = region_boxes(model, batch, model.num_layers)
        for i in range(n):
            ref = _region_box(
                model, batch.lower[i], batch.upper[i], model.num_layers
            )
            np.testing.assert_allclose(out.box(i).lower, ref.lower, atol=ATOL)
            np.testing.assert_allclose(out.box(i).upper, ref.upper, atol=ATOL)

    @pytest.mark.parametrize("to_layer", [1, 2, 3, 4, 5, 6, 7])
    def test_every_cut_layer_matches(self, batched_convnet, to_layer):
        """Covers Conv2D, BatchNorm, LeakyReLU, MaxPool2D, Flatten, Dense."""
        model = batched_convnet
        rng = np.random.default_rng(to_layer)
        lower = rng.uniform(0.0, 0.5, size=(4, 1, 12, 12))
        batch = BoxBatch(lower, lower + rng.uniform(0.0, 0.4, size=lower.shape))
        out = region_boxes(model, batch, to_layer)
        for i in range(4):
            ref = _region_box(model, batch.lower[i], batch.upper[i], to_layer)
            np.testing.assert_allclose(out.box(i).lower, ref.lower, atol=ATOL)
            np.testing.assert_allclose(out.box(i).upper, ref.upper, atol=ATOL)

    def test_single_layer_batch_matches_scalar(self, batched_convnet):
        rng = np.random.default_rng(9)
        layer = batched_convnet.layers[0]
        lower = rng.uniform(0.0, 0.5, size=(5, 1, 12, 12))
        upper = lower + rng.uniform(0.0, 0.5, size=lower.shape)
        batched = BoxBatch(lower.reshape(5, -1), upper.reshape(5, -1))
        for op in layer.as_abstract_ops():
            batched = INTERVAL.transform(op, batched)
        for i in range(5):
            single = BoxBatch(lower[i].reshape(1, -1), upper[i].reshape(1, -1))
            for op in layer.as_abstract_ops():
                single = INTERVAL.transform(op, single)
            np.testing.assert_allclose(batched.lower[i], single.lower[0], atol=ATOL)
            np.testing.assert_allclose(batched.upper[i], single.upper[0], atol=ATOL)


class TestSoundnessProperties:
    """Hypothesis: concrete points inside a member's box stay enclosed."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_interval_batch_soundness(self, seed):
        rng = np.random.default_rng(seed)
        net = _random_pl_network(rng, in_dim=4)
        batch = _random_box_batch(rng, n=5, dim=4)
        out = _interval_batch(net, batch)
        for i in range(len(batch)):
            box = batch.box(i)
            points = box.sample(rng, 8)
            values = net.apply(points)
            assert np.all(values >= out.box(i).lower[None, :] - 1e-7)
            assert np.all(values <= out.box(i).upper[None, :] + 1e-7)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_zonotope_batch_soundness(self, seed):
        rng = np.random.default_rng(seed)
        net = _random_pl_network(rng, in_dim=4)
        batch = _random_box_batch(rng, n=4, dim=4)
        out = _zonotope_batch(net, batch)
        hull = out.to_box_batch()
        for i in range(len(batch)):
            points = batch.box(i).sample(rng, 8)
            values = net.apply(points)
            assert np.all(values >= hull.lower[i][None, :] - 1e-7)
            assert np.all(values <= hull.upper[i][None, :] + 1e-7)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_layer_path_batch_soundness(self, seed):
        """Whole-model batched propagation encloses real forward passes."""
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Conv2D(2, 3), ReLU(), Flatten(), Dense(4), ReLU(), Dense(2)],
            input_shape=(1, 6, 6),
            seed=seed % 17,
        )
        lower = rng.uniform(0.0, 0.7, size=(3, 1, 6, 6))
        batch = BoxBatch(lower, lower + rng.uniform(0.0, 0.3, size=lower.shape))
        out = region_boxes(model, batch, model.num_layers)
        for i in range(3):
            span = batch.upper[i] - batch.lower[i]
            points = batch.lower[i][None] + rng.uniform(
                0.0, 1.0, size=(6, 1, 6, 6)
            ) * span[None]
            values = model.forward(points, training=False)
            assert np.all(values >= out.box(i).lower[None, :] - 1e-7)
            assert np.all(values <= out.box(i).upper[None, :] + 1e-7)

    def test_zonotope_batch_exact_on_affine_chain(self):
        """On a pure affine chain the zonotope hull is exact (point images)."""
        rng = np.random.default_rng(21)
        ops = [
            AffineOp(rng.normal(size=(4, 5)), rng.normal(size=4)),
            AffineOp(rng.normal(size=(3, 4)), rng.normal(size=3)),
        ]
        net = PiecewiseLinearNetwork(ops, 5)
        point = rng.normal(size=(6, 5))
        batch = BoxBatch(point, point.copy())
        zb = _zonotope_batch(net, batch).to_box_batch()
        values = net.apply(point)
        np.testing.assert_allclose(zb.lower, values, atol=1e-9)
        np.testing.assert_allclose(zb.upper, values, atol=1e-9)


class TestIntervalBoundErrorContext:
    """Inverted bounds must name the failing layer and region.

    The first three tests exercise the *deprecated* shims' context
    plumbing on purpose (the shims stay importable until removal), so
    they opt in to the DeprecationWarning explicitly.
    """

    def test_scalar_layer_context(self, batched_convnet):
        layer = batched_convnet.layers[0]
        bad = np.ones((1, 12, 12))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(IntervalBoundError, match="layer 3.*region 5") as exc:
                layer_interval(layer, bad, -bad, layer_index=3, region_index=5)
        assert exc.value.layer_index == 3
        assert exc.value.region_index == 5

    def test_batch_reports_offending_region(self, batched_convnet):
        layer = batched_convnet.layers[0]
        lower = np.zeros((4, 1, 12, 12))
        upper = np.ones((4, 1, 12, 12))
        upper[2] = -1.0  # only region 2 is inverted
        with pytest.warns(DeprecationWarning):
            with pytest.raises(IntervalBoundError, match="region 2") as exc:
                layer_interval_batch(layer, lower, upper, layer_index=0)
        assert exc.value.layer_index == 0
        assert exc.value.region_index == 2

    def test_propagate_names_entry_layer(self, batched_convnet):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(IntervalBoundError) as exc:
                propagate_input_box(batched_convnet, 1.0, 0.0, 2)
        assert exc.value.layer_index is None  # rejected before any layer ran
        assert "lower > upper" in str(exc.value)

    def test_batch_constructor_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="region 1"):
            BoxBatch(np.zeros((3, 2)), np.array([[1.0, 1.0], [-1.0, 1.0], [1.0, 1.0]]))

    def test_error_without_context_is_plain(self):
        err = IntervalBoundError("interval has lower > upper bound")
        assert err.layer_index is None and err.region_index is None
        assert "(at" not in str(err)


class TestZonotopeBatchContainer:
    def test_from_box_batch_roundtrip(self):
        rng = np.random.default_rng(2)
        batch = _random_box_batch(rng, n=5, dim=3)
        zb = ZonotopeBatch.from_box_batch(batch)
        hull = zb.to_box_batch()
        np.testing.assert_allclose(hull.lower, batch.lower, atol=ATOL)
        np.testing.assert_allclose(hull.upper, batch.upper, atol=ATOL)
        for i in range(5):
            member = zb.zonotope(i)
            ref = propagate_zonotope(
                PiecewiseLinearNetwork([ReLUOp(3)], 3), batch.box(i)
            )
            assert member.dim == ref.dim

    def test_linear_value_bounds_match_scalar(self):
        rng = np.random.default_rng(8)
        net = _random_pl_network(rng, in_dim=4)
        batch = _random_box_batch(rng, n=5, dim=4)
        zb = _zonotope_batch(net, batch)
        direction = rng.normal(size=net.out_dim)
        lo, hi = zb.linear_value_bounds(direction)
        for i in range(5):
            slo, shi = propagate_zonotope(net, batch.box(i)).linear_value_bounds(
                direction
            )
            assert lo[i] == pytest.approx(slo, abs=ATOL)
            assert hi[i] == pytest.approx(shi, abs=ATOL)

    def test_box_batch_accessors(self):
        batch = BoxBatch(np.zeros((2, 3)), np.ones((2, 3)))
        assert len(batch) == 2 and batch.dim == 3
        assert isinstance(batch.box(0), Box)
        rebuilt = BoxBatch.from_boxes(batch.boxes())
        np.testing.assert_array_equal(rebuilt.lower, batch.lower)
