"""Unit tests for layer-wise incremental abstraction refinement."""

import numpy as np
import pytest

from repro.perception.features import extract_features
from repro.perception.network import build_mlp_perception_network
from repro.properties.risk import RiskCondition, output_geq
from repro.verification.abstraction.interval import propagate_box
from repro.verification.assume_guarantee import feature_set_from_data
from repro.verification.refinement import (
    encode_chained_problem,
    verify_with_refinement,
    witness_realizable,
)
from repro.verification.sets import Box
from repro.verification.solver import BranchAndBoundSolver


@pytest.fixture
def system(rng):
    model = build_mlp_perception_network(
        input_dim=6, hidden=(12, 12), feature_width=6, seed=8
    )
    images = rng.uniform(0, 1, size=(250, 6))
    return model, images


def _envelopes(model, images, cut_layers, kind="box+diff"):
    out = {}
    for layer in cut_layers:
        feats = extract_features(model, images, layer)
        out[layer] = feature_set_from_data(
            feats, kind=kind if feats.shape[1] >= 2 else "box"
        )
    return out


def _chained_max_y0(model, images, cut_layers):
    """Exact max of output 0 under the chained envelopes."""
    envelopes = _envelopes(model, images, cut_layers)
    risk = RiskCondition("any", (output_geq(2, 0, -1e9),))
    problem = encode_chained_problem(model, cut_layers, envelopes, risk)
    problem.model.set_objective({problem.output_vars[0]: -1.0})
    result = BranchAndBoundSolver().minimize(problem.model)
    assert result.is_sat
    return -result.objective


def _unreachable_risk(model, images):
    cut = model.num_layers - 1
    features = model.prefix_apply(images, cut)
    fs = feature_set_from_data(features, kind="box")
    hull = propagate_box(model.suffix_network(cut), Box(*fs.bounds()))
    return RiskCondition("never", (output_geq(2, 0, float(hull.upper[0]) + 1.0),))


def _reachable_risk(model, images):
    outputs = model.forward(images)
    return RiskCondition(
        "often", (output_geq(2, 0, float(np.median(outputs[:, 0]))),)
    )


class TestChainedEncoding:
    def test_chaining_monotonically_tightens(self, system):
        """Each added envelope can only shrink the reachable outputs."""
        model, images = system
        cuts = [l for l in model.piecewise_linear_cut_points() if 0 < l < model.num_layers]
        latest = cuts[-1]
        maxima = [
            _chained_max_y0(model, images, cuts[-k:]) for k in range(1, len(cuts) + 1)
        ]
        for coarse, fine in zip(maxima, maxima[1:]):
            assert fine <= coarse + 1e-6

    def test_chained_witness_satisfies_all_envelopes(self, system):
        model, images = system
        cuts = [l for l in model.piecewise_linear_cut_points() if 0 < l < model.num_layers]
        active = cuts[-2:]
        envelopes = _envelopes(model, images, active)
        risk = _reachable_risk(model, images)
        problem = encode_chained_problem(model, active, envelopes, risk)
        result = BranchAndBoundSolver().solve(problem.model)
        assert result.is_sat
        late_features = problem.decode_input(result.witness)
        assert envelopes[active[-1]].contains(late_features[None], tol=1e-6)[0]

    def test_validation(self, system):
        model, images = system
        with pytest.raises(ValueError, match="at least one"):
            encode_chained_problem(model, [], {}, _reachable_risk(model, images))
        with pytest.raises(KeyError, match="envelope"):
            encode_chained_problem(
                model, [2], {}, _reachable_risk(model, images)
            )


class TestVerifyWithRefinement:
    def test_proved_at_baseline_stops_immediately(self, system):
        model, images = system
        result = verify_with_refinement(model, images, _unreachable_risk(model, images))
        assert result.proved
        assert len(result.steps) == 1
        assert result.counterexample is None
        assert "PROVED" in result.summary()

    def test_reachable_risk_gives_counterexample(self, system):
        model, images = system
        result = verify_with_refinement(model, images, _reachable_risk(model, images))
        assert not result.proved
        assert result.counterexample is not None
        assert result.steps[-1].status.value == "sat"

    def test_refinement_proves_what_baseline_cannot(self, system):
        """Thresholds between chained and baseline frontiers need refinement."""
        model, images = system
        cuts = [l for l in model.piecewise_linear_cut_points() if 0 < l < model.num_layers]
        baseline = _chained_max_y0(model, images, cuts[-1:])
        refined = _chained_max_y0(model, images, cuts[-2:])
        if not refined < baseline - 0.05:
            pytest.skip("no refinement gap on this seed")
        threshold = 0.5 * (refined + baseline)
        risk = RiskCondition("between", (output_geq(2, 0, threshold),))
        result = verify_with_refinement(
            model, images, risk, cut_layers=cuts[-2:]
        )
        assert result.proved
        assert result.refinements_used >= 1
        assert result.steps[0].witness_realizable is False

    def test_validation(self, system):
        model, images = system
        with pytest.raises(ValueError, match="no piecewise-linear"):
            verify_with_refinement(
                model, images, _reachable_risk(model, images), cut_layers=[]
            )


class TestWitnessRealizable:
    def test_true_witness_is_realizable(self, system):
        model, images = system
        cuts = model.piecewise_linear_cut_points()
        at_layer, from_layer = cuts[-2], cuts[-4]
        from_set = feature_set_from_data(
            model.prefix_apply(images, from_layer), kind="box+diff"
        )
        witness = model.prefix_apply(images[:1], at_layer)[0]
        assert witness_realizable(model, witness, at_layer, from_layer, from_set)

    def test_fabricated_witness_is_spurious(self, system):
        model, images = system
        cuts = model.piecewise_linear_cut_points()
        at_layer, from_layer = cuts[-2], cuts[-4]
        from_set = feature_set_from_data(
            model.prefix_apply(images, from_layer), kind="box+diff"
        )
        witness = np.full(model.feature_dim(at_layer), 1e4)
        assert not witness_realizable(model, witness, at_layer, from_layer, from_set)

    def test_layer_order_validated(self, system):
        model, images = system
        from_set = feature_set_from_data(model.prefix_apply(images, 2), kind="box")
        with pytest.raises(ValueError, match="from_layer"):
            witness_realizable(
                model, np.zeros(2), at_layer=2, from_layer=2, from_set=from_set
            )
