"""Unit and property tests for feature-set abstractions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.verification.sets import Box, BoxWithDiffs, Polyhedron


class TestBox:
    def test_contains(self):
        box = Box(np.array([0.0, -1.0]), np.array([1.0, 1.0]))
        points = np.array([[0.5, 0.0], [1.5, 0.0], [0.5, -2.0]])
        assert box.contains(points).tolist() == [True, False, False]

    def test_contains_single_point(self):
        box = Box(np.zeros(2), np.ones(2))
        assert box.contains_point(np.array([0.5, 0.5]))

    def test_boundary_with_tolerance(self):
        box = Box(np.zeros(1), np.ones(1))
        assert box.contains(np.array([[1.0 + 1e-12]]))[0]
        assert not box.contains(np.array([[1.1]]))[0]

    def test_widened(self):
        box = Box(np.zeros(2), np.ones(2)).widened(0.5)
        assert box.contains_point(np.array([-0.4, 1.4]))
        with pytest.raises(ValueError, match="margin"):
            box.widened(-1.0)

    def test_center_radius(self):
        box = Box(np.array([0.0]), np.array([4.0]))
        assert box.center()[0] == 2.0 and box.radius()[0] == 2.0

    def test_intersect(self):
        a = Box(np.array([0.0]), np.array([2.0]))
        b = Box(np.array([1.0]), np.array([3.0]))
        c = a.intersect(b)
        assert c.lower[0] == 1.0 and c.upper[0] == 2.0
        with pytest.raises(ValueError, match="lower > upper"):
            a.intersect(Box(np.array([5.0]), np.array([6.0])))

    def test_sample_inside(self):
        box = Box(np.array([-1.0, 2.0]), np.array([1.0, 3.0]))
        samples = box.sample(np.random.default_rng(0), 100)
        assert box.contains(samples).all()

    def test_volume_log(self):
        box = Box(np.zeros(2), np.array([2.0, 3.0]))
        assert box.volume_log() == pytest.approx(np.log(6.0))
        degenerate = Box(np.zeros(1), np.zeros(1))
        assert degenerate.volume_log() == -np.inf

    def test_validation(self):
        with pytest.raises(ValueError, match="lower > upper"):
            Box(np.array([1.0]), np.array([0.0]))
        with pytest.raises(ValueError, match="1-D"):
            Box(np.zeros((2, 2)), np.ones((2, 2)))

    def test_dim_mismatch_in_contains(self):
        box = Box(np.zeros(2), np.ones(2))
        with pytest.raises(ValueError, match="dimension"):
            box.contains(np.zeros((3, 5)))


class TestBoxWithDiffs:
    def _simple(self):
        box = Box(np.array([0.0, 0.0, 0.0]), np.array([2.0, 2.0, 2.0]))
        return BoxWithDiffs(box, np.array([-0.5, -0.5]), np.array([0.5, 0.5]))

    def test_diff_constraint_excludes(self):
        s = self._simple()
        assert s.contains_point(np.array([1.0, 1.2, 1.0]))
        # inside the box but adjacent difference too large
        assert not s.contains_point(np.array([0.0, 2.0, 0.0]))

    def test_linear_constraints_match_contains(self):
        s = self._simple()
        a, b = s.linear_constraints()
        rng = np.random.default_rng(1)
        points = rng.uniform(-0.5, 2.5, size=(300, 3))
        from_constraints = (
            np.all(points @ a.T <= b + 1e-9, axis=1)
            & s.box.contains(points)
        )
        np.testing.assert_array_equal(from_constraints, s.contains(points))

    def test_widened(self):
        s = self._simple().widened(1.0)
        assert s.contains_point(np.array([0.0, 1.5, 0.0]))

    def test_validation(self):
        box = Box(np.zeros(3), np.ones(3))
        with pytest.raises(ValueError, match="shape"):
            BoxWithDiffs(box, np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError, match="diff_lower"):
            BoxWithDiffs(box, np.array([1.0, 1.0]), np.array([0.0, 0.0]))

    @given(
        arrays(np.float64, (20, 4), elements=st.floats(-10, 10)),
    )
    @settings(max_examples=30, deadline=None)
    def test_data_always_inside_own_hull(self, data):
        """Any dataset is contained in the set built from it."""
        from repro.verification.assume_guarantee import box_with_diffs_from_data

        s = box_with_diffs_from_data(data)
        assert s.contains(data).all()


class TestPolyhedron:
    def test_halfspace_cut(self):
        box = Box(np.zeros(2), np.ones(2))
        # x0 + x1 <= 1
        poly = Polyhedron(box, np.array([[1.0, 1.0]]), np.array([1.0]))
        assert poly.contains_point(np.array([0.3, 0.3]))
        assert not poly.contains_point(np.array([0.9, 0.9]))

    def test_no_rows_equals_box(self):
        box = Box(np.zeros(2), np.ones(2))
        poly = Polyhedron(box, np.zeros((0, 2)), np.zeros(0))
        points = np.random.default_rng(2).uniform(-0.5, 1.5, size=(50, 2))
        np.testing.assert_array_equal(poly.contains(points), box.contains(points))

    def test_validation(self):
        box = Box(np.zeros(2), np.ones(2))
        with pytest.raises(ValueError, match="columns"):
            Polyhedron(box, np.zeros((1, 3)), np.zeros(1))
        with pytest.raises(ValueError, match="rhs"):
            Polyhedron(box, np.zeros((2, 2)), np.zeros(1))
