"""Shared-memory batch handoff: pack/attach round trip and lifecycle."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.verification import shm


pytestmark = pytest.mark.skipif(
    not shm.available(), reason="shared memory unavailable on this host"
)


@pytest.fixture(autouse=True)
def _fresh_attach_cache():
    """Each test sees an empty worker-side cache and leaves none behind."""
    saved = dict(shm._ATTACHED)
    shm._ATTACHED.clear()
    yield
    for name, (seg, _arrays) in shm._ATTACHED.items():
        if name not in saved:
            try:
                seg.close()
            except BufferError:
                pass
    shm._ATTACHED.clear()
    shm._ATTACHED.update(saved)


def test_pack_attach_round_trip():
    arrays = [
        np.arange(12, dtype=np.float64).reshape(3, 4),
        np.ones((2, 2), dtype=np.float32),
        np.array([7], dtype=np.int64),
    ]
    block = shm.pack_arrays(arrays)
    try:
        views = shm.attach(block.handle)
        assert len(views) == len(arrays)
        for view, original in zip(views, arrays):
            np.testing.assert_array_equal(view, original)
            assert view.dtype == original.dtype
            assert not view.flags.writeable
    finally:
        block.release()


def test_handle_is_small_and_picklable():
    block = shm.pack_arrays([np.zeros((64, 64))])
    try:
        payload = pickle.dumps(block.handle)
        # the point of the handle: tasks ship a name + specs, not 32 KiB
        assert len(payload) < 512
        clone = pickle.loads(payload)
        assert clone == block.handle
        views = shm.attach(clone)
        assert views[0].shape == (64, 64)
    finally:
        block.release()


def test_views_are_64_byte_aligned():
    block = shm.pack_arrays(
        [np.zeros(3, dtype=np.float32), np.zeros(5, dtype=np.float64)]
    )
    try:
        for _shape, _dtype, offset in block.handle.specs:
            assert offset % 64 == 0
        views = shm.attach(block.handle)
        for view in views:
            assert view.ctypes.data % 64 == 0
    finally:
        block.release()


def test_release_is_idempotent():
    block = shm.pack_arrays([np.zeros(4)])
    block.release()
    block.release()  # second release must be a no-op, not a crash


def test_attach_caches_by_name():
    block = shm.pack_arrays([np.arange(4.0)])
    try:
        first = shm.attach(block.handle)
        second = shm.attach(block.handle)
        assert first[0] is second[0]
    finally:
        block.release()


def test_attach_cache_evicts_oldest():
    blocks = [
        shm.pack_arrays([np.full(4, i, dtype=np.float64)])
        for i in range(shm._CACHE_LIMIT + 2)
    ]
    try:
        views = [shm.attach(b.handle)[0] for b in blocks]
        assert len(shm._ATTACHED) == shm._CACHE_LIMIT
        # oldest names evicted, newest retained
        names = [b.handle.name for b in blocks]
        for name in names[:2]:
            assert name not in shm._ATTACHED
        for name in names[2:]:
            assert name in shm._ATTACHED
        # evicted views stay readable while referenced: the unmap is
        # deferred by per-view finalizers (an eager close here would be
        # a use-after-unmap — SharedMemory.close does not refuse to
        # unmap under live numpy views)
        np.testing.assert_array_equal(views[0], np.zeros(4))
    finally:
        for b in blocks:
            b.release()


def test_attach_after_parent_release_still_reads():
    # Linux semantics the round protocol relies on: a worker that
    # attached before the parent unlinked keeps a valid mapping
    block = shm.pack_arrays([np.arange(8.0)])
    views = shm.attach(block.handle)
    block.release()
    np.testing.assert_array_equal(views[0], np.arange(8.0))


def test_attach_unknown_name_raises():
    handle = shm.ShmHandle("nonexistent_segment_name", (((4,), "<f8", 0),))
    with pytest.raises(FileNotFoundError):
        shm.attach(handle)
