"""Differential/property suite for the abstract-domain registry.

Satellite contract of the IR refactor: for random small networks and
random input boxes,

- every registered domain's output enclosure contains every concrete
  forward execution (soundness), and
- where the precision order promises it (``domain.refines``), the
  refining domain's enclosure is coordinate-wise no looser than the
  refined one's (octagon refines interval; symbolic refines interval).

Plus protocol-level tests: registry integrity, batched-vs-scalar
equivalence (scalar analysis *is* a batch of one), and feature-set
extraction per domain.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Dense, LeakyReLU, MaxPool2D, ReLU, Sequential, Sigmoid
from repro.verification.abstraction import (
    get_domain,
    precision_ladder,
    propagate_regions,
    region_boxes,
    registered_domains,
)
from repro.verification.abstraction.domain import register_transformer
from repro.verification.ir import lowered_full
from repro.verification.sets import Box, BoxBatch, BoxWithDiffs

ATOL = 1e-9


def _random_model(seed: int) -> Sequential:
    rng = np.random.default_rng(seed)
    layers = [Dense(int(rng.integers(3, 7)))]
    for _ in range(int(rng.integers(1, 3))):
        layers.append(
            ReLU() if rng.random() < 0.6 else LeakyReLU(float(rng.uniform(0.05, 0.3)))
        )
        layers.append(Dense(int(rng.integers(2, 6))))
    return Sequential(layers, input_shape=(4,), seed=seed % 101)


def _random_regions(rng, n: int, dim: int) -> BoxBatch:
    lower = rng.uniform(-1.0, 1.0, size=(n, dim))
    width = rng.uniform(0.0, 1.2, size=(n, dim))
    width[::3] = 0.0  # degenerate members keep the suite honest
    return BoxBatch(lower, lower + width)


class TestRegistry:
    def test_all_four_domains_registered(self):
        assert registered_domains() == ["interval", "octagon", "zonotope", "symbolic"]

    def test_precision_ladder_prefixes(self):
        assert precision_ladder("interval") == ["interval"]
        assert precision_ladder("octagon") == ["interval", "octagon"]
        assert precision_ladder("symbolic") == [
            "interval",
            "octagon",
            "zonotope",
            "symbolic",
        ]

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError, match="unknown domain"):
            get_domain("polyhedra")

    def test_duplicate_transformer_rejected(self):
        class FakeOp:
            pass

        register_transformer("interval", FakeOp)(lambda d, o, e: e)
        with pytest.raises(ValueError, match="exactly one implementation"):
            register_transformer("interval", FakeOp)(lambda d, o, e: e)

    def test_refinement_promises_declared(self):
        assert "interval" in get_domain("octagon").refines
        assert "interval" in get_domain("symbolic").refines


class TestSoundnessDifferential:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_every_domain_encloses_concrete_executions(self, seed):
        model = _random_model(seed)
        rng = np.random.default_rng(seed + 1)
        regions = _random_regions(rng, n=5, dim=4)
        program = lowered_full(model)
        hulls = {}
        for name in registered_domains():
            hulls[name] = region_boxes(model, regions, model.num_layers, name)
        for i in range(regions.n_regions):
            box = regions.box(i)
            samples = box.sample(rng, 64)
            outputs = program.apply(samples)
            for name, hull in hulls.items():
                member = hull.box(i)
                assert np.all(outputs >= member.lower[None, :] - ATOL), name
                assert np.all(outputs <= member.upper[None, :] + ATOL), name

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_refining_domains_are_no_looser(self, seed):
        """interval ⊇ octagon and interval ⊇ symbolic, per coordinate."""
        model = _random_model(seed)
        rng = np.random.default_rng(seed + 2)
        regions = _random_regions(rng, n=4, dim=4)
        hulls = {
            name: region_boxes(model, regions, model.num_layers, name)
            for name in registered_domains()
        }
        for name in registered_domains():
            for refined in get_domain(name).refines:
                tight, loose = hulls[name], hulls[refined]
                assert np.all(tight.lower >= loose.lower - ATOL), (name, refined)
                assert np.all(tight.upper <= loose.upper + ATOL), (name, refined)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_octagon_difference_bounds_sound(self, seed):
        model = _random_model(seed)
        rng = np.random.default_rng(seed + 3)
        regions = _random_regions(rng, n=3, dim=4)
        program = lowered_full(model)
        octagon = get_domain("octagon")
        element = propagate_regions(model, regions, model.num_layers, "octagon")
        for i in range(regions.n_regions):
            enclosure = octagon.extract(element, i)
            if not isinstance(enclosure, BoxWithDiffs):
                continue
            outputs = program.apply(regions.box(i).sample(rng, 64))
            diffs = np.diff(outputs, axis=1)
            assert np.all(diffs >= enclosure.diff_lower[None, :] - ATOL)
            assert np.all(diffs <= enclosure.diff_upper[None, :] + ATOL)


class TestBatchOfOneEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_batched_equals_stacked_scalars(self, seed):
        """Member i of a batched run equals a batch-of-one run of region i."""
        model = _random_model(seed)
        rng = np.random.default_rng(seed + 4)
        regions = _random_regions(rng, n=4, dim=4)
        for name in registered_domains():
            batched = region_boxes(model, regions, model.num_layers, name)
            for i in range(regions.n_regions):
                single = region_boxes(
                    model,
                    BoxBatch(regions.lower[i][None], regions.upper[i][None]),
                    model.num_layers,
                    name,
                )
                np.testing.assert_allclose(
                    batched.lower[i], single.lower[0], atol=ATOL, err_msg=name
                )
                np.testing.assert_allclose(
                    batched.upper[i], single.upper[0], atol=ATOL, err_msg=name
                )


class TestPrefixCoverage:
    def test_interval_handles_smooth_prefix(self, rng):
        model = Sequential(
            [Dense(5), Sigmoid(), Dense(3)], input_shape=(3,), seed=9
        )
        regions = BoxBatch(np.zeros((2, 3)), np.ones((2, 3)))
        hull = region_boxes(model, regions, model.num_layers, "interval")
        outputs = model.forward(rng.random((50, 3)))
        assert np.all(outputs >= hull.lower.min(axis=0) - ATOL)
        assert np.all(outputs <= hull.upper.max(axis=0) + ATOL)

    def test_relational_domains_reject_smooth_prefix(self):
        """Unsupported (domain, op) pairs fail upfront with a clear error."""
        model = Sequential(
            [Dense(5), Sigmoid(), Dense(3)], input_shape=(3,), seed=9
        )
        regions = BoxBatch(np.zeros((1, 3)), np.ones((1, 3)))
        with pytest.raises(
            ValueError, match="'zonotope' has no transformer for MonotoneOp"
        ):
            region_boxes(model, regions, model.num_layers, "zonotope")
        with pytest.raises(ValueError, match="'symbolic' has no transformer"):
            region_boxes(model, regions, model.num_layers, "symbolic")

    def test_maxpool_prefix_all_relational_domains(self, rng):
        from repro.nn import Conv2D, Flatten

        model = Sequential(
            [Conv2D(2, 3), ReLU(), MaxPool2D(2), Flatten(), Dense(3)],
            input_shape=(1, 8, 8),
            seed=5,
        )
        regions = BoxBatch(
            np.zeros((2, 1, 8, 8)), np.full((2, 1, 8, 8), 0.5)
        )
        samples = rng.uniform(0.0, 0.5, size=(40, 1, 8, 8))
        outputs = model.forward(samples)
        for name in ("interval", "octagon", "zonotope"):
            hull = region_boxes(model, regions, model.num_layers, name)
            assert np.all(outputs >= hull.box(0).lower[None, :] - ATOL), name
            assert np.all(outputs <= hull.box(0).upper[None, :] + ATOL), name


class TestFeatureSetExtraction:
    def test_octagon_and_zonotope_yield_box_with_diffs(self):
        model = _random_model(11)
        regions = _random_regions(np.random.default_rng(0), n=2, dim=4)
        for name in ("octagon", "zonotope"):
            dom = get_domain(name)
            element = propagate_regions(model, regions, model.num_layers, name)
            fs = dom.feature_set(dom.extract(element, 0))
            assert isinstance(fs, BoxWithDiffs)

    def test_interval_and_symbolic_yield_boxes(self):
        model = _random_model(12)
        regions = _random_regions(np.random.default_rng(1), n=2, dim=4)
        for name in ("interval", "symbolic"):
            dom = get_domain(name)
            element = propagate_regions(model, regions, model.num_layers, name)
            fs = dom.feature_set(dom.extract(element, 0))
            assert isinstance(fs, Box) and not isinstance(fs, BoxWithDiffs)

    def test_octagon_lp_screen_no_looser_than_box(self):
        """The octagon LP lower bound is >= the plain box lower bound."""
        rng = np.random.default_rng(3)
        octagon = get_domain("octagon")
        box = Box(np.array([-1.0, -1.0]), np.array([1.0, 1.0]))
        enclosure = BoxWithDiffs(box, np.array([-0.1]), np.array([0.1]))
        for _ in range(10):
            a = rng.normal(size=2)
            box_bound = get_domain("interval").linear_lower_bound(box, a)
            lp_bound = octagon.linear_lower_bound(enclosure, a)
            assert lp_bound >= box_bound - ATOL
