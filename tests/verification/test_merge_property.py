"""Differential soundness of structural neuron merging (hypothesis).

On random affine/ReLU chains and random input boxes:

- the merged two-rail program is a pointwise sandwich: its lower-rail
  block never exceeds the original outputs and its upper-rail block
  never undercuts them, anywhere in the box;
- the merged output hull computed by *every* registered abstract
  domain contains the original program's sampled outputs (the merged
  program over-approximates, the domain over-approximates the merged
  program — containment must survive the composition);
- the interval hull of the merged program contains the interval hull
  of the original program;
- refinement on the *last* hidden layer monotonically tightens the
  merged interval hull (for interior layers max-aggregation is not
  monotone under splits — the coarse successor coefficient
  ``max_i c[i, G]`` is subadditive in ``G`` — so the guarantee, and
  this test, is scoped to splits whose successor is the unmerged
  output layer);
- a fully refined state compiles back to the *original program
  object*, and its content digest matches bit-exactly;
- the risk rewrite is an implication: an input whose original output
  triggers the risk also triggers the rewritten risk on the merged
  program;
- every merged program passes the IR validator (including the IR013
  merged-metadata contract).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.properties.risk import RiskCondition, output_geq
from repro.service.digest import program_digest
from repro.verification.abstraction import registered_domains
from repro.verification.abstraction.domain import get_domain
from repro.verification.abstraction.merge import (
    MergeState,
    classify_neurons,
    extract_chain,
    merged_attack,
    plan_refinement,
    refinement_candidates,
)
from repro.verification.ir import AffineOp, LoweredProgram, ReLUOp
from repro.verification.prescreen import output_enclosure
from repro.verification.sets import Box

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_TOL = 1e-7


def _random_chain_program(
    seed: int, in_dim: int = 3, widths: tuple[int, ...] = (6, 5), out_dim: int = 2
) -> LoweredProgram:
    rng = np.random.default_rng(seed)
    dims = (in_dim, *widths, out_dim)
    ops: list = []
    for i in range(len(dims) - 1):
        weight = rng.normal(scale=0.8, size=(dims[i + 1], dims[i]))
        bias = rng.normal(scale=0.3, size=dims[i + 1])
        ops.append(AffineOp(weight, bias))
        if i < len(dims) - 2:
            ops.append(ReLUOp(dims[i + 1]))
    return LoweredProgram(ops, in_dim, source=f"test-chain-{seed}")


def _random_box(seed: int, in_dim: int = 3) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed + 77)
    lower = rng.uniform(-1.0, 0.5, size=in_dim)
    upper = lower + rng.uniform(0.1, 1.5, size=in_dim)
    return lower, upper


def _samples(seed: int, lower: np.ndarray, upper: np.ndarray, n: int = 96) -> np.ndarray:
    rng = np.random.default_rng(seed + 991)
    points = rng.uniform(lower, upper, size=(n, lower.size))
    # corners stress the hull harder than interior points
    points[0] = lower
    points[1] = upper
    return points


def _rails(merged_out: np.ndarray, out_dim: int) -> tuple[np.ndarray, np.ndarray]:
    """Split a merged batch output into (upper rail, lower rail)."""
    return merged_out[:, :out_dim], merged_out[:, out_dim:]


def _merged_hull(state: MergeState, box: Box, domain: str) -> Box:
    """The original-output hull implied by a domain run on the merged net."""
    out_dim = extract_chain(state._source_program).out_dim
    enclosure = output_enclosure(state.program(), box, domain)
    hull = get_domain(domain).enclosure_box(enclosure)
    return Box(hull.lower[out_dim:], hull.upper[:out_dim])


class TestSandwich:
    @_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_rails_bracket_the_original_pointwise(self, seed):
        program = _random_chain_program(seed)
        lower, upper = _random_box(seed)
        state = MergeState.coarsest(program, lower, upper)
        points = _samples(seed, lower, upper)

        exact = program.apply(points)
        upper_rail, lower_rail = _rails(state.program().apply(points), exact.shape[1])
        assert np.all(lower_rail <= exact + _TOL)
        assert np.all(exact <= upper_rail + _TOL)

    @_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_sandwich_survives_partial_refinement(self, seed):
        program = _random_chain_program(seed)
        lower, upper = _random_box(seed)
        state = MergeState.coarsest(program, lower, upper)
        risk = RiskCondition("probe", (output_geq(2, 0, 0.0),))
        points = _samples(seed, lower, upper, n=48)
        exact = program.apply(points)

        for _ in range(4):
            if state.is_refined:
                break
            witness = merged_attack(state, risk, lower, upper)
            step = plan_refinement(state, witness)
            assert step is not None
            state = step.apply(state)
            upper_rail, lower_rail = _rails(
                state.program().apply(points), exact.shape[1]
            )
            assert np.all(lower_rail <= exact + _TOL)
            assert np.all(exact <= upper_rail + _TOL)


class TestHullContainment:
    @_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_every_domain_hull_contains_sampled_outputs(self, seed):
        program = _random_chain_program(seed)
        lower, upper = _random_box(seed)
        state = MergeState.coarsest(program, lower, upper)
        box = Box(lower, upper)
        exact = program.apply(_samples(seed, lower, upper))

        for domain in registered_domains():
            hull = _merged_hull(state, box, domain)
            assert np.all(exact >= hull.lower[None, :] - _TOL), domain
            assert np.all(exact <= hull.upper[None, :] + _TOL), domain

    @_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_merged_interval_hull_contains_original_interval_hull(self, seed):
        program = _random_chain_program(seed)
        lower, upper = _random_box(seed)
        state = MergeState.coarsest(program, lower, upper)
        box = Box(lower, upper)

        original = get_domain("interval").enclosure_box(
            output_enclosure(program, box, "interval")
        )
        merged = _merged_hull(state, box, "interval")
        assert np.all(merged.lower <= original.lower + _TOL)
        assert np.all(merged.upper >= original.upper - _TOL)


class TestRefinement:
    @_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_last_layer_splits_tighten_monotonically(self, seed):
        program = _random_chain_program(seed)
        lower, upper = _random_box(seed)
        state = MergeState.coarsest(program, lower, upper)
        box = Box(lower, upper)
        last = len(state.partitions) - 1

        hull = _merged_hull(state, box, "interval")
        for _ in range(8):
            split = None
            for rail in ("inc", "dec"):
                for group in state.groups(last, rail):
                    if len(group) >= 2:
                        split = (rail, group)
                        break
                if split:
                    break
            if split is None:
                break
            rail, group = split
            state = state.split_group(
                last, rail, group, ((group[0],), tuple(group[1:]))
            )
            tighter = _merged_hull(state, box, "interval")
            assert np.all(tighter.lower >= hull.lower - _TOL)
            assert np.all(tighter.upper <= hull.upper + _TOL)
            hull = tighter

    @_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_full_refinement_recovers_the_original_bit_exactly(self, seed):
        program = _random_chain_program(seed)
        lower, upper = _random_box(seed)
        state = MergeState.coarsest(program, lower, upper)

        while not state.is_refined:
            found = None
            for layer in range(len(state.partitions)):
                for rail in ("inc", "dec"):
                    for group in state.groups(layer, rail):
                        if len(group) >= 2:
                            found = (layer, rail, group)
                            break
                    if found:
                        break
                if found:
                    break
            assert found is not None
            layer, rail, group = found
            state = state.split_group(
                layer, rail, group, ((group[0],), tuple(group[1:]))
            )

        assert state.program() is program
        assert program_digest(state.program()) == program_digest(program)

    @_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_candidate_ordering_is_deterministic(self, seed):
        program = _random_chain_program(seed)
        lower, upper = _random_box(seed)
        state = MergeState.coarsest(program, lower, upper)
        risk = RiskCondition("probe", (output_geq(2, 0, 0.0),))

        first = merged_attack(state, risk, lower, upper)
        second = merged_attack(state, risk, lower, upper)
        np.testing.assert_array_equal(first, second)

        once = refinement_candidates(state, first)
        twice = refinement_candidates(state, second)
        assert [c.layer for c in once] == [c.layer for c in twice]
        assert [c.group for c in once] == [c.group for c in twice]
        for candidate in once:
            assert candidate.group in state.groups(candidate.layer, candidate.rail)


class TestRiskRewrite:
    @_SETTINGS
    @given(seed=st.integers(0, 10_000), threshold=st.floats(-2.0, 2.0))
    def test_original_violation_implies_merged_violation(self, seed, threshold):
        program = _random_chain_program(seed)
        lower, upper = _random_box(seed)
        state = MergeState.coarsest(program, lower, upper)
        risk = RiskCondition("y0-high", (output_geq(2, 0, threshold),))
        merged_risk = state.merged_risk(risk)

        points = _samples(seed, lower, upper)
        original_margin = risk.margin(program.apply(points))
        merged_margin = merged_risk.margin(state.program().apply(points))
        # the rewrite under-approximates each atom's left-hand side, so
        # per-point margins can only grow: risk-at-x carries over
        assert np.all(merged_margin >= original_margin - _TOL)

    def test_refined_state_returns_the_risk_unchanged(self):
        program = _random_chain_program(3)
        lower, upper = _random_box(3)
        state = MergeState.identity(program, lower, upper)
        risk = RiskCondition("y0-high", (output_geq(2, 0, 0.5),))
        assert state.merged_risk(risk) is risk


class TestValidator:
    @_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_every_merged_program_validates_clean(self, seed):
        from repro.analysis.ir_analysis import validate_program

        program = _random_chain_program(seed)
        lower, upper = _random_box(seed)
        state = MergeState.coarsest(program, lower, upper)
        validate_program(state.program())  # raises on any diagnostic

        chain = extract_chain(program)
        classes = classify_neurons(chain)
        assert len(classes) == chain.num_hidden
        groups_meta = state.program().merge_groups
        assert groups_meta, "merged program must carry IR013 metadata"
