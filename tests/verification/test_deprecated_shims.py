"""The PR 4 deprecation shims: correct attribution, correct guidance.

A deprecation warning is only actionable when it points at the
*caller's* line (``stacklevel=2``) and names a replacement that
actually exists.  These tests pin both properties for every shim, so a
refactor that reintroduces a helper frame (shifting the warning onto
the shim module) or renames the replacement fails loudly.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.nn import Dense, ReLU, Sequential
from repro.verification import abstraction
from repro.verification.abstraction import propagate as propagate_module
from repro.verification.abstraction.propagate import (
    layer_interval,
    layer_interval_batch,
    propagate_batch,
    propagate_input_box,
    propagate_input_box_batch,
    propagate_regions,
    region_boxes,
)
from repro.verification.sets import BoxBatch


@pytest.fixture
def model() -> Sequential:
    return Sequential([Dense(5), ReLU(), Dense(3)], input_shape=(4,), seed=3)


def _batch(n: int = 2) -> BoxBatch:
    return BoxBatch(np.zeros((n, 4)), np.ones((n, 4)))


def _call(shim, model):
    """Invoke every shim with valid arguments from THIS file."""
    if shim is layer_interval:
        return shim(model.layers[0], np.zeros(4), np.ones(4))
    if shim is layer_interval_batch:
        return shim(model.layers[0], np.zeros((2, 4)), np.ones((2, 4)))
    if shim is propagate_input_box:
        return shim(model, 0.0, 1.0, 2)
    return shim(model, _batch(), 2)


ALL_SHIMS = [
    layer_interval,
    layer_interval_batch,
    propagate_input_box,
    propagate_input_box_batch,
    propagate_batch,
]


class TestWarningAttribution:
    @pytest.mark.parametrize("shim", ALL_SHIMS, ids=lambda f: f.__name__)
    def test_warning_points_at_the_caller(self, shim, model):
        """stacklevel=2: the report names this test file, not the shim module."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _call(shim, model)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations, f"{shim.__name__} no longer warns"
        report = deprecations[0]
        assert report.filename == __file__, (
            f"{shim.__name__} warning attributed to {report.filename}; "
            f"a helper frame is eating stacklevel=2"
        )
        assert shim.__name__ in str(report.message)

    @pytest.mark.parametrize("shim", ALL_SHIMS, ids=lambda f: f.__name__)
    def test_message_names_a_real_replacement(self, shim, model):
        with pytest.warns(DeprecationWarning, match="propagate_regions"):
            _call(shim, model)


class TestDocstringsPointAtTheRegistry:
    @pytest.mark.parametrize("shim", ALL_SHIMS, ids=lambda f: f.__name__)
    def test_docstring_names_an_existing_replacement(self, shim):
        doc = shim.__doc__ or ""
        assert "Deprecated" in doc
        referenced = "propagate_regions" in doc or "get_domain" in doc
        assert referenced, f"{shim.__name__} docstring names no replacement"
        # the referenced entry points must actually exist
        assert callable(propagate_module.propagate_regions)
        assert callable(abstraction.get_domain)
        assert hasattr(abstraction.get_domain("interval"), "transform")


class TestShimsStillCompute:
    """Deprecated does not mean broken: shims match the canonical path."""

    def test_scalar_and_batch_match_propagate_regions(self, model):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            box = propagate_input_box(model, 0.0, 1.0, 2)
            batch = propagate_input_box_batch(model, _batch(), 2)
            alias = propagate_batch(model, _batch(), 2)
        canonical = region_boxes(model, _batch(), 2)
        assert np.array_equal(batch.lower, canonical.lower)
        assert np.array_equal(alias.upper, canonical.upper)
        assert np.array_equal(box.lower, canonical.lower[0])

    def test_layer_interval_matches_registry_transform(self, model):
        lower, upper = np.zeros(4), np.ones(4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            out_lower, out_upper = layer_interval(model.layers[0], lower, upper)
            batch_lower, batch_upper = layer_interval_batch(
                model.layers[0], lower[None], upper[None]
            )
        element = BoxBatch(lower[None], upper[None])
        for op in model.layers[0].as_abstract_ops():
            element = abstraction.get_domain("interval").transform(op, element)
        assert np.array_equal(out_lower, element.lower[0])
        assert np.array_equal(batch_upper[0], element.upper[0])
