"""Unit tests for the local-robustness baseline."""

import numpy as np
import pytest

from repro.nn import Dense, ReLU, Sequential
from repro.verification.robustness import (
    maximal_robust_radius,
    robustness_tells_nothing_about_phi,
    verify_local_robustness,
)


@pytest.fixture
def suffix(rng):
    model = Sequential([Dense(6), ReLU(), Dense(2)], input_shape=(4,), seed=31)
    return model.full_network()


class TestVerifyLocalRobustness:
    def test_tiny_ball_is_robust(self, suffix, rng):
        features = rng.normal(size=4)
        result = verify_local_robustness(suffix, features, epsilon=1e-4, delta=0.5)
        assert result.robust
        assert result.worst_deviation < 0.5
        np.testing.assert_allclose(result.nominal_output, suffix.apply(features))

    def test_huge_ball_is_not_robust(self, suffix, rng):
        features = rng.normal(size=4)
        result = verify_local_robustness(suffix, features, epsilon=50.0, delta=0.1)
        assert not result.robust
        assert result.violating_output_index is not None

    def test_ranges_bracket_samples(self, suffix, rng):
        features = rng.normal(size=4)
        epsilon = 0.3
        result = verify_local_robustness(suffix, features, epsilon, delta=100.0)
        samples = features[None, :] + rng.uniform(-epsilon, epsilon, size=(300, 4))
        outputs = suffix.apply(samples)
        for index, reach in enumerate(result.output_ranges):
            assert outputs[:, index].min() >= reach.lower - 1e-6
            assert outputs[:, index].max() <= reach.upper + 1e-6

    def test_validation(self, suffix):
        with pytest.raises(ValueError, match="positive"):
            verify_local_robustness(suffix, np.zeros(4), epsilon=0.0, delta=1.0)
        with pytest.raises(ValueError, match="dimension"):
            verify_local_robustness(suffix, np.zeros(7), epsilon=0.1, delta=1.0)


class TestMaximalRobustRadius:
    def test_radius_is_monotone_certificate(self, suffix, rng):
        features = rng.normal(size=4)
        radius = maximal_robust_radius(suffix, features, delta=0.5, epsilon_max=5.0)
        assert radius > 0.0
        if radius < 5.0:
            # at the certified radius: robust; just above: not
            assert verify_local_robustness(suffix, features, radius, 0.5).robust
            assert not verify_local_robustness(
                suffix, features, radius + 0.05, 0.5
            ).robust

    def test_cap_at_epsilon_max(self, suffix, rng):
        features = rng.normal(size=4)
        radius = maximal_robust_radius(
            suffix, features, delta=1e6, epsilon_max=1.0
        )
        assert radius == 1.0


class TestOrthogonalityToPhi:
    def test_rates_computed_for_both_groups(self, suffix, rng):
        accepted = rng.normal(size=(5, 4))
        rejected = rng.normal(size=(5, 4))
        rates = robustness_tells_nothing_about_phi(
            suffix, accepted, rejected, epsilon=0.05, delta=5.0
        )
        assert set(rates) == {"accepted", "rejected"}
        for rate in rates.values():
            assert 0.0 <= rate <= 1.0

    def test_empty_group_rejected(self, suffix):
        with pytest.raises(ValueError, match="non-empty"):
            robustness_tells_nothing_about_phi(
                suffix, np.zeros((0, 4)), np.zeros((2, 4)), 0.1, 1.0
            )
