"""Unit tests for the bound-propagation prescreen and output-range analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Dense, ReLU, Sequential
from repro.properties.risk import RiskCondition, output_geq, output_in_band, output_leq
from repro.verification.assume_guarantee import (
    box_from_data,
    box_with_diffs_from_data,
)
from repro.verification.milp.encoder import encode_verification_problem
from repro.verification.output_range import output_range
from repro.verification.prescreen import prescreen
from repro.verification.solver import BranchAndBoundSolver


@pytest.fixture
def net_and_set(rng):
    model = Sequential(
        [Dense(8), ReLU(), Dense(6), ReLU(), Dense(2)], input_shape=(4,), seed=17
    )
    net = model.full_network()
    features = rng.normal(size=(120, 4))
    return net, box_with_diffs_from_data(features), features


class TestPrescreen:
    def test_excludes_unreachable_risk(self, net_and_set):
        net, sbox, _ = net_and_set
        reach = output_range(net, sbox)
        risk = RiskCondition("never", (output_geq(2, 0, reach.upper + 100.0),))
        result = prescreen(net, sbox, risk)
        assert result.excluded
        assert result.best_possible_margin < 0.0

    def test_inconclusive_on_reachable_risk(self, net_and_set):
        net, sbox, features = net_and_set
        outputs = net.apply(features)
        risk = RiskCondition(
            "reach", (output_geq(2, 0, float(np.median(outputs[:, 0]))),)
        )
        result = prescreen(net, sbox, risk)
        assert not result.excluded

    def test_zonotope_domain(self, net_and_set):
        net, sbox, _ = net_and_set
        reach = output_range(net, sbox)
        risk = RiskCondition("never", (output_geq(2, 0, reach.upper + 100.0),))
        result = prescreen(net, sbox, risk, domain="zonotope")
        assert result.excluded and result.domain == "zonotope"

    def test_unknown_domain(self, net_and_set):
        net, sbox, _ = net_and_set
        risk = RiskCondition("x", (output_geq(2, 0, 0.0),))
        with pytest.raises(ValueError, match="unknown domain"):
            prescreen(net, sbox, risk, domain="polyhedra")

    def test_every_registered_domain_screens(self, net_and_set):
        """octagon/symbolic are first-class prescreen backends now."""
        from repro.verification.abstraction import registered_domains

        net, sbox, _ = net_and_set
        risk = RiskCondition("x", (output_geq(2, 0, 1e9),))
        for domain in registered_domains():
            assert prescreen(net, sbox, risk, domain=domain).excluded

    def test_dim_mismatch(self, net_and_set):
        net, sbox, _ = net_and_set
        with pytest.raises(ValueError, match="outputs"):
            prescreen(net, sbox, RiskCondition("x", (output_geq(3, 0, 0.0),)))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_never_contradicts_exact_solver(self, seed):
        """Soundness: prescreen-excluded risks must be MILP-UNSAT."""
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Dense(5), ReLU(), Dense(2)], input_shape=(3,), seed=seed % 31
        )
        net = model.full_network()
        sbox = box_from_data(rng.normal(size=(40, 3)))
        threshold = rng.uniform(-5, 15)
        risk = RiskCondition("t", (output_geq(2, 0, threshold),))
        if prescreen(net, sbox, risk).excluded:
            problem = encode_verification_problem(net, sbox, risk)
            assert BranchAndBoundSolver().solve(problem.model).is_unsat

    def test_band_risk_excluded_when_band_unreachable(self, net_and_set):
        net, sbox, _ = net_and_set
        reach = output_range(net, sbox)
        band = tuple(
            output_in_band(2, 0, reach.upper + 10.0, reach.upper + 11.0)
        )
        result = prescreen(net, sbox, RiskCondition("band", band))
        assert result.excluded


class TestOutputRange:
    def test_brackets_empirical_range(self, net_and_set, rng):
        net, sbox, features = net_and_set
        reach = output_range(net, sbox)
        outputs = net.apply(features)
        assert reach.lower <= outputs[:, 0].min() + 1e-6
        assert reach.upper >= outputs[:, 0].max() - 1e-6
        assert reach.exact
        assert reach.width > 0.0

    def test_both_output_indices(self, net_and_set):
        net, sbox, _ = net_and_set
        r0 = output_range(net, sbox, output_index=0)
        r1 = output_range(net, sbox, output_index=1)
        assert r0.output_index == 0 and r1.output_index == 1

    def test_characterizer_shrinks_range(self, net_and_set):
        net, sbox, _ = net_and_set
        char = Sequential([Dense(1)], input_shape=(4,), seed=0)
        char.layers[0].weight.value[...] = np.array([[1.0], [0.0], [0.0], [0.0]])
        char.layers[0].bias.value[...] = np.array([-0.2])
        constrained = output_range(net, sbox, char.full_network())
        free = output_range(net, sbox)
        assert constrained.upper <= free.upper + 1e-6
        assert constrained.lower >= free.lower - 1e-6

    def test_empty_region_raises(self, net_and_set):
        net, sbox, _ = net_and_set
        never = Sequential([Dense(1)], input_shape=(4,), seed=0)
        never.layers[0].weight.value[...] = 0.0
        never.layers[0].bias.value[...] = np.array([-1.0])
        with pytest.raises(ValueError, match="empty"):
            output_range(net, sbox, never.full_network())

    def test_bad_output_index(self, net_and_set):
        net, sbox, _ = net_and_set
        with pytest.raises(ValueError, match="output index"):
            output_range(net, sbox, output_index=5)

    def test_matches_branch_and_bound_solver(self, net_and_set):
        net, sbox, _ = net_and_set
        highs = output_range(net, sbox, solver="highs")
        bb = output_range(net, sbox, solver="branch-and-bound")
        assert highs.upper == pytest.approx(bb.upper, abs=1e-5)
        assert highs.lower == pytest.approx(bb.lower, abs=1e-5)


class TestVerifierPrescreenIntegration:
    def test_prescreen_fast_path_taken(self, rng):
        from repro.core.workflow import SafetyVerifier
        from repro.perception.network import build_mlp_perception_network, default_cut_layer

        model = build_mlp_perception_network(input_dim=5, feature_width=6, seed=2)
        images = rng.uniform(0, 1, size=(150, 5))
        cut = default_cut_layer(model)
        verifier = SafetyVerifier(model, cut)
        fs = verifier.add_feature_set_from_data(images)
        reach = output_range(verifier.suffix, fs)
        risk = RiskCondition("never", (output_geq(2, 0, reach.upper + 50.0),))
        verdict = verifier.verify(risk)
        assert verdict.proved
        assert verdict.solve_result.stats.get("prescreen") == "interval"
        # disabling the prescreen goes through the solver instead
        verdict2 = verifier.verify(risk, prescreen_domain=None)
        assert verdict2.proved
        assert "prescreen" not in verdict2.solve_result.stats
