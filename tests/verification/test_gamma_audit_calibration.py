"""Tests for the footnote-4 audit and characterizer threshold calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perception.characterizer import calibrate_threshold, train_characterizer
from repro.properties.risk import RiskCondition, output_geq
from repro.verification.statistical import audit_gamma_cell


def _risk():
    return RiskCondition("r", (output_geq(2, 0, 1.0),))


class TestAuditGammaCell:
    def test_all_safe(self):
        outputs = np.array([[0.0, 0.0], [0.5, 0.0], [2.0, 0.0]])
        h = np.array([0, 0, 1])
        phi = np.array([1, 1, 1])
        audit = audit_gamma_cell(outputs, h, phi, _risk())
        assert audit.holds
        assert audit.total_gamma_samples == 2
        assert "holds" in audit.summary()

    def test_unsafe_gamma_sample_flagged(self):
        outputs = np.array([[0.0, 0.0], [2.0, 0.0]])  # second satisfies risk
        h = np.array([0, 0])
        phi = np.array([1, 1])
        audit = audit_gamma_cell(outputs, h, phi, _risk())
        assert not audit.holds
        assert audit.unsafe_indices == (1,)
        assert "VIOLATED" in audit.summary()

    def test_risky_but_accepted_is_fine(self):
        """h = 1 samples are covered by the proof, not the audit."""
        outputs = np.array([[2.0, 0.0]])
        audit = audit_gamma_cell(outputs, np.array([1]), np.array([1]), _risk())
        assert audit.holds
        assert audit.total_gamma_samples == 0

    def test_empty_gamma_cell(self):
        outputs = np.array([[2.0, 0.0], [0.0, 0.0]])
        h = np.array([1, 0])
        phi = np.array([1, 0])
        audit = audit_gamma_cell(outputs, h, phi, _risk())
        assert audit.holds and audit.total_gamma_samples == 0

    def test_length_validation(self):
        with pytest.raises(ValueError, match="inconsistent"):
            audit_gamma_cell(np.zeros((2, 2)), np.zeros(3), np.zeros(3), _risk())

    def test_on_real_system(self, verified_system):
        """The audit runs on the trained system's validation data."""
        sys_ = verified_system
        characterizer = sys_.characterizers["bends_right"]
        outputs = sys_.model.forward(sys_.val_data.images)
        audit = audit_gamma_cell(
            outputs,
            characterizer.decide(sys_.val_features),
            sys_.val_data.property_labels("bends_right"),
            _risk(),
        )
        assert audit.total_gamma_samples >= 0  # runs end to end


class TestCalibrateThreshold:
    @pytest.fixture
    def trained(self, rng):
        features = rng.normal(size=(300, 5))
        labels = (features[:, 0] + 0.3 * rng.normal(size=300) > 0).astype(float)
        characterizer, _ = train_characterizer(
            "p", 3, features, labels, features, labels, epochs=30, seed=0
        )
        return characterizer, features, labels

    @staticmethod
    def _gamma(characterizer, features, labels):
        decisions = characterizer.logits(features) >= characterizer.threshold
        labels = labels.astype(bool)
        return float(np.sum(~decisions & labels)) / labels.shape[0]

    def test_calibration_meets_target(self, trained):
        characterizer, features, labels = trained
        before = self._gamma(characterizer, features, labels)
        target = before / 2 if before > 0 else 0.0
        calibrated = calibrate_threshold(characterizer, features, labels, target)
        after = self._gamma(calibrated, features, labels)
        assert after <= target + 1e-12

    def test_zero_gamma_achievable(self, trained):
        characterizer, features, labels = trained
        calibrated = calibrate_threshold(characterizer, features, labels, 0.0)
        assert self._gamma(calibrated, features, labels) == 0.0

    def test_noop_when_already_satisfied(self, trained):
        characterizer, features, labels = trained
        before = self._gamma(characterizer, features, labels)
        calibrated = calibrate_threshold(
            characterizer, features, labels, max(before, 0.0) + 0.1
        )
        assert calibrated.threshold == characterizer.threshold

    def test_lower_threshold_raises_beta_not_gamma(self, trained):
        """Calibration only moves rejects to accepts (monotone trade)."""
        characterizer, features, labels = trained
        calibrated = calibrate_threshold(characterizer, features, labels, 0.0)
        assert calibrated.threshold <= characterizer.threshold
        old_accepts = characterizer.logits(features) >= characterizer.threshold
        new_accepts = calibrated.logits(features) >= calibrated.threshold
        assert np.all(new_accepts | ~old_accepts)  # accepts only grow

    def test_validation(self, trained):
        characterizer, features, labels = trained
        with pytest.raises(ValueError, match="target_gamma"):
            calibrate_threshold(characterizer, features, labels, 1.0)
        with pytest.raises(ValueError, match="mismatch"):
            calibrate_threshold(characterizer, features, labels[:-5], 0.1)

    @given(st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_calibrated_gamma_never_exceeds_target(self, seed):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(60, 4))
        labels = rng.random(60) > 0.5
        if not labels.any():
            labels[0] = True
        characterizer, _ = train_characterizer(
            "x", 2, features, labels.astype(float), features, labels.astype(float),
            epochs=3, seed=seed % 17,
        )
        target = float(rng.uniform(0.0, 0.3))
        calibrated = calibrate_threshold(characterizer, features, labels, target)
        decisions = calibrated.logits(features) >= calibrated.threshold
        gamma = float(np.sum(~decisions & labels)) / labels.shape[0]
        assert gamma <= target + 1e-12