"""Unit tests for witness decoding and FGSM falsification."""

import numpy as np
import pytest

from repro.nn import Dense, ReLU, Sequential
from repro.properties.risk import RiskCondition, output_geq
from repro.verification.assume_guarantee import box_from_data
from repro.verification.counterexample import (
    FeatureCounterexample,
    decode_witness,
    fgsm_falsify,
)
from repro.verification.milp.encoder import encode_verification_problem
from repro.verification.solver import BranchAndBoundSolver


@pytest.fixture
def sat_instance(rng):
    model = Sequential([Dense(6), ReLU(), Dense(2)], input_shape=(4,), seed=21)
    net = model.full_network()
    features = rng.normal(size=(60, 4))
    sbox = box_from_data(features)
    outputs = net.apply(features)
    risk = RiskCondition(
        "reach", (output_geq(2, 0, float(np.median(outputs[:, 0]))),)
    )
    problem = encode_verification_problem(net, sbox, risk)
    result = BranchAndBoundSolver().solve(problem.model)
    assert result.is_sat
    return model, problem, result, risk


class TestDecodeWitness:
    def test_replay_succeeds(self, sat_instance):
        model, problem, result, risk = sat_instance
        cx = decode_witness(problem, result.witness, model, 0, risk)
        assert isinstance(cx, FeatureCounterexample)
        assert cx.risk_occurs
        assert cx.risk_margin >= -1e-6
        np.testing.assert_allclose(
            model.suffix_apply(cx.features[None], 0)[0], cx.predicted_output
        )

    def test_corrupted_witness_detected(self, sat_instance):
        model, problem, result, risk = sat_instance
        bad = result.witness.copy()
        bad[problem.output_vars[0]] += 5.0
        with pytest.raises(ValueError, match="does not replay"):
            decode_witness(problem, bad, model, 0, risk)

    def test_characterizer_logit_decoded(self, rng):
        model = Sequential([Dense(4), ReLU(), Dense(2)], input_shape=(3,), seed=2)
        net = model.full_network()
        sbox = box_from_data(rng.normal(size=(40, 3)))
        char = Sequential([Dense(3), ReLU(), Dense(1)], input_shape=(3,), seed=3)
        risk = RiskCondition("any", (output_geq(2, 0, -1e6),))
        problem = encode_verification_problem(
            net, sbox, risk, char.full_network()
        )
        result = BranchAndBoundSolver().solve(problem.model)
        if result.is_sat:
            cx = decode_witness(problem, result.witness, model, 0, risk)
            assert cx.characterizer_logit is not None
            assert cx.characterizer_logit >= -1e-9
            # decoded logit equals the real characterizer evaluation
            real_logit = char.forward(cx.features[None])[0, 0]
            assert cx.characterizer_logit == pytest.approx(real_logit, abs=1e-5)


class TestFgsmFalsify:
    def _steerable_model(self):
        """Model whose output y0 is the mean pixel: easy to push around."""
        model = Sequential([Dense(2)], input_shape=(9,), seed=0)
        model.layers[0].weight.value[...] = np.concatenate(
            [np.full((9, 1), 1.0 / 9), np.zeros((9, 1))], axis=1
        )
        model.layers[0].bias.value[...] = 0.0
        return model

    def test_finds_reachable_risk(self):
        model = self._steerable_model()
        seed = np.full((1, 9), 0.5)
        risk = RiskCondition("bright", (output_geq(2, 0, 0.52),))
        cx = fgsm_falsify(model, risk, seed, epsilon=0.1, steps=10)
        assert cx is not None
        assert cx.risk_occurs
        # perturbation stayed in the epsilon ball and pixel range
        assert np.all(np.abs(cx.image - seed[0]) <= 0.1 + 1e-12)
        assert cx.image.min() >= 0.0 and cx.image.max() <= 1.0

    def test_returns_none_when_unreachable(self):
        model = self._steerable_model()
        seed = np.full((1, 9), 0.5)
        risk = RiskCondition("impossible", (output_geq(2, 0, 10.0),))
        assert fgsm_falsify(model, risk, seed, epsilon=0.05, steps=5) is None

    def test_single_seed_auto_batched(self):
        model = self._steerable_model()
        risk = RiskCondition("bright", (output_geq(2, 0, 0.51),))
        cx = fgsm_falsify(model, risk, np.full(9, 0.5), epsilon=0.1, steps=10)
        assert cx is not None

    def test_validation(self):
        model = self._steerable_model()
        risk = RiskCondition("any", (output_geq(2, 0, 0.0),))
        with pytest.raises(ValueError, match="positive"):
            fgsm_falsify(model, risk, np.zeros((1, 9)), epsilon=0.0)
