"""Unit and property tests for symbolic linear bound propagation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Dense, LeakyReLU, MaxPool2D, ReLU, Sequential
from repro.nn import Conv2D, Flatten
from repro.verification.abstraction.interval import propagate_box
from repro.verification.abstraction.symbolic import (
    SymbolicBounds,
    propagate_symbolic,
    transform,
)
from repro.nn.graph import AffineOp, ReLUOp
from repro.verification.sets import Box


class TestSymbolicBounds:
    def test_identity_concretizes_to_box(self):
        box = Box(np.array([-1.0, 2.0]), np.array([1.0, 3.0]))
        bounds = SymbolicBounds.identity(box)
        out = bounds.concretize()
        np.testing.assert_allclose(out.lower, box.lower)
        np.testing.assert_allclose(out.upper, box.upper)

    def test_shape_validation(self):
        box = Box(np.zeros(2), np.ones(2))
        with pytest.raises(ValueError, match="lower_a"):
            SymbolicBounds(box, np.zeros((3, 5)), np.zeros(3), np.zeros((3, 2)), np.zeros(3))

    def test_dim_mismatch_in_transform(self):
        box = Box(np.zeros(2), np.ones(2))
        bounds = SymbolicBounds.identity(box)
        with pytest.raises(ValueError, match="dim"):
            transform(bounds, ReLUOp(5))


class TestExactness:
    def test_affine_chain_is_exact(self):
        """Symbolic propagation loses nothing on affine compositions
        (interval arithmetic does)."""
        model = Sequential([Dense(5), Dense(4), Dense(2)], input_shape=(3,), seed=3)
        net = model.full_network()
        box = Box(-np.ones(3), np.ones(3))
        symbolic = propagate_symbolic(net, box)
        corners = np.array(
            [[a, b, c] for a in (-1, 1) for b in (-1, 1) for c in (-1, 1)],
            dtype=float,
        )
        outputs = net.apply(corners)
        np.testing.assert_allclose(symbolic.lower, outputs.min(axis=0), atol=1e-9)
        np.testing.assert_allclose(symbolic.upper, outputs.max(axis=0), atol=1e-9)

    def test_tighter_than_interval_on_affine_chain(self):
        model = Sequential([Dense(6), Dense(6), Dense(2)], input_shape=(4,), seed=5)
        net = model.full_network()
        box = Box(-np.ones(4), np.ones(4))
        symbolic = propagate_symbolic(net, box)
        interval = propagate_box(net, box)
        assert np.all(symbolic.lower >= interval.lower - 1e-9)
        assert np.all(symbolic.upper <= interval.upper + 1e-9)
        assert symbolic.upper[0] < interval.upper[0]  # strictly for deep chains

    def test_point_box_exact_through_relu(self):
        model = Sequential([Dense(5), ReLU(), Dense(2)], input_shape=(3,), seed=7)
        net = model.full_network()
        x = np.array([0.4, -0.2, 0.9])
        out = propagate_symbolic(net, Box(x, x))
        expected = net.apply(x)
        np.testing.assert_allclose(out.lower, expected, atol=1e-9)
        np.testing.assert_allclose(out.upper, expected, atol=1e-9)


class TestSoundness:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_relu_network_sound(self, seed):
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Dense(7), ReLU(), Dense(5), ReLU(), Dense(2)],
            input_shape=(4,),
            seed=seed % 59,
        )
        net = model.full_network()
        box = Box(-rng.uniform(0.1, 2, 4), rng.uniform(0.1, 2, 4))
        out = propagate_symbolic(net, box)
        samples = net.apply(box.sample(rng, 400))
        assert np.all(samples >= out.lower[None, :] - 1e-9)
        assert np.all(samples <= out.upper[None, :] + 1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_leaky_relu_sound(self, seed):
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Dense(6), LeakyReLU(0.1), Dense(2)], input_shape=(3,), seed=seed % 43
        )
        net = model.full_network()
        box = Box(-np.ones(3), np.ones(3))
        out = propagate_symbolic(net, box)
        samples = net.apply(box.sample(rng, 300))
        assert np.all(samples >= out.lower[None, :] - 1e-9)
        assert np.all(samples <= out.upper[None, :] + 1e-9)

    def test_maxpool_network_sound(self):
        model = Sequential(
            [Conv2D(2, 3, padding=1), ReLU(), MaxPool2D(2), Flatten(), Dense(2)],
            input_shape=(1, 4, 4),
            seed=9,
        )
        net = model.full_network()
        rng = np.random.default_rng(1)
        box = Box(np.zeros(16), np.ones(16))
        out = propagate_symbolic(net, box)
        samples = net.apply(box.sample(rng, 300))
        assert np.all(samples >= out.lower[None, :] - 1e-9)
        assert np.all(samples <= out.upper[None, :] + 1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_never_looser_than_interval_on_relu_nets(self, seed):
        """DeepPoly-style bounds refine interval bounds on this op set."""
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Dense(6), ReLU(), Dense(2)], input_shape=(3,), seed=seed % 29
        )
        net = model.full_network()
        box = Box(-np.ones(3), np.ones(3))
        symbolic = propagate_symbolic(net, box)
        interval = propagate_box(net, box)
        assert np.all(symbolic.lower >= interval.lower - 1e-9)
        assert np.all(symbolic.upper <= interval.upper + 1e-9)
