"""Unit and property tests for the MILP encoder — the exactness core.

The central invariant: every feasible MILP assignment decodes to a
cut-layer vector whose *real* network image equals the encoded output
variables, and conversely every real evaluation inside the feature set
satisfies the encoding with appropriately set binaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Dense, LeakyReLU, MaxPool2D, ReLU, Sequential
from repro.nn import Conv2D, Flatten
from repro.properties.risk import RiskCondition, output_geq, output_leq
from repro.verification.assume_guarantee import (
    box_from_data,
    box_with_diffs_from_data,
)
from repro.verification.milp.encoder import encode_verification_problem
from repro.verification.sets import Box
from repro.verification.solver import BranchAndBoundSolver


def _trivial_risk(dim):
    """Always-satisfiable risk (y0 >= -huge): isolates the encoding."""
    return RiskCondition("any", (output_geq(dim, 0, -1e6),))


class TestEncodingStructure:
    def test_dimension_checks(self):
        model = Sequential([Dense(4), ReLU(), Dense(2)], input_shape=(3,), seed=0)
        net = model.full_network()
        box = Box(-np.ones(3), np.ones(3))
        with pytest.raises(ValueError, match="risk condition"):
            encode_verification_problem(net, box, _trivial_risk(5))

    def test_characterizer_dimension_checks(self):
        model = Sequential([Dense(4), ReLU(), Dense(2)], input_shape=(3,), seed=0)
        net = model.full_network()
        box = Box(-np.ones(3), np.ones(3))
        bad_char = Sequential([Dense(1)], input_shape=(5,), seed=1).full_network()
        with pytest.raises(ValueError, match="characterizer input"):
            encode_verification_problem(net, box, _trivial_risk(2), bad_char)
        bad_out = Sequential([Dense(2)], input_shape=(3,), seed=1).full_network()
        with pytest.raises(ValueError, match="single logit"):
            encode_verification_problem(net, box, _trivial_risk(2), bad_out)

    def test_stable_neurons_need_no_binaries(self):
        # inputs strictly positive + positive weights => all ReLUs stable
        model = Sequential([Dense(4), ReLU()], input_shape=(2,), seed=0)
        for layer in model.layers:
            for p in layer.parameters():
                p.value[...] = np.abs(p.value) + 0.1
        net = model.full_network()
        box = Box(np.array([0.5, 0.5]), np.array([1.0, 1.0]))
        problem = encode_verification_problem(net, box, _trivial_risk(4))
        assert problem.model.num_binaries == 0

    def test_unstable_neurons_get_binaries(self):
        model = Sequential([Dense(4), ReLU()], input_shape=(2,), seed=0)
        net = model.full_network()
        box = Box(-np.ones(2), np.ones(2))
        problem = encode_verification_problem(net, box, _trivial_risk(4))
        assert problem.model.num_binaries > 0


class TestEncodingExactness:
    @given(st.integers(0, 100_000))
    @settings(max_examples=25, deadline=None)
    def test_witness_replays_through_real_network(self, seed):
        """SAT witnesses are exact network evaluations (ReLU nets)."""
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Dense(6), ReLU(), Dense(5), ReLU(), Dense(2)],
            input_shape=(4,),
            seed=seed % 61,
        )
        net = model.full_network()
        features = rng.normal(size=(40, 4))
        sbox = box_with_diffs_from_data(features)
        risk = _trivial_risk(2)
        problem = encode_verification_problem(net, sbox, risk)
        result = BranchAndBoundSolver().solve(problem.model)
        assert result.is_sat  # trivially satisfiable risk
        decoded_in = problem.decode_input(result.witness)
        decoded_out = problem.decode_output(result.witness)
        np.testing.assert_allclose(net.apply(decoded_in), decoded_out, atol=1e-6)
        assert sbox.contains(decoded_in[None, :])[0]

    @given(st.integers(0, 100_000))
    @settings(max_examples=15, deadline=None)
    def test_leaky_relu_exactness(self, seed):
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Dense(5), LeakyReLU(0.1), Dense(2)], input_shape=(3,), seed=seed % 53
        )
        net = model.full_network()
        sbox = box_from_data(rng.normal(size=(30, 3)))
        problem = encode_verification_problem(net, sbox, _trivial_risk(2))
        result = BranchAndBoundSolver().solve(problem.model)
        assert result.is_sat
        decoded_in = problem.decode_input(result.witness)
        decoded_out = problem.decode_output(result.witness)
        np.testing.assert_allclose(net.apply(decoded_in), decoded_out, atol=1e-6)

    def test_maxpool_exactness(self):
        model = Sequential(
            [Conv2D(2, 3, padding=1), ReLU(), MaxPool2D(2), Flatten(), Dense(2)],
            input_shape=(1, 4, 4),
            seed=3,
        )
        net = model.full_network()
        rng = np.random.default_rng(4)
        sbox = box_from_data(rng.uniform(0, 1, size=(30, 16)))
        problem = encode_verification_problem(net, sbox, _trivial_risk(2))
        result = BranchAndBoundSolver().solve(problem.model)
        assert result.is_sat
        decoded_in = problem.decode_input(result.witness)
        decoded_out = problem.decode_output(result.witness)
        np.testing.assert_allclose(net.apply(decoded_in), decoded_out, atol=1e-6)

    @given(st.integers(0, 100_000))
    @settings(max_examples=20, deadline=None)
    def test_completeness_no_false_unsat(self, seed):
        """If a real point triggers the risk, the MILP must be SAT."""
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Dense(6), ReLU(), Dense(2)], input_shape=(3,), seed=seed % 47
        )
        net = model.full_network()
        features = rng.normal(size=(50, 3))
        sbox = box_from_data(features)
        outputs = net.apply(features)
        # risk achievable by construction: y0 >= median of observed outputs
        threshold = float(np.median(outputs[:, 0]))
        risk = RiskCondition("reach", (output_geq(2, 0, threshold),))
        problem = encode_verification_problem(net, sbox, risk)
        result = BranchAndBoundSolver().solve(problem.model)
        assert result.is_sat

    def test_unsat_when_risk_unreachable(self):
        model = Sequential([Dense(4), ReLU(), Dense(2)], input_shape=(3,), seed=9)
        net = model.full_network()
        rng = np.random.default_rng(9)
        sbox = box_from_data(rng.normal(size=(50, 3)))
        # find a certainly-unreachable threshold via interval propagation
        from repro.verification.abstraction.interval import propagate_box

        hull = propagate_box(net, Box(*sbox.bounds()))
        risk = RiskCondition("never", (output_geq(2, 0, float(hull.upper[0]) + 1.0),))
        problem = encode_verification_problem(net, sbox, risk)
        result = BranchAndBoundSolver().solve(problem.model)
        assert result.is_unsat


class TestElementwiseAffineEncoding:
    def test_batchnorm_led_suffix_is_exact(self, rng):
        """A suffix starting with BatchNorm encodes via the diagonal op."""
        from repro.nn import BatchNorm
        from repro.nn.graph import ElementwiseAffineOp

        model = Sequential(
            [Dense(5), ReLU(), BatchNorm(), Dense(2)], input_shape=(3,), seed=4
        )
        model.forward(rng.normal(size=(32, 3)), training=True)
        model.invalidate_lowering()
        net = model.suffix_network(2)  # BatchNorm leads: nothing to fold into
        assert any(isinstance(op, ElementwiseAffineOp) for op in net.ops)
        features = model.prefix_apply(rng.normal(size=(30, 3)), 2)
        sbox = box_from_data(features)
        problem = encode_verification_problem(net, sbox, _trivial_risk(2))
        result = BranchAndBoundSolver().solve(problem.model)
        assert result.is_sat
        decoded_in = problem.decode_input(result.witness)
        decoded_out = problem.decode_output(result.witness)
        np.testing.assert_allclose(net.apply(decoded_in), decoded_out, atol=1e-6)

    def test_batchnorm_led_suffix_relaxed_encoding(self, rng):
        from repro.nn import BatchNorm
        from repro.verification.milp.relaxed import encode_relaxed_problem
        from repro.verification.solver.lp import solve_lp_relaxation

        model = Sequential(
            [Dense(5), ReLU(), BatchNorm(), Dense(2)], input_shape=(3,), seed=4
        )
        model.forward(rng.normal(size=(32, 3)), training=True)
        model.invalidate_lowering()
        net = model.suffix_network(2)
        features = model.prefix_apply(rng.normal(size=(30, 3)), 2)
        sbox = box_from_data(features)
        problem = encode_relaxed_problem(net, sbox, _trivial_risk(2))
        lp = solve_lp_relaxation(problem.model.to_arrays())
        assert lp.feasible


class TestCharacterizerConjunct:
    def test_characterizer_restricts_feasible_region(self):
        rng = np.random.default_rng(5)
        model = Sequential([Dense(4), ReLU(), Dense(2)], input_shape=(3,), seed=5)
        net = model.full_network()
        sbox = box_from_data(rng.normal(size=(50, 3)))
        # characterizer: accepts iff x0 >= 0.5 (hand-built single affine)
        char = Sequential([Dense(1)], input_shape=(3,), seed=0)
        char.layers[0].weight.value[...] = np.array([[1.0], [0.0], [0.0]])
        char.layers[0].bias.value[...] = np.array([-0.5])
        problem = encode_verification_problem(
            net, sbox, _trivial_risk(2), char.full_network()
        )
        result = BranchAndBoundSolver().solve(problem.model)
        assert result.is_sat
        decoded_in = problem.decode_input(result.witness)
        assert decoded_in[0] >= 0.5 - 1e-9

    def test_infeasible_characterizer_gives_unsat(self):
        rng = np.random.default_rng(6)
        model = Sequential([Dense(4), ReLU(), Dense(2)], input_shape=(3,), seed=6)
        net = model.full_network()
        sbox = box_from_data(rng.uniform(-1, 1, size=(50, 3)))
        # characterizer logit is constant -1: never accepts
        char = Sequential([Dense(1)], input_shape=(3,), seed=0)
        char.layers[0].weight.value[...] = 0.0
        char.layers[0].bias.value[...] = np.array([-1.0])
        problem = encode_verification_problem(
            net, sbox, _trivial_risk(2), char.full_network()
        )
        result = BranchAndBoundSolver().solve(problem.model)
        assert result.is_unsat
