"""The structural (neuron-merging) refinement axis of the CEGAR loop.

Regression coverage for the second refinement move: verdict agreement
with pure region splitting, deterministic two-axis interleaving under a
fixed seed, checkpoint/resume with merged programs in flight, and the
pool degrade path when a worker dies mid-structural-round.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perception.network import build_mlp_perception_network
from repro.properties.risk import RiskCondition, output_geq
from repro.verification.cegar import CegarConfig, CegarLoop, Subproblem
from repro.verification.sets import Box
from repro.verification.solver.result import SolveStatus


@pytest.fixture(scope="module")
def model():
    return build_mlp_perception_network(
        input_dim=4, hidden=(8,), feature_width=4, seed=1
    )


@pytest.fixture(scope="module")
def reachable(model):
    rng = np.random.default_rng(0)
    out = model.forward(rng.uniform(0, 1, size=(4000, 4)), training=False)
    return float(out[:, 0].min()), float(out[:, 0].max())


def _risk(threshold: float) -> RiskCondition:
    return RiskCondition("y0-high", (output_geq(2, 0, threshold),))


def _loop(model, threshold: float, *, structural: bool, **kwargs) -> CegarLoop:
    return CegarLoop(
        model, _risk(threshold), 0.0, 1.0, cut_layer=2,
        config=CegarConfig(solve_depth=3, structural=structural, **kwargs),
    )


def _trace_key(result) -> list[dict]:
    """Round records minus wall-clock noise."""
    rounds = [r.to_dict() for r in result.trace.rounds]
    for record in rounds:
        record.pop("elapsed")
    return rounds


class TestVerdictAgreement:
    def test_unsat_matches_region_only_and_uses_structural_moves(
        self, model, reachable
    ):
        threshold = reachable[1] + 0.3
        region = _loop(model, threshold, structural=False).run(budget=2000)
        structural_loop = _loop(model, threshold, structural=True)
        structural = structural_loop.run(budget=2000)

        assert region.status is SolveStatus.UNSAT
        assert structural.status is SolveStatus.UNSAT
        assert structural.decided_fraction == pytest.approx(1.0)
        # the borderline threshold forces the abstraction to refine: the
        # interleave really exercised both axes
        assert structural_loop.structural_refinements >= 1
        assert sum(r.structural_splits for r in structural.trace.rounds) == (
            structural_loop.structural_refinements
        )

    def test_sat_witness_is_genuine_under_structural(self, model, reachable):
        lo, hi = reachable
        threshold = 0.5 * (lo + hi)
        loop = _loop(model, threshold, structural=True)
        result = loop.run(budget=200)

        assert result.status is SolveStatus.SAT
        cex = result.counterexample
        assert cex is not None and cex.risk_occurs
        assert np.all(cex.image >= 0.0) and np.all(cex.image <= 1.0)
        replay = model.forward(cex.image[None, ...], training=False)[0]
        assert float(_risk(threshold).margin(replay[None, :])[0]) >= 0.0

    def test_clearly_safe_region_needs_no_structural_move(self, model, reachable):
        loop = _loop(model, reachable[1] + 50.0, structural=True)
        result = loop.run(budget=8)
        assert result.status is SolveStatus.UNSAT
        assert loop.structural_refinements == 0

    def test_unsupported_suffix_degrades_to_region_splitting(
        self, model, reachable, monkeypatch
    ):
        # a suffix that is not a bare affine/relu chain raises
        # MergeUnsupported at merge time: the structural axis must
        # disable itself permanently instead of failing the run
        from repro.verification.abstraction.merge import MergeUnsupported

        def refuse(cls, *args, **kwargs):
            raise MergeUnsupported("not an affine/relu chain")

        monkeypatch.setattr(
            "repro.verification.cegar.MergeState.coarsest", classmethod(refuse)
        )
        loop = _loop(model, reachable[1] + 0.3, structural=True)
        result = loop.run(budget=2000)
        assert result.status is SolveStatus.UNSAT
        assert loop.structural_refinements == 0
        assert loop._merge_failed and loop._merge is None


class TestDeterminism:
    def test_two_axis_interleave_is_reproducible(self, model, reachable):
        threshold = reachable[1] + 0.3
        first = _loop(model, threshold, structural=True).run(budget=2000)
        second = _loop(model, threshold, structural=True).run(budget=2000)

        assert first.status is second.status
        assert _trace_key(first) == _trace_key(second)


class TestInterruptResume:
    def test_interrupt_after_structural_move_leaves_resumable_frontier(
        self, model, reachable, monkeypatch
    ):
        loop = _loop(model, reachable[1] + 0.3, structural=True)
        original = loop._maybe_structural_refine

        def interrupt_after_refine(undecided):
            applied = original(undecided)
            if applied:
                loop.request_interrupt()
            return applied

        monkeypatch.setattr(loop, "_maybe_structural_refine", interrupt_after_refine)
        first = loop.run(budget=2000)

        assert loop.interrupted
        assert first.status is SolveStatus.UNKNOWN
        assert loop.frontier_size > 0
        version_at_checkpoint = loop.structural_refinements
        assert version_at_checkpoint >= 1

        # resume: the merge state survives the checkpoint — refinement
        # continues from where it stopped instead of re-merging
        monkeypatch.setattr(loop, "_maybe_structural_refine", original)
        second = loop.run(budget=2000)
        assert second.status is SolveStatus.UNSAT
        assert second.decided_fraction == pytest.approx(1.0)
        assert loop.structural_refinements >= version_at_checkpoint


class TestPoolDegrade:
    def test_broken_pool_mid_structural_round_degrades_sequential(self, model):
        from concurrent.futures.process import BrokenProcessPool

        loop = _loop(model, 100.0, structural=True, solver="highs")
        state = loop._merge_state()
        assert state is not None and not state.is_refined

        class DeadPool:
            shutdowns = 0

            def map(self, *args, **kwargs):
                raise BrokenProcessPool("worker died")

            def shutdown(self, wait=True, cancel_futures=False):
                DeadPool.shutdowns += 1

        loop._pool = DeadPool()
        loop._pool_size = 2
        loop._pool_workers = 2
        loop._pool_merge_version = loop._merge_version

        cut = loop._root_box_at_cut()
        leaves = [
            (
                Subproblem(
                    np.zeros(4), np.ones(4), depth=1, volume=0.5, path=f"/{i}"
                ),
                Box(cut.lower.copy(), cut.upper.copy()),
            )
            for i in range(3)
        ]
        results = loop._solve_leaves(leaves)
        assert len(results) == 3  # merged leaves re-solved sequentially
        assert all(r.status is SolveStatus.UNSAT for r in results)
        assert loop._pool is None
        assert DeadPool.shutdowns == 1

        # a structural refinement after the degrade must NOT resurrect
        # the pool: refresh only swaps a pool that still exists
        loop._merge_version += 1
        loop._refresh_pool_if_stale()
        assert loop._pool is None

    def test_stale_pool_is_rebuilt_after_structural_move(self, model):
        loop = _loop(model, 100.0, structural=True)
        rebuilt = []

        class StalePool:
            def shutdown(self, wait=True, cancel_futures=False):
                rebuilt.append("shutdown")

        loop._pool = StalePool()
        loop._pool_merge_version = loop._merge_version
        loop._refresh_pool_if_stale()  # version matches: no-op
        assert rebuilt == []

        loop._requested_workers = 1  # rebuild resolves to in-process
        loop._merge_version += 1
        loop._refresh_pool_if_stale()
        assert rebuilt == ["shutdown"]  # the stale pool was discarded
        assert loop._pool is None  # one worker: rebuilt as sequential
