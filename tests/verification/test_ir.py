"""Unit tests for the lowered network IR (repro.verification.ir)."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.autodiff import input_gradient
from repro.nn.graph import (
    AffineOp,
    ConvOp,
    ElementwiseAffineOp,
    MonotoneOp,
    ReshapeOp,
)
from repro.verification.ir import (
    LoweredProgram,
    lower_network,
    lowered_full,
    lowered_prefix,
    lowered_suffix,
    lowering_stats,
    reset_lowering_stats,
)


@pytest.fixture
def convnet(rng):
    model = Sequential(
        [
            Conv2D(3, 3),
            BatchNorm(),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dropout(0.3),
            Dense(10),
            Tanh(),
            Dense(4),
            ReLU(),
            Dense(2),
        ],
        input_shape=(1, 10, 10),
        seed=3,
    )
    # warm the batchnorm running statistics so eval mode is non-trivial
    model.forward(rng.random((32, 1, 10, 10)), training=True)
    model.invalidate_lowering()
    return model


class TestLowering:
    def test_program_matches_forward(self, convnet, rng):
        x = rng.random((8, 1, 10, 10))
        program = lowered_full(convnet)
        np.testing.assert_allclose(
            program.apply(x.reshape(8, -1)),
            convnet.forward(x, training=False),
            atol=1e-12,
        )

    def test_batchnorm_folds_into_conv(self, convnet):
        """No standalone elementwise-affine op survives after a conv."""
        program = lowered_full(convnet)
        kinds = [type(op) for op in program.ops]
        assert ConvOp in kinds
        assert ElementwiseAffineOp not in kinds

    def test_dropout_lowers_to_nothing(self, convnet):
        program = lowered_full(convnet)
        names = {type(op).__name__ for op in program.ops}
        assert "Dropout" not in names
        # the op count is exactly conv, relu, maxpool, reshape,
        # dense, tanh, dense, relu, dense
        assert len(program.ops) == 9

    def test_leading_batchnorm_stays_elementwise(self, rng):
        model = Sequential(
            [BatchNorm(), Dense(3)], input_shape=(4,), seed=0
        )
        model.forward(rng.random((16, 4)), training=True)
        model.invalidate_lowering()
        program = lowered_full(model)
        assert isinstance(program.ops[0], ElementwiseAffineOp)
        x = rng.random((5, 4))
        np.testing.assert_allclose(
            program.apply(x), model.forward(x), atol=1e-12
        )

    def test_monotone_ops_carry_prefix_activations(self, convnet):
        program = lowered_full(convnet)
        assert any(
            isinstance(op, MonotoneOp) and op.kind == "tanh" for op in program.ops
        )

    def test_op_layers_provenance(self, convnet):
        program = lowered_full(convnet)
        assert len(program.op_layers) == len(program.ops)
        assert program.op_layers[0] == 0  # conv (with folded batchnorm)
        assert list(program.op_layers) == sorted(program.op_layers)

    def test_sigmoid_prefix_lowers(self, rng):
        model = Sequential(
            [Dense(5), Sigmoid(), Dense(2)], input_shape=(3,), seed=1
        )
        program = lowered_full(model)
        x = rng.random((4, 3))
        np.testing.assert_allclose(program.apply(x), model.forward(x), atol=1e-12)


class TestPiecewiseLinearView:
    def test_suffix_materializes_conv(self, convnet):
        program = lower_network(convnet, 0, 5, piecewise_linear=True)
        assert all(not isinstance(op, ConvOp) for op in program.ops)
        assert program.piecewise_linear

    def test_suffix_rejects_monotone(self, convnet):
        with pytest.raises(ValueError, match="not.*piecewise-linear"):
            lowered_suffix(convnet, 6)  # suffix includes the Tanh

    def test_reshape_is_identity_flat(self):
        op = ReshapeOp((2, 3), (6,))
        x = np.arange(12.0).reshape(2, 6)
        np.testing.assert_array_equal(op.apply(x), x)
        with pytest.raises(ValueError, match="element count"):
            ReshapeOp((2, 3), (5,))

    def test_suffix_network_routes_through_ir(self, convnet):
        assert isinstance(convnet.suffix_network(8), LoweredProgram)


class TestCache:
    def test_cache_hits_across_consumers(self, convnet):
        convnet.invalidate_lowering()
        reset_lowering_stats()
        a = lowered_prefix(convnet, 8)
        b = lowered_prefix(convnet, 8)
        c = lowered_suffix(convnet, 8)
        d = convnet.suffix_network(8)
        assert a is b and c is d
        stats = lowering_stats()
        assert stats["hits"] >= 2

    def test_training_forward_invalidates(self, convnet, rng):
        """BatchNorm recalibration (no backward!) must drop the cache."""
        program = lowered_full(convnet)
        x = rng.random((16, 1, 10, 10)) + 2.0  # shift the running stats
        convnet.forward(x, training=True)
        fresh = lowered_full(convnet)
        assert fresh is not program
        probe = rng.random((4, 1, 10, 10))
        np.testing.assert_allclose(
            fresh.apply(probe.reshape(4, -1)),
            convnet.forward(probe, training=False),
            atol=1e-12,
        )

    def test_backward_invalidates(self, convnet, rng):
        program = lowered_full(convnet)
        out = convnet.forward(rng.random((2, 1, 10, 10)), training=True)
        convnet.backward(np.ones_like(out))
        assert lowered_full(convnet) is not program

    def test_pickle_drops_cache(self, convnet):
        import pickle

        lowered_full(convnet)
        clone = pickle.loads(pickle.dumps(convnet))
        assert "_lowering_cache" not in clone.__dict__


class TestValueAndGradient:
    def test_matches_autodiff(self, convnet, rng):
        x = rng.random((6, 1, 10, 10))
        directions = rng.normal(size=(6, 2))
        program = lowered_full(convnet)
        values, grads = program.value_and_input_gradient(
            x.reshape(6, -1), directions
        )
        ref_values, ref_grads = input_gradient(convnet, x, directions)
        np.testing.assert_allclose(values, ref_values, atol=1e-10)
        np.testing.assert_allclose(
            grads.reshape(x.shape), ref_grads, atol=1e-10
        )

    def test_shape_validation(self, convnet, rng):
        program = lowered_full(convnet)
        with pytest.raises(ValueError, match="inputs"):
            program.value_and_input_gradient(np.zeros((2, 3)), np.zeros((2, 2)))
        with pytest.raises(ValueError, match="directions"):
            program.value_and_input_gradient(
                np.zeros((2, program.in_dim)), np.zeros((3, 2))
            )


class TestConvOp:
    def test_as_affine_matches(self, rng):
        model = Sequential([Conv2D(2, 3)], input_shape=(1, 6, 6), seed=7)
        (conv_op,) = model.layers[0].as_abstract_ops()
        affine = conv_op.as_affine()
        x = rng.random((4, conv_op.in_dim))
        np.testing.assert_allclose(affine.apply(x), conv_op.apply(x), atol=1e-10)

    def test_as_affine_entry_guard(self, rng):
        model = Sequential([Conv2D(2, 3)], input_shape=(1, 6, 6), seed=7)
        (conv_op,) = model.layers[0].as_abstract_ops()
        with pytest.raises(ValueError, match="materialization"):
            conv_op.as_affine(max_entries=4)
