"""Unit tests for S~ construction from data (Section II.B.b)."""

import numpy as np
import pytest

from repro.verification.assume_guarantee import (
    box_from_data,
    box_with_diffs_from_data,
    coverage,
    feature_set_from_data,
    octagon_from_data,
)
from repro.verification.sets import Box, BoxWithDiffs, Polyhedron


@pytest.fixture
def features(rng):
    return rng.normal(size=(100, 5))


class TestBoxFromData:
    def test_figure1_example(self):
        """The paper's Figure 1: visited {0, 0.1, -0.1, ..., 0.6} -> [-0.1, 0.6]."""
        visited = np.array([[0.0], [0.1], [-0.1], [0.3], [0.6]])
        box = box_from_data(visited)
        assert box.lower[0] == pytest.approx(-0.1)
        assert box.upper[0] == pytest.approx(0.6)

    def test_tight_hull(self, features):
        box = box_from_data(features)
        np.testing.assert_array_equal(box.lower, features.min(axis=0))
        np.testing.assert_array_equal(box.upper, features.max(axis=0))

    def test_margin_widens(self, features):
        tight = box_from_data(features)
        wide = box_from_data(features, margin=0.5)
        np.testing.assert_allclose(wide.lower, tight.lower - 0.5)

    def test_all_data_covered(self, features):
        assert coverage(box_from_data(features), features) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="zero samples"):
            box_from_data(np.zeros((0, 3)))
        with pytest.raises(ValueError, match="non-finite"):
            box_from_data(np.array([[np.nan, 1.0]]))
        with pytest.raises(ValueError, match="\\(N, d\\)"):
            box_from_data(np.zeros(5))


class TestBoxWithDiffsFromData:
    def test_diff_bounds_tight(self, features):
        s = box_with_diffs_from_data(features)
        diffs = np.diff(features, axis=1)
        np.testing.assert_array_equal(s.diff_lower, diffs.min(axis=0))
        np.testing.assert_array_equal(s.diff_upper, diffs.max(axis=0))

    def test_strictly_tighter_than_box(self, rng):
        """Correlated features: diff constraints cut box volume."""
        base = rng.normal(size=(200, 1))
        features = np.hstack([base, base + rng.normal(0, 0.01, size=(200, 1))])
        s = box_with_diffs_from_data(features)
        box = box_from_data(features)
        probe = box.sample(rng, 2000)
        assert s.contains(probe).sum() < box.contains(probe).sum()

    def test_covers_training_data(self, features):
        assert coverage(box_with_diffs_from_data(features), features) == 1.0

    def test_needs_two_features(self):
        with pytest.raises(ValueError, match="at least 2"):
            box_with_diffs_from_data(np.zeros((5, 1)))


class TestOctagonFromData:
    def test_covers_training_data(self, features):
        assert coverage(octagon_from_data(features), features) == 1.0

    def test_tighter_than_box_with_diffs(self, rng):
        base = rng.normal(size=(100, 1))
        features = np.hstack(
            [base, rng.normal(size=(100, 1)), base + rng.normal(0, 0.01, (100, 1))]
        )
        oct_set = octagon_from_data(features)
        diff_set = box_with_diffs_from_data(features)
        probe = oct_set.box.sample(rng, 3000)
        assert oct_set.contains(probe).sum() <= diff_set.contains(probe).sum()


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls", [("box", Box), ("box+diff", BoxWithDiffs), ("box+pairs", Polyhedron)]
    )
    def test_kinds(self, features, kind, cls):
        assert isinstance(feature_set_from_data(features, kind=kind), cls)

    def test_unknown_kind(self, features):
        with pytest.raises(ValueError, match="unknown set kind"):
            feature_set_from_data(features, kind="ball")

    def test_negative_margin(self, features):
        with pytest.raises(ValueError, match="margin"):
            feature_set_from_data(features, margin=-0.1)


class TestCoverage:
    def test_heldout_coverage_below_one(self, rng):
        train = rng.normal(size=(50, 4))
        heldout = rng.normal(size=(2000, 4))
        c = coverage(box_from_data(train), heldout)
        assert 0.0 < c < 1.0

    def test_margin_improves_heldout_coverage(self, rng):
        train = rng.normal(size=(50, 4))
        heldout = rng.normal(size=(2000, 4))
        tight = coverage(box_from_data(train), heldout)
        wide = coverage(box_from_data(train, margin=1.0), heldout)
        assert wide > tight
