"""Unit tests for octagon-difference bounds and input-box propagation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    Sigmoid,
)
from repro.verification.abstraction.octagon import (
    adjacent_difference_bounds,
    box_with_diffs_from_box,
    box_with_diffs_from_zonotope,
)
from repro.verification.abstraction.propagate import region_boxes
from repro.verification.abstraction.zonotope import Zonotope, propagate_zonotope
from repro.verification.sets import Box, BoxBatch


def _input_box(model, lower, upper, to_layer):
    """Whole-input-box prefix propagation via the canonical registry
    path (batch of one); scalars broadcast to the input shape."""
    shape = model.input_shape
    lo = np.broadcast_to(np.asarray(lower, dtype=float), shape).copy()
    hi = np.broadcast_to(np.asarray(upper, dtype=float), shape).copy()
    return region_boxes(model, BoxBatch(lo[None], hi[None]), to_layer).box(0)


class TestAdjacentDifferenceBounds:
    def test_shared_generators_tighten(self):
        # x0 and x1 move together: difference is exactly 1
        z = Zonotope(np.array([0.0, 1.0]), np.array([[3.0, 3.0]]))
        dlo, dhi = adjacent_difference_bounds(z)
        assert dlo[0] == pytest.approx(1.0)
        assert dhi[0] == pytest.approx(1.0)

    def test_independent_generators_add(self):
        z = Zonotope(np.zeros(2), np.array([[1.0, 0.0], [0.0, 1.0]]))
        dlo, dhi = adjacent_difference_bounds(z)
        assert dlo[0] == -2.0 and dhi[0] == 2.0

    def test_sound_against_samples(self):
        rng = np.random.default_rng(0)
        z = Zonotope(rng.normal(size=4), rng.normal(size=(6, 4)))
        dlo, dhi = adjacent_difference_bounds(z)
        diffs = np.diff(z.sample(rng, 500), axis=1)
        assert np.all(diffs >= dlo[None, :] - 1e-9)
        assert np.all(diffs <= dhi[None, :] + 1e-9)

    def test_needs_two_dims(self):
        with pytest.raises(ValueError, match="at least 2"):
            adjacent_difference_bounds(Zonotope(np.zeros(1), np.zeros((0, 1))))


class TestBoxWithDiffsConstructors:
    def test_from_zonotope_tighter_than_from_box(self):
        z = Zonotope(np.zeros(3), np.array([[1.0, 1.0, 1.0]]))
        from_z = box_with_diffs_from_zonotope(z)
        from_b = box_with_diffs_from_box(z.to_box())
        assert np.all(from_z.diff_upper <= from_b.diff_upper + 1e-12)
        assert np.all(from_z.diff_lower >= from_b.diff_lower - 1e-12)

    def test_from_box_diffs_are_interval_arithmetic(self):
        box = Box(np.array([0.0, 2.0]), np.array([1.0, 5.0]))
        s = box_with_diffs_from_box(box)
        assert s.diff_lower[0] == 1.0  # 2 - 1
        assert s.diff_upper[0] == 5.0  # 5 - 0


class TestPropagateInputBox:
    def _convnet(self):
        return Sequential(
            [
                Conv2D(3, 3, stride=2, padding=1),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(8),
                BatchNorm(),
                ReLU(),
                Dense(2),
            ],
            input_shape=(1, 8, 8),
            seed=13,
        )

    def test_soundness_through_conv_stack(self):
        model = self._convnet()
        # prime BatchNorm statistics
        rng = np.random.default_rng(1)
        model.forward(rng.uniform(0, 1, size=(32, 1, 8, 8)), training=True)
        cut = 7
        box = _input_box(model, 0.0, 1.0, cut)
        images = rng.uniform(0, 1, size=(300, 1, 8, 8))
        features = model.prefix_apply(images, cut)
        assert np.all(features >= box.lower[None, :] - 1e-9)
        assert np.all(features <= box.upper[None, :] + 1e-9)

    def test_point_input_is_exact(self):
        model = self._convnet()
        rng = np.random.default_rng(2)
        model.forward(rng.uniform(0, 1, size=(32, 1, 8, 8)), training=True)
        x = rng.uniform(0, 1, size=(1, 8, 8))
        box = _input_box(model, x, x, model.num_layers)
        expected = model.forward(x[None])[0]
        np.testing.assert_allclose(box.lower, expected, atol=1e-10)
        np.testing.assert_allclose(box.upper, expected, atol=1e-10)

    def test_sigmoid_and_dropout_supported(self):
        model = Sequential(
            [Dense(5), Sigmoid(), Dropout(0.5), Dense(2)], input_shape=(3,), seed=3
        )
        box = _input_box(model, -1.0, 1.0, model.num_layers)
        rng = np.random.default_rng(4)
        x = rng.uniform(-1, 1, size=(200, 3))
        out = model.forward(x)
        assert np.all(out >= box.lower[None, :] - 1e-9)
        assert np.all(out <= box.upper[None, :] + 1e-9)

    def test_wider_input_gives_wider_features(self):
        model = self._convnet()
        rng = np.random.default_rng(5)
        model.forward(rng.uniform(0, 1, size=(32, 1, 8, 8)), training=True)
        narrow = _input_box(model, 0.4, 0.6, 5)
        wide = _input_box(model, 0.0, 1.0, 5)
        assert np.all(wide.lower <= narrow.lower + 1e-12)
        assert np.all(wide.upper >= narrow.upper - 1e-12)

    def test_invalid_input_box(self):
        model = self._convnet()
        with pytest.raises(ValueError, match="lower > upper"):
            _input_box(model, 1.0, 0.0, 2)

    @given(st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_zonotope_prefix_matches_interval_soundness(self, seed):
        """Zonotope propagation through dense prefixes is also sound."""
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Dense(6), ReLU(), Dense(4)], input_shape=(3,), seed=seed % 71
        )
        net = model.full_network()
        box = Box(-np.ones(3), np.ones(3))
        hull = propagate_zonotope(net, box).to_box()
        out = net.apply(box.sample(rng, 200))
        assert np.all(out >= hull.lower[None, :] - 1e-9)
        assert np.all(out <= hull.upper[None, :] + 1e-9)
