"""Unit and cross-validation tests for the Planet-style phase-split solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Conv2D, Dense, Flatten, LeakyReLU, MaxPool2D, ReLU, Sequential
from repro.properties.risk import RiskCondition, output_geq
from repro.verification.assume_guarantee import (
    box_from_data,
    box_with_diffs_from_data,
)
from repro.verification.milp.encoder import encode_verification_problem
from repro.verification.milp.relaxed import encode_relaxed_problem
from repro.verification.solver import BranchAndBoundSolver, HighsSolver
from repro.verification.solver.case_split import PhaseSplitSolver
from repro.verification.solver.result import SolveStatus


def _relu_net(seed=0, widths=(6, 5)):
    layers = []
    for w in widths:
        layers.extend([Dense(w), ReLU()])
    layers.append(Dense(2))
    model = Sequential(layers, input_shape=(4,), seed=seed)
    return model.full_network()


class TestRelaxedEncoding:
    def test_splits_recorded_for_unstable_neurons(self, rng):
        net = _relu_net()
        sbox = box_from_data(rng.normal(size=(40, 4)))
        risk = RiskCondition("any", (output_geq(2, 0, -1e6),))
        problem = encode_relaxed_problem(net, sbox, risk)
        assert problem.model.num_binaries == 0
        assert len(problem.splits) > 0
        for split in problem.splits:
            assert len(split.options) == 2

    def test_relaxation_contains_true_graph(self, rng):
        """Every real network evaluation satisfies the relaxation LP rows."""
        net = _relu_net(seed=3)
        features = rng.normal(size=(40, 4))
        sbox = box_from_data(features)
        risk = RiskCondition("any", (output_geq(2, 0, -1e6),))
        problem = encode_relaxed_problem(net, sbox, risk)
        arrays = problem.model.to_arrays()
        # reconstruct full variable assignments by replaying the encoder:
        # input vars then per-op outputs in order; easiest: solve LP with
        # inputs pinned to a data point and check feasibility
        from repro.verification.solver.lp import solve_lp_relaxation

        for point in features[:5]:
            lower = arrays.lower.copy()
            upper = arrays.upper.copy()
            for var, value in zip(problem.input_vars, point):
                lower[var] = upper[var] = float(value)
            result = solve_lp_relaxation(arrays, lower, upper)
            assert result.feasible

    def test_dimension_validation(self, rng):
        net = _relu_net()
        sbox = box_from_data(rng.normal(size=(10, 4)))
        with pytest.raises(ValueError, match="risk"):
            encode_relaxed_problem(net, sbox, RiskCondition("x", (output_geq(5, 0, 0.0),)))


class TestPhaseSplitSolver:
    def test_sat_witness_is_exact(self, rng):
        net = _relu_net(seed=5)
        features = rng.normal(size=(60, 4))
        sbox = box_with_diffs_from_data(features)
        outputs = net.apply(features)
        risk = RiskCondition(
            "reach", (output_geq(2, 0, float(np.median(outputs[:, 0]))),)
        )
        problem = encode_relaxed_problem(net, sbox, risk)
        result = PhaseSplitSolver().solve(problem)
        assert result.is_sat
        decoded_in = problem.decode_input(result.witness)
        decoded_out = problem.decode_output(result.witness)
        np.testing.assert_allclose(net.apply(decoded_in), decoded_out, atol=1e-5)
        assert sbox.contains(decoded_in[None, :], tol=1e-6)[0]

    def test_unsat_on_unreachable(self, rng):
        net = _relu_net(seed=7)
        sbox = box_from_data(rng.normal(size=(50, 4)))
        from repro.verification.abstraction.interval import propagate_box
        from repro.verification.sets import Box

        hull = propagate_box(net, Box(*sbox.bounds()))
        risk = RiskCondition("never", (output_geq(2, 0, float(hull.upper[0]) + 1.0),))
        problem = encode_relaxed_problem(net, sbox, risk)
        result = PhaseSplitSolver().solve(problem)
        assert result.is_unsat

    def test_node_limit_unknown(self, rng):
        net = _relu_net(seed=9, widths=(12, 12))
        sbox = box_from_data(rng.normal(size=(50, 4)) * 3)
        risk = RiskCondition("hard", (output_geq(2, 0, 1e4),))
        problem = encode_relaxed_problem(net, sbox, risk)
        result = PhaseSplitSolver(node_limit=1).solve(problem)
        assert result.status in (SolveStatus.UNKNOWN, SolveStatus.UNSAT)

    def test_maxpool_network(self, rng):
        model = Sequential(
            [Conv2D(2, 3, padding=1), ReLU(), MaxPool2D(2), Flatten(), Dense(2)],
            input_shape=(1, 4, 4),
            seed=11,
        )
        net = model.full_network()
        features = rng.uniform(0, 1, size=(40, 16))
        sbox = box_from_data(features)
        outputs = net.apply(features)
        risk = RiskCondition(
            "reach", (output_geq(2, 0, float(np.median(outputs[:, 0]))),)
        )
        problem = encode_relaxed_problem(net, sbox, risk)
        result = PhaseSplitSolver().solve(problem)
        assert result.is_sat
        decoded_in = problem.decode_input(result.witness)
        decoded_out = problem.decode_output(result.witness)
        np.testing.assert_allclose(net.apply(decoded_in), decoded_out, atol=1e-5)

    def test_leaky_relu_network(self, rng):
        model = Sequential(
            [Dense(6), LeakyReLU(0.1), Dense(2)], input_shape=(3,), seed=13
        )
        net = model.full_network()
        features = rng.normal(size=(40, 3))
        sbox = box_from_data(features)
        outputs = net.apply(features)
        risk = RiskCondition(
            "reach", (output_geq(2, 0, float(np.median(outputs[:, 0]))),)
        )
        problem = encode_relaxed_problem(net, sbox, risk)
        result = PhaseSplitSolver().solve(problem)
        assert result.is_sat
        decoded_in = problem.decode_input(result.witness)
        np.testing.assert_allclose(
            net.apply(decoded_in), problem.decode_output(result.witness), atol=1e-5
        )


class TestThreeEngineCrossValidation:
    """Big-M branch-and-bound, HiGHS and the phase-split engine must agree."""

    @given(st.integers(0, 100_000))
    @settings(max_examples=15, deadline=None)
    def test_agreement_on_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        net = _relu_net(seed=seed % 71, widths=(5, 4))
        features = rng.normal(size=(30, 4))
        sbox = box_with_diffs_from_data(features)
        outputs = net.apply(sbox.box.sample(rng, 200))
        threshold = float(np.quantile(outputs[:, 0], 0.97)) + rng.uniform(-0.2, 0.4)
        risk = RiskCondition("t", (output_geq(2, 0, threshold),))

        milp = encode_verification_problem(net, sbox, risk)
        relaxed = encode_relaxed_problem(net, sbox, risk)
        bb = BranchAndBoundSolver().solve(milp.model)
        hs = HighsSolver().solve(milp.model)
        ps = PhaseSplitSolver().solve(relaxed)
        assert bb.status == hs.status == ps.status

    def test_characterizer_conjunct_supported(self, rng):
        net = _relu_net(seed=21)
        features = rng.normal(size=(50, 4))
        sbox = box_from_data(features)
        char = Sequential([Dense(4), ReLU(), Dense(1)], input_shape=(4,), seed=4)
        risk = RiskCondition("any", (output_geq(2, 0, -1e6),))
        milp = encode_verification_problem(net, sbox, risk, char.full_network())
        relaxed = encode_relaxed_problem(net, sbox, risk, char.full_network())
        bb = BranchAndBoundSolver().solve(milp.model)
        ps = PhaseSplitSolver().solve(relaxed)
        assert bb.status == ps.status
        if ps.is_sat:
            logit = ps.witness[relaxed.characterizer_logit_var]
            assert logit >= -1e-9
