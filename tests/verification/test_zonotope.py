"""Unit and property tests for the zonotope domain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Dense, LeakyReLU, ReLU, Sequential
from repro.nn.graph import AffineOp, MaxGroupOp, ReLUOp
from repro.verification.abstraction.zonotope import (
    Zonotope,
    propagate_zonotope,
    transform,
)
from repro.verification.sets import Box


class TestZonotopeBasics:
    def test_from_box_roundtrip(self):
        box = Box(np.array([-1.0, 2.0]), np.array([1.0, 4.0]))
        z = Zonotope.from_box(box)
        back = z.to_box()
        np.testing.assert_allclose(back.lower, box.lower)
        np.testing.assert_allclose(back.upper, box.upper)

    def test_samples_inside_interval_hull(self):
        rng = np.random.default_rng(0)
        z = Zonotope(np.array([1.0, -1.0]), rng.normal(size=(5, 2)))
        samples = z.sample(rng, 200)
        hull = z.to_box()
        assert hull.contains(samples).all()

    def test_linear_value_bounds(self):
        z = Zonotope(np.array([0.0, 0.0]), np.array([[1.0, 1.0]]))
        lo, hi = z.linear_value_bounds(np.array([1.0, -1.0]))
        # x0 - x1 = e - e = 0 exactly: shared generator captures the relation
        assert lo == pytest.approx(0.0) and hi == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="generators"):
            Zonotope(np.zeros(2), np.zeros((3, 5)))

    def test_empty_generators_ok(self):
        z = Zonotope(np.array([1.0]), np.zeros((0, 1)))
        assert z.num_generators == 0
        np.testing.assert_array_equal(z.radius(), [0.0])


class TestTransformers:
    def test_affine_exact(self):
        rng = np.random.default_rng(1)
        z = Zonotope(rng.normal(size=3), rng.normal(size=(4, 3)))
        op = AffineOp(rng.normal(size=(2, 3)), rng.normal(size=2))
        out = transform(z, op)
        # exactness: sample mapping agrees
        samples = z.sample(rng, 100)
        mapped = op.apply(samples)
        hull = out.to_box()
        assert hull.contains(mapped).all()

    def test_relu_stable_positive_is_identity(self):
        z = Zonotope(np.array([5.0]), np.array([[1.0]]))
        out = transform(z, ReLUOp(1))
        np.testing.assert_allclose(out.center, z.center)
        np.testing.assert_allclose(out.generators, z.generators)

    def test_relu_stable_negative_is_zero(self):
        z = Zonotope(np.array([-5.0]), np.array([[1.0]]))
        out = transform(z, ReLUOp(1))
        hull = out.to_box()
        np.testing.assert_allclose(hull.lower, 0.0)
        np.testing.assert_allclose(hull.upper, 0.0)

    def test_relu_unstable_sound(self):
        z = Zonotope(np.array([0.0]), np.array([[2.0]]))  # range [-2, 2]
        out = transform(z, ReLUOp(1))
        hull = out.to_box()
        assert hull.lower[0] <= 0.0 and hull.upper[0] >= 2.0

    def test_max_group_dominated_is_exact(self):
        z = Zonotope(np.array([10.0, 0.0]), np.array([[0.5, 0.5]]))
        op = MaxGroupOp(2, [np.array([0, 1])])
        out = transform(z, op)
        np.testing.assert_allclose(out.center, [10.0])

    def test_dim_mismatch(self):
        z = Zonotope(np.zeros(2), np.zeros((1, 2)))
        with pytest.raises(ValueError, match="dim"):
            transform(z, ReLUOp(3))


class TestPropagationSoundness:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_relu_network_sound(self, seed):
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Dense(6), ReLU(), Dense(5), ReLU(), Dense(2)],
            input_shape=(3,),
            seed=seed % 89,
        )
        net = model.full_network()
        box = Box(-rng.uniform(0.1, 1.5, 3), rng.uniform(0.1, 1.5, 3))
        z_out = propagate_zonotope(net, box)
        hull = z_out.to_box()
        samples = box.sample(rng, 300)
        outputs = net.apply(samples)
        assert np.all(outputs >= hull.lower[None, :] - 1e-9)
        assert np.all(outputs <= hull.upper[None, :] + 1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_leaky_relu_network_sound(self, seed):
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Dense(5), LeakyReLU(0.1), Dense(2)], input_shape=(3,), seed=seed % 83
        )
        net = model.full_network()
        box = Box(-np.ones(3), np.ones(3))
        hull = propagate_zonotope(net, box).to_box()
        outputs = net.apply(box.sample(rng, 300))
        assert np.all(outputs >= hull.lower[None, :] - 1e-9)
        assert np.all(outputs <= hull.upper[None, :] + 1e-9)

    def test_affine_chain_is_exact(self):
        """Pure affine chains lose nothing in the zonotope domain."""
        model = Sequential([Dense(4), Dense(3), Dense(2)], input_shape=(3,), seed=5)
        net = model.full_network()
        box = Box(-np.ones(3), np.ones(3))
        hull = propagate_zonotope(net, box).to_box()
        # brute-force corners give the exact affine image bounds
        corners = np.array(
            [[sx, sy, sz] for sx in (-1, 1) for sy in (-1, 1) for sz in (-1, 1)],
            dtype=float,
        )
        outputs = net.apply(corners)
        np.testing.assert_allclose(hull.lower, outputs.min(axis=0), atol=1e-9)
        np.testing.assert_allclose(hull.upper, outputs.max(axis=0), atol=1e-9)
