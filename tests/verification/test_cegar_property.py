"""Property-based soundness of CEGAR splitting (hypothesis).

On random 2-layer networks and random thresholds:

- splitting partitions exactly: the union of the two children is the
  parent region and they only share the split hyperplane;
- the anytime trace's decided-volume fraction is monotonically
  non-decreasing round over round, and never exceeds 1;
- a SAFE verdict is sound in the limit: no sampled point of the region
  triggers the risk;
- a concrete counterexample, replayed through ``Sequential.forward``,
  really violates the property and really lies inside the region.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.nn.layers.activations import ReLU
from repro.nn.layers.dense import Dense
from repro.nn.sequential import Sequential
from repro.properties.risk import RiskCondition, output_geq
from repro.verification.cegar import CegarConfig, CegarLoop, Subproblem
from repro.verification.solver.result import SolveStatus

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _two_layer_network(seed: int, in_dim: int = 3, hidden: int = 5) -> Sequential:
    model = Sequential(
        [Dense(hidden), ReLU(), Dense(2)], input_shape=(in_dim,), seed=seed
    )
    rng = np.random.default_rng(seed)
    dense1, _, dense2 = model.layers
    dense1.weight.value = rng.normal(scale=0.8, size=(in_dim, hidden))
    dense1.bias.value = rng.normal(scale=0.2, size=hidden)
    dense2.weight.value = rng.normal(scale=0.8, size=(hidden, 2))
    dense2.bias.value = rng.normal(scale=0.2, size=2)
    return model


def _risk(threshold: float) -> RiskCondition:
    return RiskCondition("y0-high", (output_geq(2, 0, threshold),))


@_SETTINGS
@given(seed=st.integers(0, 10_000), data=st.data())
def test_split_partitions_parent_exactly(seed, data):
    model = _two_layer_network(seed)
    loop = CegarLoop(model, _risk(1e9), 0.0, 1.0)
    rng = np.random.default_rng(seed)
    lower = rng.uniform(0.0, 0.4, size=3)
    upper = lower + rng.uniform(0.05, 0.6, size=3)
    parent = Subproblem(lower, upper, depth=0, volume=1.0, path="p")
    left, right = loop._split(parent)

    # children stay inside the parent and cover it: every sampled parent
    # point is in exactly one child (or both, on the split hyperplane)
    points = rng.uniform(lower, upper, size=(64, 3))
    in_left = np.all((points >= left.lower) & (points <= left.upper), axis=1)
    in_right = np.all((points >= right.lower) & (points <= right.upper), axis=1)
    assert np.all(in_left | in_right)
    assert left.volume + right.volume == parent.volume
    np.testing.assert_array_equal(np.minimum(left.lower, right.lower), lower)
    np.testing.assert_array_equal(np.maximum(left.upper, right.upper), upper)
    # the shared face is the split midplane of one dimension
    dim = int(np.argmax(upper - lower))
    assert left.upper[dim] == right.lower[dim]


@_SETTINGS
@given(
    seed=st.integers(0, 10_000),
    offset=st.floats(-0.5, 2.0),
    budget=st.integers(2, 40),
)
def test_trace_monotone_and_verdicts_sound(seed, offset, budget):
    model = _two_layer_network(seed)
    rng = np.random.default_rng(seed + 1)
    samples = model.forward(rng.uniform(0, 1, size=(512, 3)), training=False)
    threshold = float(samples[:, 0].max()) + offset
    risk = _risk(threshold)

    loop = CegarLoop(
        model, risk, 0.0, 1.0, cut_layer=2,
        config=CegarConfig(solve_depth=2, max_depth=12),
    )
    result = loop.run(budget=budget)

    fractions = result.trace.decided_fractions()
    assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))
    assert all(0.0 <= f <= 1.0 + 1e-9 for f in fractions)

    if result.status is SolveStatus.SAT:
        cex = result.counterexample
        replay = model.forward(cex.image[None, :], training=False)[0]
        assert float(risk.margin(replay[None, :])[0]) >= 0.0
        assert np.all(cex.image >= 0.0) and np.all(cex.image <= 1.0)
    elif result.status is SolveStatus.UNSAT:
        # complete-in-the-limit: a full proof excludes every sample (up
        # to solver tolerance — offset=0 puts the threshold exactly on
        # a sample's output, where margin is legitimately 0)
        margins = risk.margin(samples)
        assert np.all(margins <= 1e-6)
        assert result.decided_fraction == 1.0
    else:
        assert loop.frontier_size > 0  # budget ran out with work left
