"""The float32 raw-speed backend: containment, fusion, plan mechanics.

The backend's one contract is *containment*: every hull it returns must
enclose the exact64 hull of the same propagation (outward rounding makes
float32 arithmetic sound instead of merely fast).  The hypothesis tests
here drive that differentially per op kind — random weights, random
boxes, magnitudes spanning several decades — for both the interval and
the zonotope fast paths, including the fused ops the lowering pass
produces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.graph import (
    AffineOp,
    ConvOp,
    ElementwiseAffineOp,
    FusedAffineReLU,
    FusedConvReLU,
    LeakyReLUOp,
    MaxGroupOp,
    MonotoneOp,
    PiecewiseLinearNetwork,
    ReLUOp,
    ReshapeOp,
)
from repro.verification.abstraction import fast32
from repro.verification.abstraction.domain import get_domain
from repro.verification.ir import fused_view
from repro.verification.sets import BoxBatch


def _op(kind: str, rng: np.random.Generator, scale: float):
    if kind == "affine":
        return AffineOp(rng.normal(size=(3, 4)) * scale, rng.normal(size=3))
    if kind == "ew":
        return ElementwiseAffineOp(
            rng.normal(size=4) * scale, rng.normal(size=4)
        )
    if kind == "relu":
        return ReLUOp(4)
    if kind == "leaky":
        return LeakyReLUOp(4, alpha=0.1)
    if kind == "maxgroup":
        return MaxGroupOp(4, [[0, 1], [2, 3], [1, 2]])
    if kind == "reshape":
        return ReshapeOp((4,), (2, 2))
    if kind == "monotone":
        return MonotoneOp("tanh", 4)
    if kind == "conv":
        return ConvOp(
            rng.normal(size=(2, 1, 2, 2)) * scale,
            rng.normal(size=2),
            stride=1,
            padding=1,
            in_shape=(1, 3, 3),
        )
    if kind == "fused_affine_relu":
        return FusedAffineReLU(
            AffineOp(rng.normal(size=(3, 4)) * scale, rng.normal(size=3))
        )
    if kind == "fused_conv_relu":
        return FusedConvReLU(
            ConvOp(
                rng.normal(size=(2, 1, 2, 2)) * scale,
                rng.normal(size=2),
                stride=1,
                padding=0,
                in_shape=(1, 3, 3),
            )
        )
    raise AssertionError(kind)


def _batch(rng: np.random.Generator, dim: int, scale: float) -> BoxBatch:
    center = rng.normal(size=(5, dim)) * scale
    radius = rng.uniform(0.0, 0.7, size=(5, dim)) * scale
    return BoxBatch(center - radius, center + radius)


_OP_KINDS = (
    "affine",
    "ew",
    "relu",
    "leaky",
    "maxgroup",
    "reshape",
    "monotone",
    "conv",
    "fused_affine_relu",
    "fused_conv_relu",
)


class TestIntervalContainment:
    @settings(max_examples=25, deadline=None)
    @given(
        kind=st.sampled_from(_OP_KINDS),
        seed=st.integers(0, 2**31 - 1),
        mag=st.integers(-4, 4),
    )
    def test_fast32_hull_contains_exact64_hull(self, kind, seed, mag):
        rng = np.random.default_rng(seed)
        scale = 10.0**mag
        op = _op(kind, rng, scale)
        program = PiecewiseLinearNetwork([op], op.in_dim)
        batch = _batch(rng, op.in_dim, scale)
        try:
            fast = fast32.propagate_interval_fast32(program, batch)
        except fast32.Fast32Unsupported:
            return
        dom = get_domain("interval")
        exact = dom.concretize(dom.transform(op, dom.lift(batch))).flat()
        assert np.all(fast.lower <= exact.lower)
        assert np.all(fast.upper >= exact.upper)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_multi_op_program_contains_exact64(self, seed):
        # a conv -> relu -> dense -> relu pipeline, the shape the fused
        # lowering produces for real prefixes
        rng = np.random.default_rng(seed)
        conv = ConvOp(
            rng.normal(size=(2, 1, 2, 2)),
            rng.normal(size=2),
            stride=1,
            padding=0,
            in_shape=(1, 3, 3),
        )
        dense = AffineOp(rng.normal(size=(3, 8)), rng.normal(size=3))
        program = PiecewiseLinearNetwork(
            [FusedConvReLU(conv), FusedAffineReLU(dense)], conv.in_dim
        )
        batch = _batch(rng, conv.in_dim, 1.0)
        fast = fast32.propagate_interval_fast32(program, batch)
        dom = get_domain("interval")
        element = dom.lift(batch)
        for op in program.ops:
            element = dom.transform(op, element)
        exact = dom.concretize(element).flat()
        assert np.all(fast.lower <= exact.lower)
        assert np.all(fast.upper >= exact.upper)


class TestZonotopeContainment:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), mag=st.integers(-3, 3))
    def test_fast32_box_contains_exact64_box(self, seed, mag):
        rng = np.random.default_rng(seed)
        scale = 10.0**mag
        dense = AffineOp(rng.normal(size=(3, 4)) * scale, rng.normal(size=3))
        program = PiecewiseLinearNetwork(
            [FusedAffineReLU(dense), AffineOp(rng.normal(size=(2, 3)), rng.normal(size=2))],
            4,
        )
        batch = _batch(rng, 4, scale)
        dom = get_domain("zonotope")
        fast = dom.concretize(
            fast32.propagate_zonotope_fast32(program, dom.lift(batch))
        ).flat()
        element = dom.lift(batch)
        for op in program.ops:
            element = dom.transform(op, element)
        exact = dom.concretize(element).flat()
        assert np.all(fast.lower <= exact.lower + 1e-12)
        assert np.all(fast.upper >= exact.upper - 1e-12)

    def test_unsupported_op_raises(self):
        program = PiecewiseLinearNetwork([MaxGroupOp(4, [[0, 1], [2, 3]])], 4)
        dom = get_domain("zonotope")
        batch = _batch(np.random.default_rng(0), 4, 1.0)
        with pytest.raises(fast32.Fast32Unsupported):
            fast32.propagate_zonotope_fast32(program, dom.lift(batch))


class TestFusedView:
    def test_affine_relu_fuses_and_propagates_identically(self):
        rng = np.random.default_rng(3)
        ops = [
            AffineOp(rng.normal(size=(3, 4)), rng.normal(size=3)),
            ReLUOp(3),
            AffineOp(rng.normal(size=(2, 3)), rng.normal(size=2)),
        ]
        program = PiecewiseLinearNetwork(ops, 4)
        fused = fused_view(program)
        kinds = [type(op).__name__ for op in fused.ops]
        assert kinds == ["FusedAffineReLU", "AffineOp"]
        dom = get_domain("interval")
        batch = _batch(rng, 4, 1.0)

        def hull(prog):
            element = dom.lift(batch)
            for op in prog.ops:
                element = dom.transform(op, element)
            return dom.concretize(element).flat()

        plain, via_fused = hull(program), hull(fused)
        np.testing.assert_allclose(via_fused.lower, plain.lower, atol=1e-12)
        np.testing.assert_allclose(via_fused.upper, plain.upper, atol=1e-12)

    def test_fused_view_is_cached(self):
        rng = np.random.default_rng(4)
        program = PiecewiseLinearNetwork(
            [AffineOp(rng.normal(size=(3, 4)), rng.normal(size=3)), ReLUOp(3)],
            4,
        )
        assert fused_view(program) is fused_view(program)


class TestPlanMechanics:
    def test_plan_reuse_across_batch_sizes(self):
        rng = np.random.default_rng(5)
        op = AffineOp(rng.normal(size=(3, 4)), rng.normal(size=3))
        program = PiecewiseLinearNetwork([op], 4)
        small = fast32.plan_for(program, 3)
        again = fast32.plan_for(program, small.nv)
        assert small is again  # same lane-rounded capacity, same plan

    def test_oversized_batch_rejected(self):
        rng = np.random.default_rng(6)
        op = AffineOp(rng.normal(size=(3, 4)), rng.normal(size=3))
        program = PiecewiseLinearNetwork([op], 4)
        plan = fast32.plan_for(program, 2)
        big = _batch(rng, 4, 1.0)
        big = BoxBatch(
            np.repeat(big.lower, 20, axis=0), np.repeat(big.upper, 20, axis=0)
        )
        if big.n_regions > plan.nv:
            with pytest.raises(ValueError, match="capacity"):
                plan.run(big)

    def test_dim_mismatch_rejected(self):
        rng = np.random.default_rng(7)
        op = AffineOp(rng.normal(size=(3, 4)), rng.normal(size=3))
        program = PiecewiseLinearNetwork([op], 4)
        plan = fast32.plan_for(program, 3)
        with pytest.raises(ValueError, match="dim"):
            plan.run(_batch(rng, 5, 1.0))

    def test_image_shaped_batch_accepted(self):
        # propagate_regions hands the plan the raw (n, C, H, W) batch;
        # the plan flattens internally
        rng = np.random.default_rng(8)
        conv = ConvOp(
            rng.normal(size=(2, 1, 2, 2)),
            rng.normal(size=2),
            stride=1,
            padding=0,
            in_shape=(1, 3, 3),
        )
        program = PiecewiseLinearNetwork([FusedConvReLU(conv)], 9)
        flat = _batch(rng, 9, 1.0)
        shaped = BoxBatch(
            flat.lower.reshape(-1, 1, 3, 3), flat.upper.reshape(-1, 1, 3, 3)
        )
        a = fast32.propagate_interval_fast32(program, flat)
        b = fast32.propagate_interval_fast32(program, shaped)
        np.testing.assert_array_equal(a.lower, b.lower)
        np.testing.assert_array_equal(a.upper, b.upper)

    def test_plans_do_not_ride_program_pickles(self):
        import pickle

        rng = np.random.default_rng(9)
        op = AffineOp(rng.normal(size=(3, 4)), rng.normal(size=3))
        program = PiecewiseLinearNetwork([op], 4)
        fast32.plan_for(program, 3)
        fused_view(program)
        clone = pickle.loads(pickle.dumps(program))
        assert "_fast32_plans" not in clone.__dict__
        assert "_fused_view_cache" not in clone.__dict__
