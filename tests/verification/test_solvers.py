"""Unit tests for branch-and-bound and HiGHS backends, plus cross-checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Dense, ReLU, Sequential
from repro.properties.risk import RiskCondition, output_geq
from repro.verification.assume_guarantee import box_from_data
from repro.verification.milp.encoder import encode_verification_problem
from repro.verification.milp.model import MILPModel
from repro.verification.solver import (
    BranchAndBoundSolver,
    HighsSolver,
    SolveStatus,
    make_solver,
)
from repro.verification.solver.result import SolveResult


def knapsack_model():
    """max x0 + 2*x1 + 3*x2 s.t. x0 + x1 + x2 <= 2 (binary) => optimum 5."""
    model = MILPModel()
    items = [model.add_binary(f"item{i}") for i in range(3)]
    model.add_leq({i: 1.0 for i in items}, 2.0)
    model.set_objective({items[0]: -1.0, items[1]: -2.0, items[2]: -3.0})
    return model, items


def infeasible_model():
    model = MILPModel()
    x = model.add_continuous(0.0, 1.0)
    model.add_leq({x: 1.0}, -1.0)  # x <= -1 contradicts x >= 0
    return model


class TestBranchAndBound:
    def test_feasibility_simple(self):
        model = MILPModel()
        x = model.add_continuous(0.0, 5.0)
        d = model.add_binary()
        model.add_leq({x: 1.0, d: -5.0}, 0.0)
        result = BranchAndBoundSolver().solve(model)
        assert result.is_sat
        assert model.check_solution(result.witness)

    def test_infeasible(self):
        result = BranchAndBoundSolver().solve(infeasible_model())
        assert result.is_unsat

    def test_optimization_knapsack(self):
        model, items = knapsack_model()
        result = BranchAndBoundSolver().minimize(model)
        assert result.is_sat
        assert result.objective == pytest.approx(-5.0)
        assert result.stats["proved_optimal"]
        np.testing.assert_allclose(result.witness[[items[1], items[2]]], 1.0)

    def test_forced_binary_combination(self):
        """Feasibility requiring a specific binary assignment."""
        model = MILPModel()
        d0 = model.add_binary()
        d1 = model.add_binary()
        model.add_eq({d0: 1.0, d1: 1.0}, 1.0)  # exactly one
        model.add_leq({d0: -1.0}, -1.0)  # d0 >= 1
        result = BranchAndBoundSolver().solve(model)
        assert result.is_sat
        assert result.witness[d0] == pytest.approx(1.0)
        assert result.witness[d1] == pytest.approx(0.0)

    def test_node_limit_gives_unknown(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            [Dense(14), ReLU(), Dense(14), ReLU(), Dense(2)], input_shape=(6,), seed=0
        )
        net = model.full_network()
        sbox = box_from_data(rng.normal(size=(50, 6)) * 3)
        risk = RiskCondition("hard", (output_geq(2, 0, 1e5),))
        problem = encode_verification_problem(net, sbox, risk)
        result = BranchAndBoundSolver(node_limit=2).solve(problem.model)
        assert result.status in (SolveStatus.UNKNOWN, SolveStatus.UNSAT)

    def test_limit_reports_anytime_open_node_stats(self):
        """A limit-hit UNKNOWN carries the open frontier and a sound bound."""
        # root LP is forcibly fractional (b0 + b1 == 1.5 over binaries is
        # integrally infeasible but LP-feasible), so node_limit=1 always
        # pops the root, branches, and then hits the limit with two
        # children open
        model = MILPModel()
        b0 = model.add_binary("b0")
        b1 = model.add_binary("b1")
        model.add_eq({b0: 1.0, b1: 1.0}, 1.5)
        result = BranchAndBoundSolver(node_limit=1).solve(model)
        assert result.status is SolveStatus.UNKNOWN
        assert result.stats["limit"] == "nodes"
        assert result.stats["open_nodes"] == 2
        assert "best_bound" in result.stats

    def test_truncated_minimize_bound_brackets_optimum(self):
        """best_bound <= true optimum when optimization hits its limit."""
        # min -(b0 + b1) s.t. b0 + b1 <= 1.5: the LP root is fractional
        # (0.75, 0.75, objective -1.5); DFS finds the integral incumbent
        # -1 after 4 nodes and node_limit=4 stops with the other branch
        # open, so the truncated solve is SAT but not proved optimal
        model = MILPModel()
        b0 = model.add_binary("b0")
        b1 = model.add_binary("b1")
        model.add_leq({b0: 1.0, b1: 1.0}, 1.5)
        model.set_objective({b0: -1.0, b1: -1.0})
        full = BranchAndBoundSolver().minimize(model)
        assert full.stats["proved_optimal"] and full.objective == pytest.approx(-1.0)
        truncated = BranchAndBoundSolver(node_limit=4).minimize(model)
        assert truncated.status is SolveStatus.SAT
        assert not truncated.stats["proved_optimal"]
        assert truncated.stats["open_nodes"] > 0
        # the reported bound soundly brackets the true optimum
        assert truncated.stats["best_bound"] <= full.objective + 1e-9

    def test_pure_lp_no_binaries(self):
        model = MILPModel()
        x = model.add_continuous(1.0, 2.0)
        model.set_objective({x: 1.0})
        result = BranchAndBoundSolver().minimize(model)
        assert result.is_sat and result.objective == pytest.approx(1.0)


class TestHighs:
    def test_feasibility_and_infeasibility(self):
        model = MILPModel()
        model.add_binary()
        assert HighsSolver().solve(model).is_sat
        assert HighsSolver().solve(infeasible_model()).is_unsat

    def test_optimization_knapsack(self):
        model, _ = knapsack_model()
        result = HighsSolver().minimize(model)
        assert result.objective == pytest.approx(-5.0)


class TestSolverFactory:
    def test_names(self):
        assert isinstance(make_solver("branch-and-bound"), BranchAndBoundSolver)
        assert isinstance(make_solver("bb"), BranchAndBoundSolver)
        assert isinstance(make_solver("highs"), HighsSolver)
        with pytest.raises(ValueError, match="unknown solver"):
            make_solver("cplex")

    def test_options_forwarded(self):
        solver = make_solver("bb", node_limit=5)
        assert solver.node_limit == 5


class TestSolveResultInvariants:
    def test_sat_requires_witness(self):
        with pytest.raises(ValueError, match="witness"):
            SolveResult(status=SolveStatus.SAT)

    def test_unsat_forbids_witness(self):
        with pytest.raises(ValueError, match="must not"):
            SolveResult(status=SolveStatus.UNSAT, witness=np.zeros(2))


class TestCrossValidation:
    """Our branch-and-bound must agree with HiGHS on random instances."""

    @given(st.integers(0, 100_000))
    @settings(max_examples=20, deadline=None)
    def test_agree_on_random_verification_instances(self, seed):
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Dense(5), ReLU(), Dense(4), ReLU(), Dense(2)],
            input_shape=(3,),
            seed=seed % 41,
        )
        net = model.full_network()
        sbox = box_from_data(rng.normal(size=(30, 3)))
        outputs = net.apply(sbox.sample(rng, 200))
        # pick a threshold near the reachable frontier to get both outcomes
        threshold = float(np.quantile(outputs[:, 0], 0.98)) + rng.uniform(-0.2, 0.4)
        risk = RiskCondition("x", (output_geq(2, 0, threshold),))
        problem = encode_verification_problem(net, sbox, risk)
        ours = BranchAndBoundSolver().solve(problem.model)
        reference = HighsSolver().solve(problem.model)
        assert ours.status == reference.status

    @given(st.integers(0, 100_000))
    @settings(max_examples=10, deadline=None)
    def test_agree_on_optimization(self, seed):
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Dense(5), ReLU(), Dense(2)], input_shape=(3,), seed=seed % 37
        )
        net = model.full_network()
        sbox = box_from_data(rng.normal(size=(30, 3)))
        risk = RiskCondition("any", (output_geq(2, 0, -1e6),))
        problem = encode_verification_problem(net, sbox, risk)
        problem.model.set_objective({problem.output_vars[0]: -1.0})
        ours = BranchAndBoundSolver().minimize(problem.model)
        reference = HighsSolver().minimize(problem.model)
        assert ours.objective == pytest.approx(reference.objective, abs=1e-5)
