"""IntervalBoundError provenance must survive the process-pool boundary.

Campaign workers (``engine.run(workers=N)``) and the CEGAR leaf pool
ship exceptions between processes via pickle.  The default exception
reduction rebuilds from the *formatted* message alone, which silently
dropped ``layer_index`` / ``region_index`` — the very context that makes
a campaign-scale propagation failure debuggable.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.verification.sets import IntervalBoundError


def _raise_with_provenance(_: int) -> None:
    raise IntervalBoundError(
        "interval has lower > upper bound", layer_index=3, region_index=5
    )


class TestPickleRoundTrip:
    def test_provenance_attributes_survive(self):
        err = IntervalBoundError("boom", layer_index=7, region_index=2)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.layer_index == 7
        assert clone.region_index == 2

    def test_message_is_not_doubled(self):
        err = IntervalBoundError("boom", layer_index=7, region_index=2)
        clone = pickle.loads(pickle.dumps(err))
        assert str(clone) == str(err) == "boom (at layer 7, region 2)"
        assert str(clone).count("(at") == 1

    def test_plain_error_round_trips(self):
        clone = pickle.loads(pickle.dumps(IntervalBoundError("plain")))
        assert clone.layer_index is None and clone.region_index is None
        assert str(clone) == "plain"

    def test_double_round_trip_is_stable(self):
        err = IntervalBoundError("boom", layer_index=1)
        twice = pickle.loads(pickle.dumps(pickle.loads(pickle.dumps(err))))
        assert twice.layer_index == 1 and str(twice) == "boom (at layer 1)"


class TestAcrossProcessPool:
    def test_worker_exception_keeps_layer_and_region(self):
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            with pytest.raises(IntervalBoundError, match="layer 3.*region 5") as exc:
                list(pool.map(_raise_with_provenance, [0]))
        assert exc.value.layer_index == 3
        assert exc.value.region_index == 5
