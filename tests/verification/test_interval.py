"""Unit and property tests for the interval domain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Dense, ReLU, Sequential
from repro.nn.graph import AffineOp, LeakyReLUOp, MaxGroupOp, ReLUOp
from repro.verification.abstraction.interval import (
    affine_bounds,
    leaky_relu_bounds,
    max_group_bounds,
    op_output_bounds,
    propagate_box,
    relu_bounds,
    transform,
)
from repro.verification.sets import Box


class TestOpTransformers:
    def test_affine_exact_on_point_box(self):
        op = AffineOp(np.array([[2.0, -1.0]]), np.array([0.5]))
        point = Box(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        out = affine_bounds(op, point)
        assert out.lower[0] == out.upper[0] == pytest.approx(0.5)

    def test_affine_width_scales_with_abs_weights(self):
        op = AffineOp(np.array([[1.0, -3.0]]), np.zeros(1))
        box = Box(np.array([-1.0, -1.0]), np.array([1.0, 1.0]))
        out = affine_bounds(op, box)
        assert out.lower[0] == -4.0 and out.upper[0] == 4.0

    def test_relu_clamps(self):
        box = Box(np.array([-2.0, 1.0, -3.0]), np.array([-1.0, 2.0, 3.0]))
        out = relu_bounds(box)
        np.testing.assert_array_equal(out.lower, [0.0, 1.0, 0.0])
        np.testing.assert_array_equal(out.upper, [0.0, 2.0, 3.0])

    def test_leaky_relu_monotone(self):
        op = LeakyReLUOp(2, alpha=0.1)
        box = Box(np.array([-10.0, -1.0]), np.array([10.0, -0.5]))
        out = leaky_relu_bounds(op, box)
        np.testing.assert_allclose(out.lower, [-1.0, -0.1])
        np.testing.assert_allclose(out.upper, [10.0, -0.05])

    def test_max_group(self):
        op = MaxGroupOp(4, [np.array([0, 1]), np.array([2, 3])])
        box = Box(np.array([0.0, 1.0, -5.0, -4.0]), np.array([2.0, 3.0, -1.0, 0.0]))
        out = max_group_bounds(op, box)
        np.testing.assert_array_equal(out.lower, [1.0, -4.0])
        np.testing.assert_array_equal(out.upper, [3.0, 0.0])

    def test_transform_checks_dim(self):
        with pytest.raises(ValueError, match="does not match"):
            transform(ReLUOp(3), Box(np.zeros(2), np.ones(2)))


class TestPropagateSoundness:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_samples_inside_propagated_box(self, seed):
        """Soundness: f(x) in propagate(box) for all sampled x in box."""
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Dense(7), ReLU(), Dense(5), ReLU(), Dense(3)],
            input_shape=(4,),
            seed=seed % 97,
        )
        net = model.full_network()
        box = Box(-rng.uniform(0.1, 2, 4), rng.uniform(0.1, 2, 4))
        out_box = propagate_box(net, box)
        samples = box.sample(rng, 500)
        outputs = net.apply(samples)
        assert np.all(outputs >= out_box.lower[None, :] - 1e-9)
        assert np.all(outputs <= out_box.upper[None, :] + 1e-9)

    def test_point_box_is_exact(self):
        model = Sequential([Dense(5), ReLU(), Dense(2)], input_shape=(3,), seed=1)
        net = model.full_network()
        x = np.array([0.3, -0.7, 1.1])
        box = Box(x, x)
        out = propagate_box(net, box)
        expected = net.apply(x)
        np.testing.assert_allclose(out.lower, expected, atol=1e-12)
        np.testing.assert_allclose(out.upper, expected, atol=1e-12)


class TestOpOutputBounds:
    def test_chained_boxes_consistent(self):
        model = Sequential([Dense(6), ReLU(), Dense(2)], input_shape=(3,), seed=2)
        net = model.full_network()
        box = Box(-np.ones(3), np.ones(3))
        pairs = op_output_bounds(net, box)
        assert len(pairs) == len(net.ops)
        # output of op i is input of op i+1
        for (_, out_a), (in_b, _) in zip(pairs, pairs[1:]):
            np.testing.assert_array_equal(out_a.lower, in_b.lower)
            np.testing.assert_array_equal(out_a.upper, in_b.upper)
        # final box equals propagate_box
        final = propagate_box(net, box)
        np.testing.assert_array_equal(pairs[-1][1].lower, final.lower)
