"""The CEGAR refinement engine: queue, rounds, witnesses, resume, pool."""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.perception.network import build_mlp_perception_network
from repro.properties.risk import RiskCondition, output_geq
from repro.verification.cegar import (
    CegarConfig,
    CegarLoop,
    RefinementTrace,
    Subproblem,
    _ScopedLeafSolver,
    refine_region,
)
from repro.verification.milp.encoder import encode_verification_problem
from repro.verification.output_range import trivial_reachability_risk
from repro.verification.sets import Box
from repro.verification.solver.result import SolveStatus


@pytest.fixture(scope="module")
def model():
    return build_mlp_perception_network(
        input_dim=4, hidden=(8,), feature_width=4, seed=1
    )


@pytest.fixture(scope="module")
def reachable(model):
    """Empirical y0 range over [0, 1]^4 (for picking thresholds)."""
    rng = np.random.default_rng(0)
    out = model.forward(rng.uniform(0, 1, size=(4000, 4)), training=False)
    return float(out[:, 0].min()), float(out[:, 0].max())


def _risk(threshold: float) -> RiskCondition:
    return RiskCondition("y0-high", (output_geq(2, 0, threshold),))


class TestVerdicts:
    def test_clearly_safe_region_is_proved_in_one_round(self, model, reachable):
        result = refine_region(model, _risk(reachable[1] + 50.0), 0.0, 1.0, budget=8)
        assert result.proved
        assert result.status is SolveStatus.UNSAT
        assert result.decided_fraction == pytest.approx(1.0)
        assert len(result.trace.rounds) == 1
        assert result.trace.rounds[0].prescreen_safe == 1

    def test_reachable_risk_yields_genuine_input_witness(self, model, reachable):
        lo, hi = reachable
        result = refine_region(model, _risk(0.5 * (lo + hi)), 0.0, 1.0, budget=64)
        assert result.status is SolveStatus.SAT
        cex = result.counterexample
        assert cex is not None and cex.risk_occurs
        # the witness is a real input inside the region whose *actual*
        # network output satisfies the risk
        assert np.all(cex.image >= 0.0) and np.all(cex.image <= 1.0)
        replay = model.forward(cex.image[None, ...], training=False)[0]
        assert float(_risk(0.5 * (lo + hi)).margin(replay[None, :])[0]) >= 0.0

    def test_tight_safe_threshold_needs_refinement(self, model, reachable):
        loop = CegarLoop(
            model, _risk(reachable[1] + 0.3), 0.0, 1.0, cut_layer=2,
            config=CegarConfig(solve_depth=3),
        )
        result = loop.run(budget=2000)
        assert result.proved
        assert result.subproblems_processed > 1  # at least one split happened
        fractions = result.trace.decided_fractions()
        assert fractions[-1] == pytest.approx(1.0)
        assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))


class TestAnytimeBudget:
    def test_budget_exhaustion_returns_open_frontier(self, model, reachable):
        loop = CegarLoop(model, _risk(reachable[1] + 0.3), 0.0, 1.0, cut_layer=2)
        result = loop.run(budget=3)
        assert result.status is SolveStatus.UNKNOWN
        assert loop.frontier_size > 0
        assert result.subproblems_processed <= 3

    def test_resume_continues_rounds_and_volume(self, model, reachable):
        loop = CegarLoop(
            model, _risk(reachable[1] + 0.3), 0.0, 1.0, cut_layer=2,
            config=CegarConfig(solve_depth=3),
        )
        first = loop.run(budget=3)
        rounds_before = len(first.trace.rounds)
        decided_before = first.decided_fraction
        second = loop.run(budget=2000)
        assert second.status is SolveStatus.UNSAT
        assert len(second.trace.rounds) > rounds_before
        assert second.decided_fraction >= decided_before
        indices = [r.index for r in second.trace.rounds]
        assert indices == list(range(len(indices)))
        # the first result is a snapshot: resuming must not have
        # retroactively grown its trace
        assert len(first.trace.rounds) == rounds_before

    def test_fully_parked_frontier_is_distinguishable(self, model, reachable):
        # with max_depth=1 an undecidable band parks everything: the
        # result must say so (resuming spends no budget on dead ends)
        loop = CegarLoop(
            model, _risk(reachable[1] + 0.3), 0.0, 1.0, cut_layer=2,
            config=CegarConfig(solver=None, max_depth=1),
        )
        result = loop.run(budget=100)
        assert result.status is SolveStatus.UNKNOWN
        assert result.queued == 0 and result.parked > 0
        assert "parked at max_depth" in result.summary()
        resumed = loop.run(budget=100)
        assert resumed.subproblems_processed == result.subproblems_processed

    def test_mid_round_failure_poisons_the_loop(self, model, reachable, monkeypatch):
        # an exception mid-round loses popped subproblems: the loop must
        # refuse to resume (an empty frontier would read as SAFE) and
        # its status must stop short of UNSAT
        loop = CegarLoop(
            model, _risk(reachable[1] + 0.3), 0.0, 1.0, cut_layer=2,
            config=CegarConfig(solver=None),
        )
        monkeypatch.setattr(
            loop, "_prescreen", lambda boxes: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        with pytest.raises(RuntimeError, match="boom"):
            loop.run(budget=10)
        assert loop.status is SolveStatus.UNKNOWN
        with pytest.raises(RuntimeError, match="fresh loop"):
            loop.run(budget=10)

    def test_budget_must_be_positive(self, model):
        loop = CegarLoop(model, _risk(1e9), 0.0, 1.0)
        with pytest.raises(ValueError, match="budget"):
            loop.run(budget=0)


class TestSplitting:
    def test_children_partition_parent(self, model):
        loop = CegarLoop(model, _risk(1e9), 0.0, 1.0)
        lower = np.array([0.0, 0.2, 0.0, 0.0])
        upper = np.array([1.0, 0.4, 0.3, 1.0])
        sub = Subproblem(lower, upper, depth=0, volume=1.0, path="p")
        left, right = loop._split(sub)
        dim = int(np.argmax(upper - lower))  # widest dimension
        assert left.upper[dim] == pytest.approx(0.5 * (lower[dim] + upper[dim]))
        assert right.lower[dim] == pytest.approx(left.upper[dim])
        np.testing.assert_array_equal(left.lower, lower)
        np.testing.assert_array_equal(right.upper, upper)
        assert left.volume == right.volume == pytest.approx(0.5)
        assert left.depth == right.depth == 1

    def test_generator_heuristic_picks_an_influential_dim(self, model, reachable):
        config = CegarConfig(split="generator", solve_depth=3)
        result = refine_region(
            model, _risk(reachable[1] + 0.3), 0.0, 1.0,
            cut_layer=2, budget=2000, config=config,
        )
        assert result.proved

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="split"):
            CegarConfig(split="random")
        with pytest.raises(ValueError, match="domain"):
            CegarConfig(domain="polyhedra")


class TestTrace:
    def test_trace_is_json_serializable(self, model, reachable):
        result = refine_region(model, _risk(reachable[1] + 0.3), 0.0, 1.0, budget=10)
        payload = json.loads(json.dumps(result.trace.to_dict()))
        assert payload["rounds"]
        assert 0.0 <= payload["decided_fraction"] <= 1.0

    def test_empty_trace_defaults(self):
        trace = RefinementTrace()
        assert trace.decided_fraction == 0.0
        assert trace.open_frontier == 1
        assert "0 refinement round" in trace.summary()

    def test_summary_mentions_unsafe_witness(self, model, reachable):
        lo, hi = reachable
        result = refine_region(model, _risk(0.5 * (lo + hi)), 0.0, 1.0, budget=64)
        assert "UNSAFE" in result.summary()


class TestWorkers:
    def test_parallel_leaves_agree_with_sequential(self, model, reachable):
        risk = _risk(reachable[1] + 0.3)
        sequential = CegarLoop(
            model, risk, 0.0, 1.0, cut_layer=2, config=CegarConfig(solve_depth=1)
        ).run(budget=2000)
        parallel = CegarLoop(
            model, risk, 0.0, 1.0, cut_layer=2, config=CegarConfig(solve_depth=1)
        ).run(budget=2000, workers=2)
        assert sequential.status is parallel.status is SolveStatus.UNSAT
        assert parallel.decided_fraction == pytest.approx(1.0)

    def test_pool_path_agrees_even_on_one_core(self, model, reachable, monkeypatch):
        # the worker cap skips the pool on single-core machines; force it
        # so the pool code path is exercised deterministically everywhere
        import repro.verification.cegar as cegar_module

        monkeypatch.setattr(cegar_module.os, "cpu_count", lambda: 4)
        risk = _risk(reachable[1] + 0.3)
        loop = CegarLoop(
            model, risk, 0.0, 1.0, cut_layer=2, config=CegarConfig(solve_depth=1)
        )
        result = loop.run(budget=2000, workers=2)
        assert result.status is SolveStatus.UNSAT
        assert result.decided_fraction == pytest.approx(1.0)

    def test_pool_worker_functions_round_trip(self, model, reachable):
        # the initializer/worker pair must also behave in-process
        from repro.verification.cegar import _pool_leaf_init, _pool_leaf_solve
        from repro.verification.abstraction.propagate import region_boxes
        from repro.verification.sets import BoxBatch

        suffix = model.suffix_network(2)
        root = region_boxes(
            model, BoxBatch(np.zeros((1, 4)), np.ones((1, 4))), 2
        ).box(0)
        _pool_leaf_init(
            suffix, root.lower, root.upper, _risk(reachable[1] + 50.0), "highs", {}
        )
        result = _pool_leaf_solve((root.lower, root.upper))
        assert result.status is SolveStatus.UNSAT


class TestLeafWitnessConcretization:
    def test_cut0_sat_leaf_becomes_input_witness(self, model, reachable):
        # at cut_layer=0 the leaf MILP encodes the whole network exactly,
        # so its SAT witness is a real input point: with concretization
        # restricted to box centers (steps=0) and a risk reachable only
        # away from the center, the solver rung must produce the UNSAFE
        # verdict instead of splitting forever
        lo, hi = reachable
        center_out = model.forward(np.full((1, 4), 0.5), training=False)[0, 0]
        threshold = 0.5 * (float(center_out) + hi)  # misses the center
        loop = CegarLoop(
            model, _risk(threshold), 0.0, 1.0, cut_layer=0,
            config=CegarConfig(solve_depth=0, concretize_steps=0),
        )
        result = loop.run(budget=200)
        assert result.status is SolveStatus.SAT
        cex = result.counterexample
        replay = model.forward(cex.image[None, ...], training=False)[0]
        assert float(_risk(threshold).margin(replay[None, :])[0]) >= 0.0
        assert np.all(cex.image >= 0.0) and np.all(cex.image <= 1.0)

    def test_later_cut_sat_leaf_is_not_trusted(self, model, reachable):
        loop = CegarLoop(model, _risk(reachable[1]), 0.0, 1.0, cut_layer=2)
        sub = Subproblem(
            np.zeros(4), np.ones(4), depth=0, volume=1.0, path="p"
        )
        from repro.verification.solver.result import SolveResult

        fake = SolveResult(
            status=SolveStatus.SAT,
            witness=np.zeros(1),
            stats={"features": np.full(12, 0.5)},
        )
        assert loop._concretize_leaf_witness(sub, fake) is None


class TestLeafSolver:
    def test_scoped_solve_rolls_back_the_shared_encoding(self, model, reachable):
        suffix = model.suffix_network(2)
        root = Box(np.full(suffix.in_dim, -5.0), np.full(suffix.in_dim, 5.0))
        problem = encode_verification_problem(
            suffix, root, trivial_reachability_risk(suffix.out_dim)
        )
        rows_before = len(problem.model.constraints)
        bounds_before = (list(problem.model.lower), list(problem.model.upper))
        leaf = _ScopedLeafSolver(problem, _risk(reachable[1] + 50.0), "highs")
        child = Box(np.full(suffix.in_dim, -1.0), np.full(suffix.in_dim, 1.0))
        result = leaf.solve(child)
        assert result.status is SolveStatus.UNSAT
        assert len(problem.model.constraints) == rows_before
        assert (list(problem.model.lower), list(problem.model.upper)) == bounds_before

    def test_disjoint_child_box_is_unsat_without_solving(self, model, reachable):
        suffix = model.suffix_network(2)
        root = Box(np.zeros(suffix.in_dim), np.ones(suffix.in_dim))
        leaf = _ScopedLeafSolver.fresh(suffix, root, _risk(0.0), "highs")
        far = Box(np.full(suffix.in_dim, 10.0), np.full(suffix.in_dim, 11.0))
        assert leaf.solve(far).status is SolveStatus.UNSAT

    def test_relaxed_backend_rejected(self, model):
        suffix = model.suffix_network(2)
        root = Box(np.zeros(suffix.in_dim), np.ones(suffix.in_dim))
        with pytest.raises(ValueError, match="MILP-encoding"):
            _ScopedLeafSolver.fresh(suffix, root, _risk(0.0), "phase-split")


class TestValidation:
    def test_risk_dimension_mismatch(self, model):
        bad = RiskCondition("bad", (output_geq(5, 0, 0.0),))
        with pytest.raises(ValueError, match="outputs"):
            CegarLoop(model, bad, 0.0, 1.0)

    def test_inverted_root_rejected(self, model):
        with pytest.raises(ValueError, match="lower > upper"):
            CegarLoop(model, _risk(0.0), 1.0, 0.0)

    def test_point_region_is_decided_exactly(self, model, reachable):
        # a degenerate (zero-volume) region cannot be split: it must be
        # decided by exact evaluation of its single point
        point = np.full(4, 0.5)
        result = refine_region(
            model, _risk(reachable[1] + 50.0), point, point, budget=16,
            config=CegarConfig(solver=None),
        )
        assert result.status is not SolveStatus.UNKNOWN

    def test_loop_state_is_picklable(self, model, reachable):
        # campaign workers ship engines around; a parked loop must not
        # break that (the engine excludes loops from its state, but the
        # loop itself should still round-trip for checkpointing)
        loop = CegarLoop(
            model, _risk(reachable[1] + 0.3), 0.0, 1.0, cut_layer=2,
            config=CegarConfig(solver=None),
        )
        loop.run(budget=2)
        clone = pickle.loads(pickle.dumps(loop))
        assert clone.frontier_size == loop.frontier_size
        assert clone.decided_volume == loop.decided_volume


class TestPoolLifecycle:
    """Round-pool failure handling and chunk sizing (regression tests).

    Two bugs flushed out by the shared-memory handoff work: a pool that
    died mid-round used to stay referenced (every later round re-raised
    ``BrokenProcessPool`` against the dead executor), and the map chunk
    size was derived from ``_pool_workers`` — which the degrade path
    resets to 1, silently collapsing later rounds into one giant chunk.
    """

    @staticmethod
    def _loop_with_fake_solver(model, solved):
        class FakeLeafSolver:
            def solve(self, box):
                solved.append(box)
                from repro.verification.solver.result import SolveResult

                return SolveResult(status=SolveStatus.UNSAT)

        return CegarLoop(
            model, _risk(100.0), 0.0, 1.0, cut_layer=2,
            config=CegarConfig(solve_depth=1),
            leaf_solver=FakeLeafSolver(),
        )

    @staticmethod
    def _leaves(n):
        return [
            (
                Subproblem(
                    np.zeros(4), np.ones(4), depth=1, volume=0.5, path=f"/{i}"
                ),
                Box(np.full(4, float(i)), np.full(4, float(i) + 1.0)),
            )
            for i in range(n)
        ]

    def test_broken_pool_is_dropped_and_round_degrades(self, model):
        from concurrent.futures.process import BrokenProcessPool

        solved: list = []
        loop = self._loop_with_fake_solver(model, solved)

        class DeadPool:
            shutdowns = 0

            def map(self, *args, **kwargs):
                raise BrokenProcessPool("worker died")

            def shutdown(self, wait=True, cancel_futures=False):
                DeadPool.shutdowns += 1

        loop._pool = DeadPool()
        loop._pool_size = 2
        loop._pool_workers = 2

        results = loop._solve_leaves(self._leaves(3))
        assert len(results) == 3  # degraded to sequential, same round
        assert len(solved) == 3
        # the dead executor must not be re-submitted to next round
        assert loop._pool is None
        assert loop._pool_workers == 1
        assert DeadPool.shutdowns == 1

        solved.clear()
        assert len(loop._solve_leaves(self._leaves(2))) == 2
        assert len(solved) == 2  # sequential from here on, no pool error

    def test_chunk_size_uses_pool_size_captured_at_creation(self, model):
        captured = {}

        class RecordingPool:
            def map(self, fn, tasks, chunksize=None):
                tasks = list(tasks)
                captured["chunksize"] = chunksize
                captured["n_tasks"] = len(tasks)
                from repro.verification.solver.result import SolveResult

                return [SolveResult(status=SolveStatus.UNSAT) for _ in tasks]

        loop = self._loop_with_fake_solver(model, [])
        loop._pool = RecordingPool()
        loop._pool_size = 4  # captured at _make_pool time
        loop._pool_workers = 1  # the degrade-reset value that broke sizing

        results = loop._solve_leaves(self._leaves(40))
        assert len(results) == 40
        assert captured["n_tasks"] == 40
        # 40 leaves / (4 * pool_size) — not 40 / (4 * _pool_workers) = 10
        assert captured["chunksize"] == 2

    def test_discard_pool_is_idempotent_and_swallows_teardown_errors(
        self, model
    ):
        loop = self._loop_with_fake_solver(model, [])

        class ExplodingPool:
            def shutdown(self, wait=True, cancel_futures=False):
                raise RuntimeError("already broken")

        loop._pool = ExplodingPool()
        loop._discard_pool()  # must swallow the teardown error
        assert loop._pool is None
        loop._discard_pool()  # and be a no-op afterwards
