"""Unit and property tests for the Section III statistical layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verification.statistical import (
    ConfusionEstimate,
    clopper_pearson_lower,
    clopper_pearson_upper,
    estimate_confusion,
    residual_risk_bound,
)


class TestClopperPearson:
    def test_zero_successes(self):
        upper = clopper_pearson_upper(0, 100, 0.95)
        assert 0.0 < upper < 0.05  # rule of three: ~3/n
        assert upper == pytest.approx(1 - 0.05 ** (1 / 100), rel=1e-6)

    def test_all_successes(self):
        assert clopper_pearson_upper(100, 100) == 1.0
        assert clopper_pearson_lower(0, 100) == 0.0

    def test_upper_above_point_estimate(self):
        assert clopper_pearson_upper(10, 100) > 0.1

    def test_monotone_in_confidence(self):
        assert clopper_pearson_upper(5, 50, 0.99) > clopper_pearson_upper(5, 50, 0.9)

    def test_validation(self):
        with pytest.raises(ValueError, match="trials"):
            clopper_pearson_upper(0, 0)
        with pytest.raises(ValueError, match="successes"):
            clopper_pearson_upper(5, 3)
        with pytest.raises(ValueError, match="confidence"):
            clopper_pearson_upper(1, 10, 1.5)

    @given(st.integers(1, 500), st.integers(0, 500))
    @settings(max_examples=50, deadline=None)
    def test_bounds_bracket_estimate(self, trials, successes_raw):
        successes = min(successes_raw, trials)
        upper = clopper_pearson_upper(successes, trials)
        lower = clopper_pearson_lower(successes, trials)
        p_hat = successes / trials
        assert lower <= p_hat + 1e-12
        assert upper >= p_hat - 1e-12


class TestEstimateConfusion:
    def test_table_one_cells(self):
        h = np.array([1, 1, 0, 0, 1, 0])
        phi = np.array([1, 0, 1, 0, 1, 0])
        c = estimate_confusion(h, phi)
        assert c.alpha == pytest.approx(2 / 6)  # h=1, phi=1
        assert c.beta == pytest.approx(1 / 6)  # h=1, phi=0
        assert c.gamma == pytest.approx(1 / 6)  # h=0, phi=1
        assert c.delta == pytest.approx(2 / 6)  # h=0, phi=0

    def test_guarantee_is_one_minus_gamma(self):
        h = np.array([1, 0, 0])
        phi = np.array([1, 1, 0])
        c = estimate_confusion(h, phi)
        assert c.guarantee == pytest.approx(1.0 - 1 / 3)
        assert c.guarantee_lower <= c.guarantee

    def test_perfect_characterizer(self):
        phi = np.array([1, 0, 1, 0] * 25)
        c = estimate_confusion(phi, phi)
        assert c.gamma == 0.0
        assert c.characterizer_accuracy == 1.0
        assert c.recall == 1.0
        assert c.guarantee == 1.0
        assert c.guarantee_lower > 0.95  # CP bound with n=100, 0 misses

    def test_coin_flip_characterizer(self):
        rng = np.random.default_rng(0)
        phi = rng.random(10_000) > 0.5
        h = rng.random(10_000) > 0.5
        c = estimate_confusion(h, phi)
        assert abs(c.characterizer_accuracy - 0.5) < 0.03
        assert abs(c.gamma - 0.25) < 0.03

    def test_recall_nan_when_no_positives(self):
        c = estimate_confusion(np.zeros(10), np.zeros(10))
        assert np.isnan(c.recall)

    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            estimate_confusion(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError, match="zero samples"):
            estimate_confusion(np.zeros(0), np.zeros(0))

    def test_summary_mentions_guarantee(self):
        c = estimate_confusion(np.array([1, 0]), np.array([1, 0]))
        assert "1-gamma" in c.summary()

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_cells_always_sum_to_one(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        h = rng.random(n) > rng.random()
        phi = rng.random(n) > rng.random()
        c = estimate_confusion(h, phi)
        assert c.alpha + c.beta + c.gamma + c.delta == pytest.approx(1.0)


class TestConfusionValidation:
    def test_rejects_cells_not_summing_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            ConfusionEstimate(
                alpha=0.5, beta=0.5, gamma=0.5, delta=0.5,
                n=10, gamma_count=5, confidence=0.95,
            )


class TestResidualRiskBound:
    def test_no_proof_no_bound(self):
        c = estimate_confusion(np.array([1, 0]), np.array([1, 0]))
        assert residual_risk_bound(c, proof_holds=False) == 1.0

    def test_proof_bounds_by_gamma_upper(self):
        phi = np.array([1, 0] * 100)
        c = estimate_confusion(phi, phi)  # gamma = 0
        bound = residual_risk_bound(c, proof_holds=True)
        assert bound == c.gamma_upper
        assert bound < 0.05
