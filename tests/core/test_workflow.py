"""Unit tests for the SafetyVerifier workflow (on small MLP systems)."""

import numpy as np
import pytest

from repro.core.verdict import Verdict
from repro.core.workflow import SafetyVerifier
from repro.nn import Dense, ReLU, Sequential, Sigmoid
from repro.perception.characterizer import train_characterizer
from repro.perception.network import build_mlp_perception_network, default_cut_layer
from repro.properties.risk import RiskCondition, output_geq
from repro.verification.abstraction.interval import propagate_box
from repro.verification.sets import Box


@pytest.fixture
def mlp_system(rng):
    """MLP perception system over synthetic 6-d 'images'."""
    model = build_mlp_perception_network(input_dim=6, hidden=(12,), feature_width=6, seed=4)
    images = rng.uniform(0, 1, size=(200, 6))
    cut = default_cut_layer(model)
    return model, images, cut


class TestSetup:
    def test_rejects_non_pl_cut(self):
        model = Sequential(
            [Dense(4), Sigmoid(), Dense(2)], input_shape=(3,), seed=0
        )
        with pytest.raises(ValueError, match="piecewise-linear"):
            SafetyVerifier(model, cut_layer=1)

    def test_unknown_set_name(self, mlp_system):
        model, _, cut = mlp_system
        verifier = SafetyVerifier(model, cut)
        with pytest.raises(KeyError, match="no feature set"):
            verifier.feature_set("nope")

    def test_characterizer_layer_mismatch(self, mlp_system, rng):
        model, images, cut = mlp_system
        verifier = SafetyVerifier(model, cut)
        features = model.prefix_apply(images, cut)
        labels = (features[:, 0] > features[:, 0].mean()).astype(float)
        char, _ = train_characterizer(
            "p", cut + 1, features, labels, features, labels, epochs=5
        )
        with pytest.raises(ValueError, match="trained at layer"):
            verifier.attach_characterizer(char)

    def test_raw_set_dimension_checked(self, mlp_system):
        model, _, cut = mlp_system
        verifier = SafetyVerifier(model, cut)
        with pytest.raises(ValueError, match="does not match"):
            verifier.add_raw_set(Box(np.zeros(3), np.ones(3)), sound=False, name="x")


class TestFeatureSets:
    def test_data_set_contains_training_features(self, mlp_system):
        model, images, cut = mlp_system
        verifier = SafetyVerifier(model, cut)
        feature_set = verifier.add_feature_set_from_data(images)
        features = model.prefix_apply(images, cut)
        assert feature_set.contains(features).all()

    def test_static_interval_set_contains_data_set(self, mlp_system):
        model, images, cut = mlp_system
        verifier = SafetyVerifier(model, cut)
        data_set = verifier.add_feature_set_from_data(images, kind="box")
        static_set = verifier.add_static_feature_set(0.0, 1.0, name="static")
        dlo, dhi = data_set.bounds()
        slo, shi = static_set.bounds()
        assert np.all(slo <= dlo + 1e-9)
        assert np.all(shi >= dhi - 1e-9)

    def test_static_zonotope_set(self, mlp_system):
        model, images, cut = mlp_system
        verifier = SafetyVerifier(model, cut)
        z_set = verifier.add_static_feature_set(0.0, 1.0, domain="zonotope", name="z")
        features = model.prefix_apply(images, cut)
        assert z_set.contains(features).all()  # sound for all in [0,1]^d inputs

    def test_unknown_domain(self, mlp_system):
        model, _, cut = mlp_system
        verifier = SafetyVerifier(model, cut)
        with pytest.raises(ValueError, match="unknown domain"):
            verifier.add_static_feature_set(domain="polytope")


class TestVerify:
    def _reachable_risk(self, model, images, cut, quantile):
        outputs = model.forward(images)
        return RiskCondition(
            "q", (output_geq(2, 0, float(np.quantile(outputs[:, 0], quantile))),)
        )

    def test_unsafe_in_set_with_witness(self, mlp_system):
        model, images, cut = mlp_system
        verifier = SafetyVerifier(model, cut)
        verifier.add_feature_set_from_data(images)
        risk = self._reachable_risk(model, images, cut, 0.5)
        verdict = verifier.verify(risk)
        assert verdict.verdict is Verdict.UNSAFE_IN_SET
        assert verdict.counterexample is not None
        assert not verdict.proved

    def test_conditionally_safe_on_unreachable_risk(self, mlp_system):
        model, images, cut = mlp_system
        verifier = SafetyVerifier(model, cut)
        feature_set = verifier.add_feature_set_from_data(images)
        hull = propagate_box(verifier.suffix, Box(*feature_set.bounds()))
        risk = RiskCondition("never", (output_geq(2, 0, float(hull.upper[0]) + 1.0),))
        verdict = verifier.verify(risk)
        assert verdict.verdict is Verdict.CONDITIONALLY_SAFE
        assert verdict.monitored and verdict.proved

    def test_sound_set_gives_unconditional_safe(self, mlp_system):
        model, images, cut = mlp_system
        verifier = SafetyVerifier(model, cut)
        static = verifier.add_static_feature_set(0.0, 1.0, name="static")
        hull = propagate_box(verifier.suffix, Box(*static.bounds()))
        risk = RiskCondition("never", (output_geq(2, 0, float(hull.upper[0]) + 1.0),))
        verdict = verifier.verify(risk, set_name="static")
        assert verdict.verdict is Verdict.SAFE
        assert not verdict.monitored

    def test_characterizer_conjunct_used(self, mlp_system, rng):
        model, images, cut = mlp_system
        verifier = SafetyVerifier(model, cut)
        verifier.add_feature_set_from_data(images)
        features = model.prefix_apply(images, cut)
        labels = (features[:, 0] > np.median(features[:, 0])).astype(float)
        char, _ = train_characterizer(
            "high_f0", cut, features, labels, features, labels, epochs=100, seed=0
        )
        verifier.attach_characterizer(char)
        risk = self._reachable_risk(model, images, cut, 0.5)
        with_char = verifier.verify(risk, property_name="high_f0")
        without = verifier.verify(risk)
        # conjunction can only shrink the feasible region
        if without.verdict is Verdict.CONDITIONALLY_SAFE:
            assert with_char.verdict is Verdict.CONDITIONALLY_SAFE
        if with_char.counterexample is not None:
            assert with_char.counterexample.characterizer_logit >= -1e-9

    def test_missing_characterizer(self, mlp_system):
        model, images, cut = mlp_system
        verifier = SafetyVerifier(model, cut)
        verifier.add_feature_set_from_data(images)
        risk = self._reachable_risk(model, images, cut, 0.5)
        with pytest.raises(KeyError, match="no characterizer"):
            verifier.verify(risk, property_name="ghost")

    def test_all_solver_backends_agree(self, mlp_system):
        model, images, cut = mlp_system
        risk = self._reachable_risk(model, images, cut, 0.9)
        verdicts = []
        for solver in ("branch-and-bound", "highs", "phase-split"):
            verifier = SafetyVerifier(model, cut, solver=solver)
            verifier.add_feature_set_from_data(images)
            verdicts.append(verifier.verify(risk, prescreen_domain=None).verdict)
        assert verdicts[0] == verdicts[1] == verdicts[2]

    def test_summary_text(self, mlp_system):
        model, images, cut = mlp_system
        verifier = SafetyVerifier(model, cut)
        verifier.add_feature_set_from_data(images)
        risk = self._reachable_risk(model, images, cut, 0.5)
        text = verifier.verify(risk).summary()
        assert "verdict" in text and "solver" in text


class TestMonitorFactory:
    def test_monitor_uses_registered_set(self, mlp_system):
        model, images, cut = mlp_system
        verifier = SafetyVerifier(model, cut)
        verifier.add_feature_set_from_data(images)
        monitor = verifier.make_monitor()
        report = monitor.run(images[:20])
        assert report.violations == 0
