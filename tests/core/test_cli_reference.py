"""The auto-generated CLI reference cannot rot.

``docs/cli.md`` is committed output of
:func:`repro.cli_reference.render_cli_reference`; the sync test fails
the moment a subcommand, flag, default or help string changes without
regenerating the page (``PYTHONPATH=src python -m repro.cli_reference``).
"""

from __future__ import annotations

from repro.cli import build_parser
from repro.cli_reference import reference_path, render_cli_reference


class TestRendering:
    def test_every_subcommand_is_documented(self):
        page = render_cli_reference()
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        )
        for name in subparsers.choices:
            assert f"## `repro {name}`" in page

    def test_bench_options_are_documented(self):
        page = render_cli_reference()
        for flag in ("--suite", "--track", "--timeout", "--regenerate"):
            assert flag in page
        assert "docs/benchmarks" in page

    def test_defaults_and_choices_render(self):
        page = render_cli_reference()
        assert "`branch-and-bound`" in page  # a default value
        assert "`octagon`" in page  # a choices enumeration

    def test_page_is_deterministic(self):
        assert render_cli_reference() == render_cli_reference()


class TestCommittedPageIsInSync:
    def test_docs_cli_md_matches_fresh_rendering(self):
        """THE sync gate: regenerate docs/cli.md when this fails."""
        path = reference_path()
        assert path.is_file(), (
            "docs/cli.md is missing; generate it with "
            "`PYTHONPATH=src python -m repro.cli_reference`"
        )
        committed = path.read_text()
        fresh = render_cli_reference()
        assert committed == fresh, (
            "docs/cli.md is stale: the argparse tree changed without "
            "regenerating the CLI reference; run "
            "`PYTHONPATH=src python -m repro.cli_reference`"
        )
