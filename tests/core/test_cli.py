"""Unit tests for the CLI (build -> verify/monitor/range round trip)."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def built_system_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-system")
    code = main(
        [
            "build",
            "--out",
            str(out),
            "--scenes",
            "200",
            "--epochs",
            "10",
            "--properties",
            "bends_right",
        ]
    )
    assert code == 0
    return out


class TestBuild:
    def test_artifacts_written(self, built_system_dir):
        assert (built_system_dir / "perception.npz").exists()
        assert (built_system_dir / "features.npz").exists()
        assert (built_system_dir / "characterizer_bends_right.npz").exists()
        meta = json.loads((built_system_dir / "meta.json").read_text())
        assert meta["properties"] == ["bends_right"]
        assert meta["cut_layer"] > 0


class TestVerify:
    def test_campaign_runs(self, built_system_dir, capsys):
        code = main(["verify", "--out", str(built_system_dir), "--allow-unsafe"])
        assert code == 0
        output = capsys.readouterr().out
        assert "verdict" in output
        assert "steer_straight" in output

    def test_exit_code_signals_unsafe(self, built_system_dir):
        # the steer-straight property is reliably unprovable -> exit 1
        code = main(["verify", "--out", str(built_system_dir)])
        assert code in (0, 1)


class TestCampaign:
    def test_sweep_with_json_report(self, built_system_dir, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            [
                "campaign",
                "--out",
                str(built_system_dir),
                "--thresholds",
                "4",
                "--workers",
                "2",
                "--json",
                str(report_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "queries" in output and "cli-sweep" in output
        payload = json.loads(report_path.read_text())
        # 4 thresholds x (bends_right, no-characterizer)
        assert len(payload["results"]) == 8
        assert payload["verdict_counts"]


class TestMonitor:
    def test_monitor_stream(self, built_system_dir, capsys):
        code = main(
            ["monitor", "--out", str(built_system_dir), "--frames", "30"]
        )
        assert code == 0
        assert "frames monitored" in capsys.readouterr().out


class TestRange:
    def test_range_report(self, built_system_dir, capsys):
        code = main(["range", "--out", str(built_system_dir)])
        assert code == 0
        output = capsys.readouterr().out
        assert "waypoint" in output and "orientation" in output


class TestBench:
    @pytest.fixture(scope="class")
    def suite_dir(self, tmp_path_factory):
        from repro.bench import generate_smoke_suite

        directory = tmp_path_factory.mktemp("bench-suite")
        generate_smoke_suite(directory)
        return directory

    def test_competition_over_instance_directory(self, suite_dir, tmp_path, capsys):
        out = tmp_path / "reports"
        code = main(
            [
                "bench",
                "--instances",
                str(suite_dir),
                "--out",
                str(out),
                "--quiet",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "reports written" in output
        assert "PAR-2" in output
        markdown = (out / "report.md").read_text()
        assert "## Scores" in markdown and "PAR-2" in markdown
        payload = json.loads((out / "report.json").read_text())
        assert payload["ok"] is True
        assert len(payload["tracks"]) >= 2

    def test_custom_tracks_and_timeout(self, suite_dir, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--instances",
                str(suite_dir),
                "--out",
                str(tmp_path / "reports"),
                "--track",
                "only=interval:exact:highs",
                "--timeout",
                "15",
                "--quiet",
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "reports" / "report.json").read_text())
        assert [t["name"] for t in payload["tracks"]] == ["only"]
        assert all(o["timeout"] == 15 for o in payload["outcomes"])
