"""Unit tests for verdicts and experiment configuration."""

import numpy as np
import pytest

from repro.core.config import ExperimentConfig
from repro.core.verdict import Verdict, VerificationVerdict
from repro.properties.library import STEER_FAR_LEFT
from repro.verification.solver.result import SolveResult, SolveStatus
from repro.verification.statistical import estimate_confusion


def _verdict(v, confusion=None):
    status = SolveStatus.UNSAT if v is not Verdict.UNSAFE_IN_SET else SolveStatus.SAT
    witness = np.zeros(3) if status is SolveStatus.SAT else None
    return VerificationVerdict(
        verdict=v,
        property_name="bends_right",
        risk=STEER_FAR_LEFT,
        feature_set_kind="box+diff(data)",
        monitored=True,
        solve_result=SolveResult(status=status, witness=witness),
        confusion=confusion,
    )


class TestVerificationVerdict:
    def test_proved_flags(self):
        assert _verdict(Verdict.SAFE).proved
        assert _verdict(Verdict.CONDITIONALLY_SAFE).proved
        assert not _verdict(Verdict.UNSAFE_IN_SET).proved
        assert not _verdict(Verdict.UNKNOWN).proved

    def test_statistical_guarantee_requires_proof_and_confusion(self):
        confusion = estimate_confusion(
            np.array([1, 0] * 50), np.array([1, 0] * 50)
        )
        assert _verdict(Verdict.CONDITIONALLY_SAFE).statistical_guarantee is None
        assert _verdict(Verdict.UNSAFE_IN_SET, confusion).statistical_guarantee is None
        g = _verdict(Verdict.CONDITIONALLY_SAFE, confusion).statistical_guarantee
        assert g is not None and 0.9 < g <= 1.0

    def test_summary_includes_monitor_note(self):
        text = _verdict(Verdict.CONDITIONALLY_SAFE).summary()
        assert "monitor required" in text


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.set_kind == "box+diff"

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 10"):
            ExperimentConfig(train_scenes=5)
        with pytest.raises(ValueError, match="set kind"):
            ExperimentConfig(set_kind="sphere")
        with pytest.raises(ValueError, match="margin"):
            ExperimentConfig(set_margin=-1.0)

    def test_frozen(self):
        config = ExperimentConfig()
        with pytest.raises(AttributeError):
            config.seed = 7
