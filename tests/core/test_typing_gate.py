"""The mypy gate, runnable wherever mypy is installed.

CI runs ``mypy --config-file mypy.ini`` directly; this test mirrors the
gate for local runs so a typing regression in the strict-checked
modules (``repro.verification.ir``, ``repro.api.query``,
``repro.api.campaign`` — see ``mypy.ini``) fails the suite instead of
surfacing only on the runner.  Skipped when mypy is absent.
"""

from pathlib import Path

import pytest

mypy_api = pytest.importorskip("mypy.api")

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_strict_modules_typecheck() -> None:
    stdout, stderr, status = mypy_api.run(
        ["--config-file", str(REPO_ROOT / "mypy.ini")]
    )
    assert status == 0, f"mypy failed:\n{stdout}\n{stderr}"
