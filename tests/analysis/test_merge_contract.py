"""IR013: the merged-program metadata contract.

A program produced by :meth:`MergeState.program` must carry a
``merge_groups`` map whose per-op records name the source layer, the
original width, and the inc/dec group partitions; the layer indices
must strictly increase along the op chain (the group graph is acyclic);
and each record's groups must partition the original width and agree
with the merged op's output dimension.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.analysis.ir_analysis import IRValidationError, validate_program
from repro.verification.abstraction.merge import MergeState
from repro.verification.ir import AffineOp, LoweredProgram, ReLUOp


def _chain_program(seed: int = 7) -> LoweredProgram:
    rng = np.random.default_rng(seed)
    dims = (3, 6, 5, 2)
    ops: list = []
    for i in range(len(dims) - 1):
        ops.append(
            AffineOp(
                rng.normal(size=(dims[i + 1], dims[i])),
                rng.normal(size=dims[i + 1]),
            )
        )
        if i < len(dims) - 2:
            ops.append(ReLUOp(dims[i + 1]))
    return LoweredProgram(ops, dims[0], source="merge-contract")


@pytest.fixture()
def merged():
    program = _chain_program()
    state = MergeState.coarsest(program, -np.ones(3), np.ones(3))
    return state.program()


def _corrupted(merged, mutate):
    bad = copy.copy(merged)
    bad.merge_groups = copy.deepcopy(merged.merge_groups)
    mutate(bad)
    return bad


def _ir013(excinfo) -> list:
    return [d for d in excinfo.value.diagnostics if d.code == "IR013"]


class TestCleanMergedPrograms:
    def test_built_merged_program_validates(self, merged):
        validate_program(merged)

    def test_metadata_names_every_merged_affine(self, merged):
        assert set(merged.merge_groups) == {0, 2}  # both hidden affines
        layers = [merged.merge_groups[k]["layer"] for k in sorted(merged.merge_groups)]
        assert layers == sorted(layers)  # acyclic: strictly increasing
        for record in merged.merge_groups.values():
            members = [n for g in record["inc"] for n in g]
            assert sorted(members) == list(range(record["width"]))

    def test_plain_programs_are_exempt(self):
        validate_program(_chain_program())  # no metadata, no /merged tag


class TestContractViolations:
    def test_merged_source_without_metadata(self, merged):
        bad = _corrupted(merged, lambda p: setattr(p, "merge_groups", None))
        with pytest.raises(IRValidationError) as excinfo:
            validate_program(bad)
        assert _ir013(excinfo)

    def test_empty_metadata_map(self, merged):
        bad = _corrupted(merged, lambda p: setattr(p, "merge_groups", {}))
        with pytest.raises(IRValidationError) as excinfo:
            validate_program(bad)
        assert _ir013(excinfo)

    def test_group_member_out_of_range(self, merged):
        def mutate(p):
            record = p.merge_groups[0]
            record["inc"] = ((record["width"] + 3,),) + tuple(record["inc"][1:])

        with pytest.raises(IRValidationError) as excinfo:
            validate_program(_corrupted(merged, mutate))
        diags = _ir013(excinfo)
        assert any("out of range" in d.message for d in diags)

    def test_overlapping_groups_break_the_partition(self, merged):
        def mutate(p):
            record = p.merge_groups[0]
            record["inc"] = tuple(record["inc"]) + ((record["inc"][0][0],),)

        with pytest.raises(IRValidationError) as excinfo:
            validate_program(_corrupted(merged, mutate))
        assert any("two" in d.message for d in _ir013(excinfo))

    def test_incomplete_cover(self, merged):
        def mutate(p):
            record = p.merge_groups[0]
            first = record["inc"][0]
            record["inc"] = (tuple(first[:-1]),) + tuple(record["inc"][1:])

        with pytest.raises(IRValidationError) as excinfo:
            validate_program(_corrupted(merged, mutate))
        assert _ir013(excinfo)

    def test_non_increasing_layers_are_cyclic(self, merged):
        def mutate(p):
            keys = sorted(p.merge_groups)
            a, b = keys[0], keys[1]
            p.merge_groups[a]["layer"], p.merge_groups[b]["layer"] = (
                p.merge_groups[b]["layer"],
                p.merge_groups[a]["layer"],
            )

        with pytest.raises(IRValidationError) as excinfo:
            validate_program(_corrupted(merged, mutate))
        assert any("acyclic" in d.message for d in _ir013(excinfo))

    def test_width_disagreeing_with_op(self, merged):
        def mutate(p):
            record = p.merge_groups[0]
            record["dec"] = tuple(record["dec"]) + ((record["width"] - 1,),)

        with pytest.raises(IRValidationError) as excinfo:
            validate_program(_corrupted(merged, mutate))
        assert _ir013(excinfo)

    def test_metadata_pointing_at_a_relu(self, merged):
        def mutate(p):
            p.merge_groups[1] = p.merge_groups.pop(0)

        with pytest.raises(IRValidationError) as excinfo:
            validate_program(_corrupted(merged, mutate))
        assert any("not an affine op" in d.message for d in _ir013(excinfo))
