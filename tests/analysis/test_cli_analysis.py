"""The ``repro analyze`` and ``repro lint`` subcommands end to end."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SMOKE_DIR = REPO_ROOT / "benchmarks" / "instances" / "smoke"


@pytest.fixture(scope="module")
def convnet_onnx(tmp_path_factory):
    from repro.interchange import export_onnx
    from repro.nn import Conv2D, Dense, Flatten, ReLU, Sequential

    model = Sequential(
        [Conv2D(2, 3, stride=1, padding=1), ReLU(), Flatten(), Dense(2)],
        input_shape=(1, 6, 6),
        seed=3,
    )
    path = tmp_path_factory.mktemp("analyze") / "convnet.onnx"
    return str(export_onnx(model, path))


class TestAnalyze:
    def test_audit_alone_passes(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "registry audit" in out
        assert "0 error(s)" in out

    def test_smoke_audit(self, capsys):
        assert main(["analyze", "--smoke"]) == 0
        assert "smoke check(s)" in capsys.readouterr().out

    def test_clean_onnx_target(self, convnet_onnx, capsys):
        assert main(["analyze", "--no-audit", "--onnx", convnet_onnx]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_domain_gap_rejects_target(self, convnet_onnx, capsys):
        code = main(
            ["analyze", "--no-audit", "--onnx", convnet_onnx,
             "--domain", "symbolic"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "IR006" in out and "ConvOp" in out

    def test_smoke_instances_are_analyzer_clean(self, capsys):
        assert main(
            ["analyze", "--no-audit", "--instances", str(SMOKE_DIR)]
        ) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_payload(self, convnet_onnx, tmp_path):
        report_path = tmp_path / "report.json"
        assert main(
            ["analyze", "--onnx", convnet_onnx, "--json", str(report_path)]
        ) == 0
        payload = json.loads(report_path.read_text())
        assert payload["audit"]["ok"] is True
        assert payload["reports"][0]["ok"] is True
        assert payload["reports"][0]["facts"]


class TestLint:
    def test_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def work(x):\n    return x + 1\n")
        assert main(["lint", str(clean)]) == 0
        assert "clean: 0 findings" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "verification" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("flag = x == 1.5\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RL003" in out and "1 finding(s)" in out

    def test_select_filters(self, tmp_path, capsys):
        bad = tmp_path / "verification" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("flag = x == 1.5\n")
        assert main(
            ["lint", str(tmp_path), "--select", "deprecated-shim"]
        ) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert code in out

    def test_src_gate(self, capsys):
        assert main(["lint", str(REPO_ROOT / "src")]) == 0
        assert "clean" in capsys.readouterr().out
