"""Every lint rule gets a positive and a negative fixture, plus the
suppression mechanism and the src self-clean gate."""

from pathlib import Path
from textwrap import dedent

from repro.analysis.lint import (
    RULES,
    lint_paths,
    lint_source,
    render_findings,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: a path under a scoped component (activates RL002/RL003)
SCOPED = "src/repro/verification/somefile.py"
#: a path outside every scoped component
UNSCOPED = "src/repro/scenario/somefile.py"


def codes(source: str, path: str = SCOPED) -> list[str]:
    return [f.code for f in lint_source(dedent(source), path)]


class TestDeprecatedShim:
    def test_positive_name_call(self):
        assert codes("propagate_batch(model, boxes, 3)") == ["RL001"]

    def test_positive_attribute_call(self):
        assert codes("propagate.layer_interval(layer, box)") == ["RL001"]

    def test_negative_registry_call(self):
        assert codes("get_domain('interval').propagate(net, lifted)") == []

    def test_defining_module_is_exempt(self):
        source = """
            def propagate_batch(net, boxes, to_layer):
                return _impl(net, boxes, to_layer)

            def _impl(net, boxes, to_layer):
                return propagate_batch(net, boxes, to_layer)
        """
        assert codes(source) == []

    def test_every_shim_name_is_flagged(self):
        from repro.analysis.lint import DEPRECATED_SHIMS

        for name in DEPRECATED_SHIMS:
            assert codes(f"{name}()") == ["RL001"], name


class TestUnseededRng:
    def test_positive_default_rng_without_seed(self):
        assert codes("rng = np.random.default_rng()") == ["RL002"]

    def test_positive_legacy_global_rng(self):
        assert codes("x = np.random.normal(size=3)") == ["RL002"]

    def test_negative_seeded(self):
        assert codes("rng = np.random.default_rng(1234)") == []

    def test_negative_generator_method(self):
        # a Generator method is seeded state, not the global stream
        assert codes("x = rng.normal(size=3)") == []

    def test_out_of_scope_path_is_ignored(self):
        assert codes("x = np.random.normal(3)", path=UNSCOPED) == []


class TestFloatEq:
    def test_positive(self):
        assert codes("flag = value == 1.5") == ["RL003"]

    def test_positive_negative_literal(self):
        assert codes("flag = value != -2.25") == ["RL003"]

    def test_negative_zero_sentinel(self):
        assert codes("flag = value == 0.0") == []

    def test_negative_int_literal(self):
        assert codes("flag = value == 3") == []

    def test_out_of_scope_path_is_ignored(self):
        assert codes("flag = value == 1.5", path=UNSCOPED) == []


class TestPoolPicklable:
    def test_positive_lambda_submit(self):
        assert codes("pool.submit(lambda q: run(q), query)") == ["RL004"]

    def test_positive_nested_def(self):
        source = """
            def run_all(executor, items):
                def work(item):
                    return item + 1
                return list(executor.map(work, items))
        """
        assert codes(source) == ["RL004"]

    def test_positive_initializer_lambda(self):
        assert codes(
            "pool = ProcessPoolExecutor(4, initializer=lambda: init())"
        ) == ["RL004"]

    def test_negative_module_level_callable(self):
        source = """
            def work(item):
                return item + 1

            def run_all(executor, items):
                return list(executor.map(work, items))
        """
        assert codes(source) == []

    def test_negative_non_pool_receiver(self):
        assert codes("queue.submit(lambda: 1)") == []


class TestWarnStacklevel:
    def test_positive_missing_stacklevel(self):
        assert codes(
            "warnings.warn('use the registry', DeprecationWarning)"
        ) == ["RL005"]

    def test_positive_stacklevel_one(self):
        assert codes(
            "warnings.warn('x', DeprecationWarning, stacklevel=1)"
        ) == ["RL005"]

    def test_negative_stacklevel_two(self):
        assert codes(
            "warnings.warn('x', DeprecationWarning, stacklevel=2)"
        ) == []

    def test_negative_other_category(self):
        assert codes("warnings.warn('x', RuntimeWarning)") == []

    def test_category_keyword_form(self):
        assert codes(
            "warnings.warn('x', category=DeprecationWarning)"
        ) == ["RL005"]


class TestSuppression:
    def test_allow_by_rule_name(self):
        assert codes("flag = x == 1.5  # lint: allow(float-eq)") == []

    def test_allow_by_code(self):
        assert codes("flag = x == 1.5  # lint: allow(RL003)") == []

    def test_allow_list(self):
        assert codes(
            "flag = x == 1.5  # lint: allow(float-eq, deprecated-shim)"
        ) == []

    def test_other_rule_not_suppressed(self):
        assert codes("flag = x == 1.5  # lint: allow(unseeded-rng)") == [
            "RL003"
        ]


class TestDriver:
    def test_syntax_error_is_reported_not_raised(self):
        findings = lint_source("def broken(:\n", SCOPED)
        assert [f.code for f in findings] == ["RL000"]

    def test_lint_paths_select_and_ignore(self, tmp_path):
        bad = tmp_path / "verification" / "mod.py"
        bad.parent.mkdir()
        bad.write_text("x = v == 1.5\npropagate_batch(n, b, 3)\n")
        all_codes = {f.code for f in lint_paths([tmp_path])}
        assert all_codes == {"RL001", "RL003"}
        only = lint_paths([tmp_path], select=["float-eq"])
        assert {f.code for f in only} == {"RL003"}
        rest = lint_paths([tmp_path], ignore=["RL003"])
        assert {f.code for f in rest} == {"RL001"}

    def test_findings_render_with_location(self, tmp_path):
        bad = tmp_path / "api" / "mod.py"
        bad.parent.mkdir()
        bad.write_text("flag = x == 2.5\n")
        findings = lint_paths([tmp_path])
        text = render_findings(findings)
        assert f"{bad}:1:" in text
        assert "1 finding(s)" in text
        assert render_findings([]) == "clean: 0 findings"

    def test_rule_table_is_complete(self):
        assert set(RULES) == {"RL001", "RL002", "RL003", "RL004", "RL005"}


class TestSelfClean:
    def test_src_tree_is_lint_clean(self):
        findings = lint_paths([REPO_ROOT / "src"])
        assert findings == [], render_findings(findings)
