"""IR analyzer: clean programs pass, malformed programs get op-indexed
diagnostics, and the validator guards the lowering cache."""

from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    AnalysisReport,
    IRValidationError,
    analyze_model,
    analyze_program,
    validate_program,
)
from repro.analysis.ir_analysis import model_error_summary
from repro.nn.graph import (
    AffineOp,
    ElementwiseAffineOp,
    MonotoneOp,
    ReLUOp,
    ReshapeOp,
)
from repro.perception.network import (
    build_direct_perception_network,
    build_mlp_perception_network,
)
from repro.verification.ir import LoweredProgram, lowered_full, lower_network

REPO_ROOT = Path(__file__).resolve().parents[2]
SMOKE_DIR = REPO_ROOT / "benchmarks" / "instances" / "smoke"


def _program(*ops, in_dim):
    return LoweredProgram(list(ops), in_dim, source="test")


def _affine(rows, cols, seed=0):
    rng = np.random.default_rng(seed)
    return AffineOp(rng.normal(size=(rows, cols)), rng.normal(size=rows))


class TestCleanModels:
    def test_tiny_mlp_is_clean(self, tiny_mlp):
        report = analyze_model(tiny_mlp)
        assert report.ok
        assert report.in_dim == 4 and report.out_dim == 2
        assert [f.kind for f in report.facts] == [
            "AffineOp", "ReLUOp", "AffineOp", "ReLUOp", "AffineOp",
        ]

    def test_tiny_convnet_is_clean(self, tiny_convnet):
        report = analyze_model(tiny_convnet)
        assert report.ok
        # BatchNorm must have been folded away: no elementwise op survives
        assert "ElementwiseAffineOp" not in {f.kind for f in report.facts}

    @pytest.mark.parametrize("builder", [
        lambda: build_direct_perception_network((1, 16, 16), feature_width=4),
        lambda: build_mlp_perception_network(),
    ])
    def test_native_example_models_are_clean(self, builder):
        report = analyze_model(builder())
        assert report.ok, report.summary()

    def test_smoke_suite_instances_are_clean(self):
        from repro.interchange.instances import load_instances

        instances = load_instances(SMOKE_DIR)
        assert instances
        seen = set()
        for instance in instances:
            if instance.model_path in seen:
                continue
            seen.add(instance.model_path)
            report = analyze_model(instance.load_model())
            assert report.ok, f"{instance.name}: {report.summary()}"
            assert model_error_summary(instance.load_model()) is None

    def test_pl_view_is_clean(self, tiny_convnet):
        program = lower_network(tiny_convnet, 3, None, piecewise_linear=True)
        report = analyze_program(program)
        assert report.ok
        assert report.source.endswith("/pl")


class TestStructuralErrors:
    def test_dim_mismatch_is_op_indexed(self):
        program = _program(_affine(3, 4), ReLUOp(3), _affine(2, 3), in_dim=4)
        program.ops[1] = ReLUOp(7)  # break the dataflow chain
        with pytest.raises(IRValidationError) as excinfo:
            validate_program(program)
        diags = excinfo.value.diagnostics
        assert any(
            d.code == "IR001" and d.op_index == 1 and d.op_kind == "ReLUOp"
            for d in diags
        )

    def test_reshape_count_mismatch(self):
        program = _program(ReshapeOp((4,), (2, 2)), in_dim=4)
        program.ops[0].out_shape = (5,)  # corrupt after construction
        with pytest.raises(IRValidationError) as excinfo:
            validate_program(program)
        codes = {d.code for d in excinfo.value.diagnostics}
        assert "IR002" in codes
        assert "IR011" in codes  # metadata out_dim now also disagrees

    def test_non_finite_parameters(self):
        op = _affine(3, 4)
        op.weight[0, 0] = np.nan
        with pytest.raises(IRValidationError) as excinfo:
            validate_program(_program(op, in_dim=4))
        assert any(d.code == "IR003" for d in excinfo.value.diagnostics)

    def test_dtype_drift(self):
        op = _affine(3, 4)
        op.weight = op.weight.astype(np.float32)
        with pytest.raises(IRValidationError) as excinfo:
            validate_program(_program(op, in_dim=4))
        assert any(d.code == "IR010" for d in excinfo.value.diagnostics)

    def test_unfused_batchnorm(self):
        rng = np.random.default_rng(1)
        program = _program(
            _affine(3, 4),
            ElementwiseAffineOp(rng.normal(size=3) + 2.0, rng.normal(size=3)),
            in_dim=4,
        )
        with pytest.raises(IRValidationError) as excinfo:
            validate_program(program)
        diag = next(
            d for d in excinfo.value.diagnostics if d.code == "IR005"
        )
        assert diag.op_index == 1
        assert "AffineOp" in diag.message

    def test_unfused_check_skipped_in_pl_view(self):
        rng = np.random.default_rng(1)
        program = LoweredProgram(
            [
                _affine(3, 4),
                ElementwiseAffineOp(
                    rng.normal(size=3) + 2.0, rng.normal(size=3)
                ),
            ],
            4,
            source="layers[0:2]/pl",
        )
        validate_program(program)  # the /pl view may carry such pairs

    def test_metadata_out_dim_drift(self):
        program = _program(_affine(3, 4), in_dim=4)
        program.out_dim = 5
        with pytest.raises(IRValidationError) as excinfo:
            validate_program(program)
        assert any(d.code == "IR011" for d in excinfo.value.diagnostics)

    def test_valid_program_passes(self, tiny_mlp):
        validate_program(lowered_full(tiny_mlp))


class TestFullAnalysis:
    def test_missing_domain_is_an_error(self, tiny_convnet):
        report = analyze_model(tiny_convnet, domain="symbolic")
        assert not report.ok
        diag = next(d for d in report.errors if d.code == "IR006")
        assert diag.op_kind == "ConvOp"
        assert diag.op_index is not None
        assert "symbolic" in diag.message

    def test_unknown_domain_raises(self, tiny_mlp):
        with pytest.raises(ValueError):
            analyze_model(tiny_mlp, domain="polyhedra")

    def test_coverage_gaps_are_info_without_domain(self, tiny_convnet):
        report = analyze_model(tiny_convnet)
        assert report.ok  # infos never fail a report
        infos = [d for d in report.diagnostics if d.code == "IR106"]
        assert any("symbolic" in d.message for d in infos)

    def test_monotone_in_pl_view(self):
        program = _program(MonotoneOp("tanh", 4), in_dim=4)
        report = analyze_program(program, expect_piecewise_linear=True)
        assert any(d.code == "IR004" for d in report.errors)
        assert analyze_program(program).ok  # fine in the prefix view

    def test_degenerate_rows_warn(self):
        op = _affine(3, 4)
        op.weight[1, :] = 0.0
        report = analyze_program(_program(op, in_dim=4))
        assert report.ok  # warnings don't fail the report
        assert any(d.code == "IR007" for d in report.warnings)

    def test_dead_ops_warn(self):
        report = analyze_program(
            _program(ReLUOp(4), ReLUOp(4), in_dim=4)
        )
        assert any(d.code == "IR008" for d in report.warnings)
        identity = _program(
            ElementwiseAffineOp(np.ones(4), np.zeros(4)), in_dim=4
        )
        assert any(
            d.code == "IR008"
            for d in analyze_program(identity).warnings
        )

    def test_lipschitz_growth_warns_once(self):
        big = AffineOp(np.full((4, 4), 1e5), np.zeros(4))
        report = analyze_program(_program(big, big, big, in_dim=4))
        growth = [d for d in report.warnings if d.code == "IR009"]
        assert len(growth) == 1

    def test_facts_carry_dataflow(self, tiny_mlp):
        report = analyze_model(tiny_mlp)
        facts = report.facts
        assert facts[0].in_dim == 4 and facts[-1].out_dim == 2
        for before, after in zip(facts, facts[1:]):
            assert before.out_dim == after.in_dim
        assert all("interval" in f.domains for f in facts)
        assert facts[-1].cumulative_gain > 0.0

    def test_report_serializes(self, tiny_mlp):
        payload = analyze_model(tiny_mlp).to_dict()
        assert payload["ok"] is True
        assert len(payload["facts"]) == 5
        import json

        json.dumps(payload)  # JSON-safe end to end


class TestLoweringIntegration:
    def test_corrupted_model_fails_at_lowering_time(self, tiny_mlp):
        tiny_mlp.layers[0].weight.value[0, 0] = np.nan
        with pytest.raises(IRValidationError, match="IR003"):
            lowered_full(tiny_mlp)

    def test_analyze_model_captures_lowering_failure(self, tiny_mlp):
        tiny_mlp.layers[2].weight.value[:] = np.inf
        report = analyze_model(tiny_mlp)
        assert isinstance(report, AnalysisReport)
        assert not report.ok
        assert any(d.code == "IR003" for d in report.errors)

    def test_engine_analyze(self, tiny_mlp):
        from repro.api import VerificationEngine

        engine = VerificationEngine(tiny_mlp, 2, solver="highs")
        report = engine.analyze()
        assert report.ok
        assert not engine.analyze(domain="interval").errors

    def test_model_error_summary_is_compact(self, tiny_mlp):
        tiny_mlp.layers[0].weight.value[:] = np.nan
        summary = model_error_summary(tiny_mlp)
        assert summary is not None and "IR003" in summary
        assert summary.count("\n") == 0


class TestBenchRunnerIntegration:
    def test_invalid_instance_gets_analyzer_diagnostics(self, tiny_mlp, tmp_path):
        from repro.bench.runner import run_competition
        from repro.bench.tracks import DEFAULT_TRACKS
        from repro.interchange.instances import export_instance
        from repro.properties.risk import RiskCondition, output_geq

        risk = RiskCondition("r", (output_geq(2, 0, 100.0),))
        instance = export_instance(
            tmp_path, "bad", tiny_mlp, 0.0, 1.0, [risk], timeout=5.0
        )
        # corrupting the file on disk is awkward; corrupt after load instead
        broken = instance.load_model()
        broken.layers[0].weight.value[0, 0] = np.nan
        object.__setattr__(instance, "load_model", lambda: broken)
        report = run_competition(
            [instance], [DEFAULT_TRACKS[0]], instance_dir=str(tmp_path)
        )
        outcome = report.outcomes[0]
        assert outcome.status == "error"
        assert "static analysis rejected model" in outcome.detail
        assert "IR003" in outcome.detail
