"""Registry contract audit: coverage floor, smoke checks, fail-fast."""

import numpy as np
import pytest

import repro.analysis.contracts as contracts
from repro.analysis import (
    RegistryContractError,
    audit_registry,
    ensure_registry_contracts,
)
from repro.analysis.contracts import ALL_OPS, COVERAGE_FLOOR, _sample_op
from repro.nn.graph import ConvOp, MaxGroupOp, ReLUOp
from repro.verification.abstraction.domain import _TRANSFORMERS


@pytest.fixture(autouse=True)
def _reset_contract_flag(monkeypatch):
    """Each test re-audits from scratch (the flag is once-per-process)."""
    monkeypatch.setattr(contracts, "_CONTRACTS_OK", False)


class TestAudit:
    def test_current_registry_passes(self):
        audit = audit_registry()
        assert audit.ok, audit.summary()
        assert set(audit.coverage) == {
            "interval", "octagon", "zonotope", "symbolic",
        }

    def test_coverage_matches_the_frozen_floor(self):
        audit = audit_registry()
        for name, op_types in COVERAGE_FLOOR.items():
            floor = {t.__name__ for t in op_types}
            assert floor <= set(audit.coverage[name])

    def test_smoke_checks_cover_every_registered_pair(self):
        audit = audit_registry(smoke=True)
        assert audit.ok, audit.summary()
        assert audit.smoke_checks == sum(
            len(kinds) for kinds in audit.coverage.values()
        )
        assert audit.smoke_checks == len(_TRANSFORMERS)

    def test_smoke_audit_is_deterministic(self):
        first = audit_registry(smoke=True, seed=7).summary()
        second = audit_registry(smoke=True, seed=7).summary()
        assert first == second

    @pytest.mark.parametrize(
        "pair",
        [("interval", ReLUOp), ("zonotope", MaxGroupOp), ("octagon", ConvOp)],
        ids=lambda p: f"{p[0]}-{p[1].__name__}",
    )
    def test_deleting_any_transformer_fails_the_audit(self, monkeypatch, pair):
        monkeypatch.delitem(_TRANSFORMERS, pair)
        audit = audit_registry()
        assert not audit.ok
        diag = next(d for d in audit.errors if d.code in ("RC001", "RC003"))
        assert pair[1].__name__ in diag.message

    def test_unsound_transformer_fails_the_smoke_check(self, monkeypatch):
        sound = _TRANSFORMERS[("interval", ReLUOp)]

        def shrunk(dom, op, value):
            out = sound(dom, op, value)
            from repro.verification.sets import BoxBatch

            return BoxBatch(out.lower + 0.5, np.maximum(out.lower + 0.5, out.upper))

        monkeypatch.setitem(_TRANSFORMERS, ("interval", ReLUOp), shrunk)
        audit = audit_registry(smoke=True)
        assert any(d.code in ("RC006", "RC007") for d in audit.errors)

    def test_sample_ops_exist_for_every_primitive(self):
        rng = np.random.default_rng(0)
        for op_type in ALL_OPS:
            op = _sample_op(op_type, rng)
            assert isinstance(op, op_type)
            out = op.apply(np.zeros((2, op.in_dim)))
            assert out.shape == (2, op.out_dim)


class TestEnsureContracts:
    def test_passes_and_caches(self):
        ensure_registry_contracts()
        assert contracts._CONTRACTS_OK

    def test_violation_raises(self, monkeypatch):
        monkeypatch.delitem(_TRANSFORMERS, ("symbolic", ReLUOp))
        with pytest.raises(RegistryContractError, match="ReLUOp"):
            ensure_registry_contracts()
        assert not contracts._CONTRACTS_OK

    def test_engine_construction_fails_fast(self, monkeypatch, tiny_mlp):
        from repro.api import VerificationEngine

        monkeypatch.delitem(_TRANSFORMERS, ("octagon", ReLUOp))
        with pytest.raises(RegistryContractError):
            VerificationEngine(tiny_mlp, 2, solver="highs")
