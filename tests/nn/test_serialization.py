"""Unit tests for model persistence."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sequential,
    load_model,
    mse_loss,
    save_model,
    train,
)


def test_roundtrip_mlp(tmp_path, rng):
    model = Sequential([Dense(6), ReLU(), Dense(2)], input_shape=(4,), seed=1)
    path = tmp_path / "mlp.npz"
    save_model(model, path)
    clone = load_model(path)
    x = rng.normal(size=(5, 4))
    np.testing.assert_array_equal(clone.forward(x), model.forward(x))


def test_roundtrip_convnet_with_bn(tmp_path, rng):
    model = Sequential(
        [
            Conv2D(3, 3, stride=2, padding=1),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(8),
            BatchNorm(),
            LeakyReLU(0.1),
            Dropout(0.2),
            Dense(2),
        ],
        input_shape=(1, 8, 8),
        seed=2,
    )
    # give BatchNorm non-trivial running stats
    x = rng.normal(size=(32, 1, 8, 8))
    y = rng.normal(size=(32, 2))
    train(model, Adam(model.parameters()), mse_loss, x, y, epochs=2, batch_size=8)

    path = tmp_path / "conv.npz"
    save_model(model, path)
    clone = load_model(path)
    np.testing.assert_allclose(clone.forward(x), model.forward(x), atol=1e-12)


def test_trained_weights_survive(tmp_path, rng):
    model = Sequential([Dense(1)], input_shape=(3,), seed=3)
    x = rng.normal(size=(50, 3))
    y = x @ np.array([[2.0], [0.0], [-1.0]])
    train(model, Adam(model.parameters(), lr=0.05), mse_loss, x, y, epochs=50)
    path = tmp_path / "trained.npz"
    save_model(model, path)
    clone = load_model(path)
    np.testing.assert_array_equal(
        clone.layers[0].weight.value, model.layers[0].weight.value
    )


def test_architecture_preserved(tmp_path):
    model = Sequential(
        [Conv2D(5, 3, stride=2, padding=1), ReLU(), Flatten(), Dense(2)],
        input_shape=(2, 6, 6),
        seed=4,
    )
    path = tmp_path / "arch.npz"
    save_model(model, path)
    clone = load_model(path)
    assert [type(l).__name__ for l in clone.layers] == [
        "Conv2D", "ReLU", "Flatten", "Dense",
    ]
    assert clone.layers[0].config() == model.layers[0].config()
    assert clone.input_shape == (2, 6, 6)


def test_load_missing_parameter_raises(tmp_path):
    model = Sequential([Dense(2)], input_shape=(3,), seed=0)
    state = model.layers[0].state()
    del state["bias"]
    with pytest.raises(KeyError, match="bias"):
        model.layers[0].load_state(state)


def test_load_shape_mismatch_raises():
    model = Sequential([Dense(2)], input_shape=(3,), seed=0)
    state = {"weight": np.zeros((5, 5)), "bias": np.zeros(2)}
    with pytest.raises(ValueError, match="shape mismatch"):
        model.layers[0].load_state(state)
