"""Unit tests for BatchNorm."""

import numpy as np
import pytest

from repro.nn.graph import AffineOp
from repro.nn.layers.batchnorm import BatchNorm
from tests.nn.gradcheck import check_layer_gradients


def _built(shape=(5,), **kwargs):
    layer = BatchNorm(**kwargs)
    layer.build(shape, np.random.default_rng(0))
    return layer


class TestBatchNormTraining:
    def test_normalizes_batch(self):
        layer = _built()
        x = np.random.default_rng(1).normal(3.0, 2.0, size=(64, 5))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_move_toward_batch(self):
        layer = _built(momentum=0.5)
        x = np.full((8, 5), 10.0) + np.random.default_rng(2).normal(size=(8, 5))
        layer.forward(x, training=True)
        assert np.all(layer.running_mean > 1.0)

    def test_batch_of_one_rejected(self):
        layer = _built()
        with pytest.raises(ValueError, match="batch size"):
            layer.forward(np.zeros((1, 5)), training=True)

    def test_conv_features_per_channel(self):
        layer = _built(shape=(3, 4, 4))
        x = np.random.default_rng(3).normal(size=(16, 3, 4, 4))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-9)


class TestBatchNormEval:
    def test_eval_uses_running_stats(self):
        layer = _built()
        x = np.random.default_rng(4).normal(size=(32, 5))
        for _ in range(50):
            layer.forward(x, training=True)
        eval_out = layer.forward(x, training=False)
        train_out = layer.forward(x, training=True)
        np.testing.assert_allclose(eval_out, train_out, atol=0.2)

    def test_eval_is_affine(self):
        layer = _built()
        layer.running_mean = np.random.default_rng(5).normal(size=5)
        layer.running_var = np.abs(np.random.default_rng(6).normal(size=5)) + 0.5
        scale, shift = layer.affine_coefficients()
        x = np.random.default_rng(7).normal(size=(10, 5))
        np.testing.assert_allclose(
            layer.forward(x, training=False), x * scale + shift
        )


class TestBatchNormGradients:
    def test_gradcheck_flat(self):
        layer = _built()
        x = np.random.default_rng(8).normal(size=(6, 5))
        layer.forward(x, training=True)  # prime running stats
        # numeric gradcheck compares against eval-mode forwards, so pin
        # the layer to a deterministic state by checking training math
        out = layer.forward(x, training=True)
        grad_out = np.random.default_rng(9).normal(size=out.shape)
        layer.zero_grads = [p.zero_grad() for p in layer.parameters()]
        grad_in = layer.backward(grad_out)
        # gradient of a mean-free output: sum over batch must be ~0
        np.testing.assert_allclose(grad_in.sum(axis=0), 0.0, atol=1e-9)

    def test_eval_mode_gradcheck_via_affine(self):
        # in eval mode the layer is affine; verify against coefficients
        layer = _built()
        x = np.random.default_rng(10).normal(size=(32, 5))
        layer.forward(x, training=True)
        scale, _ = layer.affine_coefficients()
        x2 = np.random.default_rng(11).normal(size=(4, 5))
        out_a = layer.forward(x2, training=False)
        out_b = layer.forward(x2 + 1e-3, training=False)
        np.testing.assert_allclose((out_b - out_a) / 1e-3, np.tile(scale, (4, 1)))


class TestBatchNormVerificationView:
    def test_flat_lowering_matches_eval(self):
        layer = _built()
        x = np.random.default_rng(12).normal(size=(64, 5))
        layer.forward(x, training=True)
        (op,) = layer.as_verification_ops()
        assert isinstance(op, AffineOp)
        np.testing.assert_allclose(op.apply(x), layer.forward(x, training=False))

    def test_conv_lowering_repeats_channels(self):
        layer = _built(shape=(2, 3, 3))
        x = np.random.default_rng(13).normal(size=(16, 2, 3, 3))
        layer.forward(x, training=True)
        (op,) = layer.as_verification_ops()
        flat = x.reshape(16, -1)
        np.testing.assert_allclose(
            op.apply(flat), layer.forward(x, training=False).reshape(16, -1)
        )


class TestBatchNormStatePersistence:
    def test_state_roundtrip(self):
        layer = _built()
        x = np.random.default_rng(14).normal(size=(32, 5))
        layer.forward(x, training=True)
        state = layer.state()
        clone = _built()
        clone.load_state(state)
        x2 = np.random.default_rng(15).normal(size=(4, 5))
        np.testing.assert_allclose(
            clone.forward(x2, training=False), layer.forward(x2, training=False)
        )

    def test_rejects_bad_momentum_and_eps(self):
        with pytest.raises(ValueError, match="momentum"):
            BatchNorm(momentum=1.0)
        with pytest.raises(ValueError, match="eps"):
            BatchNorm(eps=0.0)
