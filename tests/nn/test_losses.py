"""Unit and property tests for loss functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.losses import bce_loss, bce_with_logits_loss, cross_entropy_loss, mse_loss


def numeric_grad(fn, pred, eps=1e-6):
    grad = np.zeros_like(pred)
    flat = pred.reshape(-1)
    g = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus, _ = fn(pred)
        flat[i] = orig - eps
        minus, _ = fn(pred)
        flat[i] = orig
        g[i] = (plus - minus) / (2 * eps)
    return grad


class TestMSE:
    def test_zero_at_target(self):
        y = np.array([[1.0, 2.0]])
        loss, grad = mse_loss(y, y)
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_known_value(self):
        loss, _ = mse_loss(np.array([[1.0, 3.0]]), np.array([[0.0, 1.0]]))
        assert loss == pytest.approx((1 + 4) / 2)

    def test_gradcheck(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(3, 4))
        target = rng.normal(size=(3, 4))
        _, grad = mse_loss(pred, target)
        np.testing.assert_allclose(
            grad, numeric_grad(lambda p: mse_loss(p, target), pred), atol=1e-7
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            mse_loss(np.zeros((2, 2)), np.zeros((2, 3)))


class TestBCE:
    def test_perfect_prediction_near_zero(self):
        loss, _ = bce_loss(np.array([[0.999999, 0.000001]]), np.array([[1.0, 0.0]]))
        assert loss < 1e-5

    def test_gradcheck(self):
        rng = np.random.default_rng(1)
        pred = rng.uniform(0.1, 0.9, size=(4, 2))
        target = (rng.random((4, 2)) > 0.5).astype(float)
        _, grad = bce_loss(pred, target)
        np.testing.assert_allclose(
            grad, numeric_grad(lambda p: bce_loss(p, target), pred), atol=1e-6
        )


class TestBCEWithLogits:
    def test_matches_bce_through_sigmoid(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(5, 1))
        target = (rng.random((5, 1)) > 0.5).astype(float)
        probs = 1.0 / (1.0 + np.exp(-logits))
        loss_a, _ = bce_with_logits_loss(logits, target)
        loss_b, _ = bce_loss(probs, target)
        assert loss_a == pytest.approx(loss_b, rel=1e-9)

    def test_stable_at_extreme_logits(self):
        loss, grad = bce_with_logits_loss(
            np.array([[1000.0, -1000.0]]), np.array([[1.0, 0.0]])
        )
        assert np.isfinite(loss) and np.all(np.isfinite(grad))
        assert loss < 1e-12

    @given(
        arrays(np.float64, (3, 2), elements=st.floats(-30, 30)),
    )
    @settings(max_examples=25, deadline=None)
    def test_gradcheck_property(self, logits):
        target = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        _, grad = bce_with_logits_loss(logits, target)
        np.testing.assert_allclose(
            grad,
            numeric_grad(lambda p: bce_with_logits_loss(p, target), logits.copy()),
            atol=1e-5,
        )


class TestCrossEntropy:
    def test_uniform_logits(self):
        loss, _ = cross_entropy_loss(np.zeros((2, 4)), np.array([0, 3]))
        assert loss == pytest.approx(np.log(4))

    def test_gradcheck(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(4, 3))
        target = np.array([0, 2, 1, 1])
        _, grad = cross_entropy_loss(logits, target)
        np.testing.assert_allclose(
            grad,
            numeric_grad(lambda p: cross_entropy_loss(p, target), logits),
            atol=1e-6,
        )

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="logits"):
            cross_entropy_loss(np.zeros(3), np.array([0]))
        with pytest.raises(ValueError, match="target_index"):
            cross_entropy_loss(np.zeros((2, 3)), np.array([0, 1, 2]))
