"""Unit tests for Flatten and Dropout."""

import numpy as np
import pytest

from repro.nn.layers.dropout import Dropout
from repro.nn.layers.reshape import Flatten


class TestFlatten:
    def test_forward_flattens(self):
        layer = Flatten()
        layer.build((2, 3, 4), np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(5, 2, 3, 4))
        out = layer.forward(x)
        assert out.shape == (5, 24)
        np.testing.assert_array_equal(out, x.reshape(5, 24))

    def test_backward_restores_shape(self):
        layer = Flatten()
        layer.build((2, 3, 4), np.random.default_rng(0))
        x = np.random.default_rng(2).normal(size=(5, 2, 3, 4))
        layer.forward(x, training=True)
        grad = layer.backward(np.ones((5, 24)))
        assert grad.shape == (5, 2, 3, 4)

    def test_output_shape(self):
        assert Flatten().output_shape((3, 4, 5)) == (60,)

    def test_lowers_to_no_ops(self):
        assert Flatten().as_verification_ops() == []

    def test_backward_requires_forward(self):
        with pytest.raises(RuntimeError, match="backward"):
            Flatten().backward(np.zeros((1, 4)))


class TestDropout:
    def test_eval_is_identity(self):
        layer = Dropout(0.5)
        x = np.random.default_rng(3).normal(size=(4, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_zeroes_roughly_rate(self):
        layer = Dropout(0.4, seed=1)
        x = np.ones((100, 100))
        out = layer.forward(x, training=True)
        dropped = np.mean(out == 0.0)
        assert abs(dropped - 0.4) < 0.03

    def test_training_preserves_expectation(self):
        layer = Dropout(0.3, seed=2)
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        assert abs(out.mean() - 1.0) < 0.02

    def test_backward_applies_same_mask(self):
        layer = Dropout(0.5, seed=3)
        x = np.ones((4, 8))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones((4, 8)))
        np.testing.assert_array_equal(grad, out)

    def test_zero_rate_is_identity_even_training(self):
        layer = Dropout(0.0)
        x = np.random.default_rng(4).normal(size=(3, 5))
        np.testing.assert_array_equal(layer.forward(x, training=True), x)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            Dropout(1.0)

    def test_lowers_to_no_ops(self):
        assert Dropout(0.2).as_verification_ops() == []
