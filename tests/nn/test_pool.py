"""Unit tests for pooling layers."""

import numpy as np
import pytest

from repro.nn.graph import AffineOp, MaxGroupOp
from repro.nn.layers.pool import AvgPool2D, MaxPool2D
from tests.nn.gradcheck import check_layer_gradients


def _built(cls, size=2, stride=None, input_shape=(2, 6, 6)):
    layer = cls(size, stride)
    layer.build(input_shape, np.random.default_rng(0))
    return layer


class TestMaxPool:
    def test_simple_2x2(self):
        layer = _built(MaxPool2D, input_shape=(1, 4, 4))
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_overlapping_windows(self):
        layer = _built(MaxPool2D, size=3, stride=1, input_shape=(1, 5, 5))
        x = np.random.default_rng(1).normal(size=(2, 1, 5, 5))
        out = layer.forward(x)
        assert out.shape == (2, 1, 3, 3)
        # verify one window manually
        assert out[0, 0, 1, 1] == x[0, 0, 1:4, 1:4].max()

    def test_gradcheck(self):
        layer = _built(MaxPool2D, input_shape=(2, 4, 4))
        x = np.random.default_rng(2).normal(size=(2, 2, 4, 4))
        check_layer_gradients(layer, x)

    def test_gradient_routes_to_argmax(self):
        layer = _built(MaxPool2D, input_shape=(1, 2, 2))
        x = np.array([[[[1.0, 5.0], [2.0, 3.0]]]])
        layer.forward(x, training=True)
        grad_in = layer.backward(np.array([[[[7.0]]]]))
        np.testing.assert_array_equal(grad_in, [[[[0.0, 7.0], [0.0, 0.0]]]])

    def test_lowering_matches_forward(self):
        layer = _built(MaxPool2D, input_shape=(2, 4, 4))
        (op,) = layer.as_verification_ops()
        assert isinstance(op, MaxGroupOp)
        x = np.random.default_rng(3).normal(size=(4, 2, 4, 4))
        np.testing.assert_allclose(
            op.apply(x.reshape(4, -1)), layer.forward(x).reshape(4, -1)
        )


class TestAvgPool:
    def test_simple_average(self):
        layer = _built(AvgPool2D, input_shape=(1, 4, 4))
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_gradcheck(self):
        layer = _built(AvgPool2D, input_shape=(2, 4, 4))
        x = np.random.default_rng(4).normal(size=(2, 2, 4, 4))
        check_layer_gradients(layer, x)

    def test_lowering_matches_forward(self):
        layer = _built(AvgPool2D, input_shape=(2, 4, 4))
        (op,) = layer.as_verification_ops()
        assert isinstance(op, AffineOp)
        x = np.random.default_rng(5).normal(size=(3, 2, 4, 4))
        np.testing.assert_allclose(
            op.apply(x.reshape(3, -1)), layer.forward(x).reshape(3, -1)
        )


@pytest.mark.parametrize("cls", [MaxPool2D, AvgPool2D])
class TestPoolValidation:
    def test_rejects_bad_size(self, cls):
        with pytest.raises(ValueError, match="size"):
            cls(0)

    def test_rejects_bad_stride(self, cls):
        with pytest.raises(ValueError, match="stride"):
            cls(2, stride=0)

    def test_rejects_flat_features(self, cls):
        with pytest.raises(ValueError, match="pooling"):
            cls(2).output_shape((16,))

    def test_backward_requires_forward(self, cls):
        layer = _built(cls)
        with pytest.raises(RuntimeError, match="backward"):
            layer.backward(np.zeros((1, 2, 3, 3)))
