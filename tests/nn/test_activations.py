"""Unit and property tests for activation layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.graph import LeakyReLUOp, ReLUOp
from repro.nn.layers.activations import Identity, LeakyReLU, ReLU, Sigmoid, Tanh
from tests.nn.gradcheck import check_layer_gradients

finite_batches = arrays(
    np.float64,
    st.tuples(st.integers(1, 4), st.integers(1, 6)),
    elements=st.floats(-50, 50),
)


def _built(layer, shape=(6,)):
    layer.build(shape, np.random.default_rng(0))
    return layer


class TestReLU:
    def test_forward_clamps_negatives(self):
        layer = _built(ReLU())
        out = layer.forward(np.array([[-2.0, 0.0, 3.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 3.0]])

    @given(finite_batches)
    @settings(max_examples=30, deadline=None)
    def test_forward_is_max_with_zero(self, x):
        layer = _built(ReLU(), shape=(x.shape[1],))
        np.testing.assert_array_equal(layer.forward(x), np.maximum(x, 0))

    def test_gradcheck(self):
        layer = _built(ReLU())
        # keep values away from the kink for numeric differentiation
        x = np.random.default_rng(1).normal(size=(3, 6))
        x[np.abs(x) < 0.1] = 0.5
        check_layer_gradients(layer, x)

    def test_lowering(self):
        layer = _built(ReLU())
        (op,) = layer.as_verification_ops()
        assert isinstance(op, ReLUOp) and op.dim == 6


class TestLeakyReLU:
    def test_negative_slope(self):
        layer = _built(LeakyReLU(alpha=0.1))
        out = layer.forward(np.array([[-10.0, 10.0]]))
        np.testing.assert_allclose(out, [[-1.0, 10.0]])

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            LeakyReLU(alpha=1.5)

    def test_gradcheck(self):
        layer = _built(LeakyReLU(alpha=0.2))
        x = np.random.default_rng(2).normal(size=(3, 6))
        x[np.abs(x) < 0.1] = -0.5
        check_layer_gradients(layer, x)

    def test_lowering_preserves_alpha(self):
        layer = _built(LeakyReLU(alpha=0.05))
        (op,) = layer.as_verification_ops()
        assert isinstance(op, LeakyReLUOp) and op.alpha == 0.05


class TestSigmoid:
    def test_range(self):
        layer = _built(Sigmoid())
        out = layer.forward(np.array([[-1000.0, 0.0, 1000.0]]))
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 1] == pytest.approx(0.5)
        assert out[0, 2] == pytest.approx(1.0, abs=1e-12)

    def test_gradcheck(self):
        layer = _built(Sigmoid())
        x = np.random.default_rng(3).normal(size=(3, 6))
        check_layer_gradients(layer, x)

    def test_not_piecewise_linear(self):
        assert _built(Sigmoid()).as_verification_ops() is None


class TestTanh:
    def test_odd_function(self):
        layer = _built(Tanh())
        x = np.random.default_rng(4).normal(size=(2, 6))
        np.testing.assert_allclose(layer.forward(-x), -layer.forward(x))

    def test_gradcheck(self):
        layer = _built(Tanh())
        x = np.random.default_rng(5).normal(size=(3, 6))
        check_layer_gradients(layer, x)

    def test_not_piecewise_linear(self):
        assert _built(Tanh()).as_verification_ops() is None


class TestIdentity:
    def test_forward_is_noop(self):
        layer = _built(Identity())
        x = np.random.default_rng(6).normal(size=(2, 6))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_lowering_is_empty(self):
        assert _built(Identity()).as_verification_ops() == []

    def test_gradcheck(self):
        layer = _built(Identity())
        check_layer_gradients(layer, np.random.default_rng(7).normal(size=(2, 6)))


@pytest.mark.parametrize("cls", [ReLU, LeakyReLU, Sigmoid, Tanh, Identity])
def test_backward_before_forward_raises(cls):
    layer = _built(cls())
    with pytest.raises(RuntimeError, match="backward"):
        layer.backward(np.zeros((1, 6)))


@pytest.mark.parametrize("cls", [ReLU, LeakyReLU, Sigmoid, Tanh, Identity])
def test_shape_preserved(cls):
    layer = _built(cls(), shape=(3, 4, 5))
    assert layer.output_shape((3, 4, 5)) == (3, 4, 5)
