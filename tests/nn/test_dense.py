"""Unit tests for the Dense layer."""

import numpy as np
import pytest

from repro.nn.graph import AffineOp
from repro.nn.layers.dense import Dense
from tests.nn.gradcheck import check_layer_gradients


def _built(units=5, fan_in=4, init="he", seed=0):
    layer = Dense(units, init=init)
    layer.build((fan_in,), np.random.default_rng(seed))
    return layer


class TestDenseForward:
    def test_output_shape(self):
        layer = _built()
        out = layer.forward(np.zeros((3, 4)))
        assert out.shape == (3, 5)

    def test_affine_semantics(self):
        layer = _built()
        x = np.random.default_rng(1).normal(size=(6, 4))
        expected = x @ layer.weight.value + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_bias_starts_zero(self):
        layer = _built()
        assert np.all(layer.bias.value == 0.0)

    def test_xavier_init(self):
        layer = _built(init="xavier")
        limit = np.sqrt(6.0 / 9)
        assert np.all(np.abs(layer.weight.value) <= limit)


class TestDenseValidation:
    def test_rejects_nonpositive_units(self):
        with pytest.raises(ValueError, match="units"):
            Dense(0)

    def test_rejects_unknown_init(self):
        with pytest.raises(ValueError, match="init"):
            Dense(3, init="uniform")

    def test_rejects_non_flat_input(self):
        with pytest.raises(ValueError, match="flat input"):
            Dense(3).output_shape((2, 3))

    def test_backward_requires_training_forward(self):
        layer = _built()
        layer.forward(np.zeros((2, 4)), training=False)
        with pytest.raises(RuntimeError, match="backward"):
            layer.backward(np.zeros((2, 5)))


class TestDenseGradients:
    def test_gradcheck(self):
        layer = _built()
        x = np.random.default_rng(3).normal(size=(4, 4))
        check_layer_gradients(layer, x)

    def test_gradients_accumulate(self):
        layer = _built()
        x = np.random.default_rng(4).normal(size=(2, 4))
        g = np.ones((2, 5))
        layer.forward(x, training=True)
        layer.backward(g)
        first = layer.weight.grad.copy()
        layer.forward(x, training=True)
        layer.backward(g)
        np.testing.assert_allclose(layer.weight.grad, 2 * first)


class TestDenseVerificationView:
    def test_lowering_matches_forward(self):
        layer = _built()
        (op,) = layer.as_verification_ops()
        assert isinstance(op, AffineOp)
        x = np.random.default_rng(5).normal(size=(7, 4))
        np.testing.assert_allclose(op.apply(x), layer.forward(x))

    def test_config_roundtrip(self):
        layer = Dense(9, init="xavier")
        clone = Dense.from_config(layer.config())
        assert clone.units == 9 and clone.init == "xavier"
