"""Unit tests for Conv2D (including im2col against a naive reference)."""

import numpy as np
import pytest

from repro.nn.graph import AffineOp
from repro.nn.layers.conv import Conv2D
from tests.nn.gradcheck import check_layer_gradients


def naive_conv(x, weight, bias, stride, padding):
    """Straightforward loop implementation used as ground truth."""
    n, c, h, w = x.shape
    f, _, k, _ = weight.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    ho = (h + 2 * padding - k) // stride + 1
    wo = (w + 2 * padding - k) // stride + 1
    out = np.zeros((n, f, ho, wo))
    for b in range(n):
        for fi in range(f):
            for i in range(ho):
                for j in range(wo):
                    patch = x[b, :, i * stride : i * stride + k, j * stride : j * stride + k]
                    out[b, fi, i, j] = np.sum(patch * weight[fi]) + bias[fi]
    return out


def _built(filters=3, kernel=3, stride=1, padding=0, input_shape=(2, 6, 6), seed=0):
    layer = Conv2D(filters, kernel, stride=stride, padding=padding)
    layer.build(input_shape, np.random.default_rng(seed))
    return layer


class TestConvForward:
    @pytest.mark.parametrize(
        "kernel,stride,padding", [(3, 1, 0), (3, 1, 1), (3, 2, 1), (5, 2, 2), (2, 2, 0)]
    )
    def test_matches_naive(self, kernel, stride, padding):
        layer = _built(kernel=kernel, stride=stride, padding=padding, input_shape=(2, 8, 8))
        x = np.random.default_rng(1).normal(size=(3, 2, 8, 8))
        expected = naive_conv(x, layer.weight.value, layer.bias.value, stride, padding)
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-12)

    def test_output_shape(self):
        layer = _built(filters=4, kernel=3, stride=2, padding=1)
        assert layer.output_shape((2, 6, 6)) == (4, 3, 3)

    def test_rejects_flat_input_shape(self):
        with pytest.raises(ValueError, match="expects"):
            Conv2D(2, 3).output_shape((10,))

    def test_rejects_invalid_config(self):
        with pytest.raises(ValueError):
            Conv2D(0, 3)
        with pytest.raises(ValueError):
            Conv2D(2, 3, stride=0)
        with pytest.raises(ValueError):
            Conv2D(2, 3, padding=-1)


class TestConvGradients:
    def test_gradcheck_basic(self):
        layer = _built(filters=2, kernel=3, input_shape=(1, 5, 5))
        x = np.random.default_rng(2).normal(size=(2, 1, 5, 5))
        check_layer_gradients(layer, x, rtol=1e-4, atol=1e-6)

    def test_gradcheck_stride_padding(self):
        layer = _built(filters=2, kernel=3, stride=2, padding=1, input_shape=(2, 5, 5))
        x = np.random.default_rng(3).normal(size=(2, 2, 5, 5))
        check_layer_gradients(layer, x, rtol=1e-4, atol=1e-6)


class TestConvVerificationView:
    def test_affine_materialization_exact(self):
        layer = _built(filters=3, kernel=3, stride=2, padding=1, input_shape=(2, 6, 6))
        (op,) = layer.as_verification_ops()
        assert isinstance(op, AffineOp)
        x = np.random.default_rng(4).normal(size=(5, 2, 6, 6))
        flat_out = op.apply(x.reshape(5, -1))
        np.testing.assert_allclose(
            flat_out, layer.forward(x).reshape(5, -1), atol=1e-10
        )

    def test_materialization_size_guard(self):
        layer = Conv2D(64, 3, padding=1)
        layer.build((64, 64, 64), np.random.default_rng(0))
        with pytest.raises(ValueError, match="materialization"):
            layer.as_verification_ops()

    def test_config_roundtrip(self):
        layer = Conv2D(7, 5, stride=2, padding=2)
        clone = Conv2D.from_config(layer.config())
        assert clone.config() == layer.config()
