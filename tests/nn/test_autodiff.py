"""Unit and property tests for eval-mode input gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.autodiff import input_gradient


def numeric_input_grad(model, x, out_grad, eps=1e-6):
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        plus = float(np.sum(out_grad * model.forward(x, training=False)))
        flat_x[i] = orig - eps
        minus = float(np.sum(out_grad * model.forward(x, training=False)))
        flat_x[i] = orig
        flat_g[i] = (plus - minus) / (2 * eps)
    return grad


class TestInputGradient:
    def test_dense_stack_matches_numeric(self, rng):
        model = Sequential(
            [Dense(6), ReLU(), Dense(4), Tanh(), Dense(2)], input_shape=(3,), seed=1
        )
        x = rng.normal(size=(2, 3))
        out_grad = rng.normal(size=(2, 2))
        output, grad = input_gradient(model, x, out_grad)
        np.testing.assert_allclose(output, model.forward(x))
        np.testing.assert_allclose(
            grad, numeric_input_grad(model, x, out_grad), atol=1e-6
        )

    def test_conv_stack_with_batchnorm_eval(self, rng):
        model = Sequential(
            [
                Conv2D(3, 3, stride=2, padding=1),
                BatchNorm(),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(4),
                Sigmoid(),
                Dense(2),
            ],
            input_shape=(1, 8, 8),
            seed=2,
        )
        # prime BatchNorm running statistics
        model.forward(rng.normal(size=(16, 1, 8, 8)), training=True)
        x = rng.normal(size=(1, 1, 8, 8))
        out_grad = np.array([[1.0, -0.5]])
        _, grad = input_gradient(model, x, out_grad)
        np.testing.assert_allclose(
            grad, numeric_input_grad(model, x, out_grad), atol=1e-5
        )

    def test_batch_size_one_works(self, rng):
        """The motivating case: BN models differentiable on single frames."""
        model = Sequential(
            [Dense(4), BatchNorm(), ReLU(), Dense(2)], input_shape=(3,), seed=3
        )
        model.forward(rng.normal(size=(8, 3)), training=True)
        x = rng.normal(size=(1, 3))
        output, grad = input_gradient(model, x, np.ones((1, 2)))
        assert output.shape == (1, 2)
        assert grad.shape == (1, 3)

    def test_avgpool_leaky_dropout(self, rng):
        model = Sequential(
            [
                Conv2D(2, 3, padding=1),
                LeakyReLU(0.1),
                AvgPool2D(2),
                Flatten(),
                Dropout(0.5),
                Dense(2),
            ],
            input_shape=(1, 4, 4),
            seed=4,
        )
        x = rng.normal(size=(2, 1, 4, 4))
        out_grad = rng.normal(size=(2, 2))
        _, grad = input_gradient(model, x, out_grad)
        np.testing.assert_allclose(
            grad, numeric_input_grad(model, x, out_grad), atol=1e-6
        )

    def test_broadcast_out_grad(self, rng):
        model = Sequential([Dense(2)], input_shape=(3,), seed=5)
        x = rng.normal(size=(4, 3))
        _, grad = input_gradient(model, x, np.array([1.0, 0.0]))
        # gradient of sum of y0 over the batch: each row = first weight col
        expected = np.tile(model.layers[0].weight.value[:, 0], (4, 1))
        np.testing.assert_allclose(grad, expected)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_matches_training_backward_on_bn_free_models(self, seed):
        """Without BatchNorm, eval gradients equal training backprop."""
        rng = np.random.default_rng(seed)
        model = Sequential(
            [Dense(5), ReLU(), Dense(2)], input_shape=(3,), seed=seed % 23
        )
        x = rng.normal(size=(3, 3))
        out_grad = rng.normal(size=(3, 2))
        model.forward(x, training=True)
        train_grad = model.backward(out_grad)
        _, eval_grad = input_gradient(model, x, out_grad)
        np.testing.assert_allclose(eval_grad, train_grad, atol=1e-12)
