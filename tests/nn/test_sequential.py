"""Unit tests for the Sequential container."""

import numpy as np
import pytest

from repro.nn import Dense, ReLU, Sequential, Sigmoid
from repro.nn.sequential import iter_minibatches


class TestConstruction:
    def test_shapes_inferred(self, tiny_mlp):
        assert tiny_mlp.input_shape == (4,)
        assert tiny_mlp.output_shape == (2,)
        assert tiny_mlp.layer_dims() == [4, 8, 8, 8, 8, 2]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one layer"):
            Sequential([], input_shape=(3,))

    def test_seed_reproducibility(self):
        a = Sequential([Dense(5), ReLU(), Dense(2)], input_shape=(3,), seed=42)
        b = Sequential([Dense(5), ReLU(), Dense(2)], input_shape=(3,), seed=42)
        x = np.random.default_rng(0).normal(size=(4, 3))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_num_parameters(self, tiny_mlp):
        # 4*8+8 + 8*8+8 + 8*2+2 = 40+72+18
        assert tiny_mlp.num_parameters() == 130

    def test_summary_mentions_layers(self, tiny_mlp):
        text = tiny_mlp.summary()
        assert "Dense" in text and "total parameters: 130" in text


class TestPrefixSuffix:
    def test_prefix_zero_is_input(self, tiny_mlp, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_array_equal(tiny_mlp.prefix_apply(x, 0), x)

    def test_prefix_full_is_forward(self, tiny_mlp, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            tiny_mlp.prefix_apply(x, tiny_mlp.num_layers), tiny_mlp.forward(x)
        )

    @pytest.mark.parametrize("cut", [0, 1, 2, 3, 4, 5])
    def test_prefix_then_suffix_is_forward(self, tiny_mlp, rng, cut):
        x = rng.normal(size=(5, 4))
        features = tiny_mlp.prefix_apply(x, cut)
        out = tiny_mlp.suffix_apply(features, cut)
        np.testing.assert_allclose(out, tiny_mlp.forward(x), atol=1e-12)

    def test_conv_prefix_flattens(self, tiny_convnet, rng):
        x = rng.normal(size=(2, 1, 12, 12))
        features = tiny_convnet.prefix_apply(x, 3)  # after MaxPool
        assert features.ndim == 2

    def test_out_of_range_cut(self, tiny_mlp):
        with pytest.raises(IndexError):
            tiny_mlp.prefix_apply(np.zeros((1, 4)), 6)
        with pytest.raises(IndexError):
            tiny_mlp.suffix_network(-1)


class TestCutPoints:
    def test_all_cuts_valid_for_pl_model(self, tiny_mlp):
        assert tiny_mlp.piecewise_linear_cut_points() == [0, 1, 2, 3, 4, 5]

    def test_sigmoid_blocks_early_cuts(self):
        model = Sequential(
            [Dense(5), Sigmoid(), Dense(3), ReLU(), Dense(2)],
            input_shape=(3,),
            seed=0,
        )
        assert model.piecewise_linear_cut_points() == [2, 3, 4, 5]

    def test_feature_dim(self, tiny_convnet):
        assert tiny_convnet.feature_dim(0) == 144
        assert tiny_convnet.feature_dim(tiny_convnet.num_layers) == 2


class TestTrainingPlumbing:
    def test_zero_grad(self, tiny_mlp, rng):
        x = rng.normal(size=(3, 4))
        tiny_mlp.forward(x, training=True)
        tiny_mlp.backward(np.ones((3, 2)))
        assert any(np.any(p.grad != 0.0) for p in tiny_mlp.parameters())
        tiny_mlp.zero_grad()
        assert all(np.all(p.grad == 0.0) for p in tiny_mlp.parameters())

    def test_call_is_eval_forward(self, tiny_mlp, rng):
        x = rng.normal(size=(2, 4))
        np.testing.assert_array_equal(tiny_mlp(x), tiny_mlp.forward(x))


class TestIterMinibatches:
    def test_covers_everything_once(self, rng):
        seen = np.concatenate(list(iter_minibatches(rng, 103, 10)))
        assert sorted(seen.tolist()) == list(range(103))

    def test_batch_sizes(self, rng):
        batches = list(iter_minibatches(rng, 25, 10))
        assert [len(b) for b in batches] == [10, 10, 5]

    def test_rejects_bad_batch_size(self, rng):
        with pytest.raises(ValueError, match="batch_size"):
            list(iter_minibatches(rng, 10, 0))
