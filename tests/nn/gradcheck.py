"""Numeric gradient checking helper shared by layer tests."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


def numeric_input_grad(
    layer: Layer, x: np.ndarray, grad_out: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of ``sum(grad_out * layer(x))`` wrt x."""
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        plus = float(np.sum(grad_out * layer.forward(x, training=False)))
        flat_x[i] = orig - eps
        minus = float(np.sum(grad_out * layer.forward(x, training=False)))
        flat_x[i] = orig
        flat_g[i] = (plus - minus) / (2 * eps)
    return grad


def numeric_param_grad(
    layer: Layer, x: np.ndarray, grad_out: np.ndarray, param, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient wrt one parameter array."""
    grad = np.zeros_like(param.value)
    flat_p = param.value.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_p.size):
        orig = flat_p[i]
        flat_p[i] = orig + eps
        plus = float(np.sum(grad_out * layer.forward(x, training=False)))
        flat_p[i] = orig - eps
        minus = float(np.sum(grad_out * layer.forward(x, training=False)))
        flat_p[i] = orig
        flat_g[i] = (plus - minus) / (2 * eps)
    return grad


def check_layer_gradients(
    layer: Layer,
    x: np.ndarray,
    rtol: float = 1e-5,
    atol: float = 1e-6,
    check_params: bool = True,
) -> None:
    """Assert analytic input/param gradients match central differences."""
    out = layer.forward(x, training=True)
    rng = np.random.default_rng(0)
    grad_out = rng.normal(size=out.shape)
    layer_grads = {id(p): p for p in layer.parameters()}
    for p in layer_grads.values():
        p.zero_grad()
    grad_in = layer.backward(grad_out)

    expected_in = numeric_input_grad(layer, x, grad_out)
    np.testing.assert_allclose(grad_in, expected_in, rtol=rtol, atol=atol)

    if check_params:
        for p in layer.parameters():
            expected_p = numeric_param_grad(layer, x, grad_out, p)
            np.testing.assert_allclose(p.grad, expected_p, rtol=rtol, atol=atol)
