"""Unit tests for repro.nn.tensor."""

import numpy as np
import pytest

from repro.nn.tensor import FLOAT, Parameter, as_batch, conv_output_size, flat_size


class TestParameter:
    def test_value_cast_to_float(self):
        p = Parameter("w", np.array([1, 2, 3]))
        assert p.value.dtype == FLOAT

    def test_grad_allocated_zero(self):
        p = Parameter("w", np.ones((2, 3)))
        assert p.grad.shape == (2, 3)
        assert np.all(p.grad == 0.0)

    def test_zero_grad_resets(self):
        p = Parameter("w", np.ones(4))
        p.grad += 5.0
        p.zero_grad()
        assert np.all(p.grad == 0.0)

    def test_shape_property(self):
        p = Parameter("w", np.zeros((3, 5)))
        assert p.shape == (3, 5)


class TestAsBatch:
    def test_single_sample_promoted(self):
        x, was_single = as_batch(np.zeros((2, 3)), feature_ndim=2)
        assert x.shape == (1, 2, 3)
        assert was_single

    def test_batch_passed_through(self):
        x, was_single = as_batch(np.zeros((5, 2, 3)), feature_ndim=2)
        assert x.shape == (5, 2, 3)
        assert not was_single

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError, match="expected array"):
            as_batch(np.zeros((5, 2, 3, 4, 4)), feature_ndim=2)


class TestShapeHelpers:
    def test_conv_output_size_basic(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 5, 2, 2) == 16
        assert conv_output_size(4, 2, 2, 0) == 2

    def test_conv_output_size_invalid(self):
        with pytest.raises(ValueError, match="non-positive"):
            conv_output_size(2, 5, 1, 0)

    def test_flat_size(self):
        assert flat_size((3, 4, 5)) == 60
        assert flat_size((7,)) == 7
        assert flat_size(()) == 1
