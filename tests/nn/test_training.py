"""Unit tests for the training loop."""

import numpy as np
import pytest

from repro.nn import Adam, Dense, ReLU, SGD, Sequential, mse_loss, train
from repro.nn.training import binary_accuracy, evaluate_loss


def _regression_problem(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    w = np.array([[1.0], [-2.0], [0.5]])
    y = x @ w + 0.1
    return x, y


class TestTrain:
    def test_loss_decreases(self):
        x, y = _regression_problem()
        model = Sequential([Dense(8), ReLU(), Dense(1)], input_shape=(3,), seed=1)
        history = train(
            model, Adam(model.parameters(), lr=1e-2), mse_loss, x, y, epochs=30
        )
        assert history.train_loss[-1] < 0.1 * history.train_loss[0]

    def test_linear_model_fits_exactly(self):
        x, y = _regression_problem()
        model = Sequential([Dense(1)], input_shape=(3,), seed=2)
        train(
            model, SGD(model.parameters(), lr=0.1), mse_loss, x, y, epochs=200,
            batch_size=64,
        )
        np.testing.assert_allclose(
            model.layers[0].weight.value, [[1.0], [-2.0], [0.5]], atol=1e-3
        )

    def test_validation_recorded(self):
        x, y = _regression_problem()
        model = Sequential([Dense(1)], input_shape=(3,), seed=3)
        history = train(
            model, SGD(model.parameters(), lr=0.05), mse_loss, x, y,
            epochs=5, x_val=x[:50], y_val=y[:50],
        )
        assert len(history.val_loss) == 5
        assert history.best_val_loss() == min(history.val_loss)

    def test_early_stopping_triggers(self):
        x, y = _regression_problem(n=60)
        model = Sequential([Dense(1)], input_shape=(3,), seed=4)
        history = train(
            model, SGD(model.parameters(), lr=0.2), mse_loss, x, y,
            epochs=500, x_val=x, y_val=y, patience=3,
        )
        assert history.stopped_early
        assert history.epochs_run < 500

    def test_metric_fn_recorded(self):
        x, y = _regression_problem(n=60)
        model = Sequential([Dense(1)], input_shape=(3,), seed=5)
        history = train(
            model, SGD(model.parameters(), lr=0.05), mse_loss, x, y,
            epochs=3, x_val=x, y_val=y,
            metric_fn=lambda p, t: float(np.abs(p - t).mean()),
        )
        assert len(history.val_metric) == 3

    def test_deterministic_given_seed(self):
        x, y = _regression_problem()
        outs = []
        for _ in range(2):
            model = Sequential([Dense(4), ReLU(), Dense(1)], input_shape=(3,), seed=6)
            train(model, SGD(model.parameters(), lr=0.05), mse_loss, x, y,
                  epochs=3, seed=9)
            outs.append(model.forward(x[:5]))
        np.testing.assert_array_equal(outs[0], outs[1])


class TestTrainValidation:
    def test_empty_dataset_rejected(self):
        model = Sequential([Dense(1)], input_shape=(3,), seed=0)
        with pytest.raises(ValueError, match="empty"):
            train(model, SGD(model.parameters(), lr=0.1), mse_loss,
                  np.zeros((0, 3)), np.zeros((0, 1)))

    def test_mismatched_lengths_rejected(self):
        model = Sequential([Dense(1)], input_shape=(3,), seed=0)
        with pytest.raises(ValueError, match="inconsistent"):
            train(model, SGD(model.parameters(), lr=0.1), mse_loss,
                  np.zeros((5, 3)), np.zeros((4, 1)))

    def test_patience_requires_validation(self):
        model = Sequential([Dense(1)], input_shape=(3,), seed=0)
        with pytest.raises(ValueError, match="early stopping"):
            train(model, SGD(model.parameters(), lr=0.1), mse_loss,
                  np.zeros((5, 3)), np.zeros((5, 1)), patience=2)


class TestEvaluateLoss:
    def test_batched_equals_whole(self):
        x, y = _regression_problem(n=100)
        model = Sequential([Dense(1)], input_shape=(3,), seed=7)
        whole = evaluate_loss(model, mse_loss, x, y, batch_size=1000)
        batched = evaluate_loss(model, mse_loss, x, y, batch_size=7)
        assert whole == pytest.approx(batched)

    def test_empty_rejected(self):
        model = Sequential([Dense(1)], input_shape=(3,), seed=0)
        with pytest.raises(ValueError, match="empty"):
            evaluate_loss(model, mse_loss, np.zeros((0, 3)), np.zeros((0, 1)))


class TestBinaryAccuracy:
    def test_probability_inputs(self):
        pred = np.array([0.9, 0.2, 0.6, 0.4])
        target = np.array([1.0, 0.0, 0.0, 1.0])
        assert binary_accuracy(pred, target) == 0.5

    def test_logit_inputs(self):
        pred = np.array([3.0, -2.0])
        target = np.array([1.0, 0.0])
        assert binary_accuracy(pred, target) == 1.0
