"""Unit and property tests for the piecewise-linear graph view."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.graph import (
    AffineOp,
    LeakyReLUOp,
    MaxGroupOp,
    PiecewiseLinearNetwork,
    ReLUOp,
    lower_layers,
)
from repro.nn.layers.activations import ReLU, Sigmoid
from repro.nn.layers.dense import Dense


class TestAffineOp:
    def test_apply_vector_and_batch(self):
        op = AffineOp(np.array([[1.0, 2.0], [0.0, -1.0]]), np.array([1.0, 0.0]))
        np.testing.assert_array_equal(op.apply(np.array([1.0, 1.0])), [4.0, -1.0])
        batch = op.apply(np.array([[1.0, 1.0], [0.0, 0.0]]))
        np.testing.assert_array_equal(batch, [[4.0, -1.0], [1.0, 0.0]])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="2-D"):
            AffineOp(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError, match="bias"):
            AffineOp(np.zeros((2, 3)), np.zeros(3))


class TestReLUOps:
    def test_relu(self):
        op = ReLUOp(3)
        np.testing.assert_array_equal(
            op.apply(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )

    def test_leaky(self):
        op = LeakyReLUOp(2, alpha=0.5)
        np.testing.assert_array_equal(op.apply(np.array([-2.0, 2.0])), [-1.0, 2.0])

    def test_leaky_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            LeakyReLUOp(2, alpha=-0.1)


class TestMaxGroupOp:
    def test_apply(self):
        op = MaxGroupOp(4, [np.array([0, 1]), np.array([2, 3])])
        np.testing.assert_array_equal(
            op.apply(np.array([1.0, 5.0, -1.0, 2.0])), [5.0, 2.0]
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            MaxGroupOp(2, [np.array([0, 5])])

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError, match="empty"):
            MaxGroupOp(2, [np.array([], dtype=int)])


class TestPiecewiseLinearNetwork:
    def test_dimension_chain_checked(self):
        good = PiecewiseLinearNetwork(
            [AffineOp(np.zeros((3, 2)), np.zeros(3)), ReLUOp(3)], in_dim=2
        )
        assert good.out_dim == 3
        with pytest.raises(ValueError, match="expects input dim"):
            PiecewiseLinearNetwork(
                [AffineOp(np.zeros((3, 2)), np.zeros(3)), ReLUOp(4)], in_dim=2
            )

    def test_num_relu_counts_decisions(self):
        net = PiecewiseLinearNetwork(
            [
                AffineOp(np.zeros((3, 2)), np.zeros(3)),
                ReLUOp(3),
                MaxGroupOp(3, [np.array([0, 1, 2])]),
            ],
            in_dim=2,
        )
        assert net.num_relu() == 6  # 3 relu + 3 group members

    def test_compose(self):
        a = PiecewiseLinearNetwork([ReLUOp(3)], in_dim=3)
        b = PiecewiseLinearNetwork([AffineOp(np.ones((1, 3)), np.zeros(1))], in_dim=3)
        c = a.compose(b)
        np.testing.assert_array_equal(c.apply(np.array([-1.0, 1.0, 2.0])), [3.0])
        with pytest.raises(ValueError, match="compose"):
            b.compose(a)

    def test_apply_checks_dim(self):
        net = PiecewiseLinearNetwork([ReLUOp(3)], in_dim=3)
        with pytest.raises(ValueError, match="trailing dim"):
            net.apply(np.zeros(4))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_lowered_model_matches_forward(self, seed):
        """Soundness of lowering: PL view == Sequential forward, any weights."""
        from repro.nn.sequential import Sequential

        model = Sequential(
            [Dense(6), ReLU(), Dense(3)], input_shape=(4,), seed=seed % 1000
        )
        net = model.full_network()
        x = np.random.default_rng(seed).normal(size=(5, 4))
        np.testing.assert_allclose(net.apply(x), model.forward(x), atol=1e-10)


class TestLowerLayers:
    def test_rejects_non_pl_layer(self):
        sigmoid = Sigmoid()
        sigmoid.build((4,), np.random.default_rng(0))
        with pytest.raises(ValueError, match="not piecewise-linear"):
            lower_layers([sigmoid], 4)
