"""Unit tests for repro.nn.initializers."""

import numpy as np
import pytest

from repro.nn.initializers import he_normal, ones, xavier_uniform, zeros


def test_he_normal_std():
    rng = np.random.default_rng(0)
    w = he_normal(rng, (2000, 100), fan_in=100)
    assert abs(w.std() - np.sqrt(2.0 / 100)) < 0.005


def test_he_normal_rejects_bad_fan_in():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError, match="fan_in"):
        he_normal(rng, (3, 3), fan_in=0)


def test_xavier_uniform_within_limit():
    rng = np.random.default_rng(1)
    w = xavier_uniform(rng, (50, 60), fan_in=50, fan_out=60)
    limit = np.sqrt(6.0 / 110)
    assert w.min() >= -limit and w.max() <= limit


def test_xavier_rejects_bad_fans():
    rng = np.random.default_rng(1)
    with pytest.raises(ValueError):
        xavier_uniform(rng, (3, 3), fan_in=-1, fan_out=3)


def test_zeros_and_ones():
    assert np.all(zeros((3, 2)) == 0.0)
    assert np.all(ones((4,)) == 1.0)


def test_reproducible_from_seed():
    a = he_normal(np.random.default_rng(42), (5, 5), 5)
    b = he_normal(np.random.default_rng(42), (5, 5), 5)
    np.testing.assert_array_equal(a, b)
