"""Unit tests for optimizers."""

import numpy as np
import pytest

from repro.nn.optimizers import SGD, Adam
from repro.nn.tensor import Parameter


def quadratic_step(optimizer_cls, steps=300, **kwargs):
    """Minimize ||x - 3||^2 and return the final parameter."""
    p = Parameter("x", np.array([10.0, -10.0]))
    opt = optimizer_cls([p], **kwargs)
    for _ in range(steps):
        opt.zero_grad()
        p.grad += 2.0 * (p.value - 3.0)
        opt.step()
    return p.value


class TestSGD:
    def test_converges_on_quadratic(self):
        final = quadratic_step(SGD, lr=0.1)
        np.testing.assert_allclose(final, 3.0, atol=1e-6)

    def test_momentum_accelerates(self):
        plain = quadratic_step(SGD, steps=20, lr=0.01)
        momentum = quadratic_step(SGD, steps=20, lr=0.01, momentum=0.9)
        assert np.abs(momentum - 3.0).max() < np.abs(plain - 3.0).max()

    def test_single_step_value(self):
        p = Parameter("x", np.array([1.0]))
        opt = SGD([p], lr=0.5)
        p.grad += np.array([2.0])
        opt.step()
        assert p.value[0] == pytest.approx(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter("x", np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.step()  # zero gradient, only decay
        assert p.value[0] == pytest.approx(0.9)

    def test_validation(self):
        p = Parameter("x", np.zeros(1))
        with pytest.raises(ValueError, match="learning rate"):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError, match="momentum"):
            SGD([p], momentum=1.0)
        with pytest.raises(ValueError, match="at least one"):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        final = quadratic_step(Adam, steps=2000, lr=0.05)
        np.testing.assert_allclose(final, 3.0, atol=1e-2)

    def test_first_step_is_lr_sized(self):
        p = Parameter("x", np.array([0.0]))
        opt = Adam([p], lr=0.1)
        p.grad += np.array([123.0])
        opt.step()
        # bias-corrected first step is exactly -lr * sign(grad)
        assert p.value[0] == pytest.approx(-0.1, rel=1e-6)

    def test_validation(self):
        p = Parameter("x", np.zeros(1))
        with pytest.raises(ValueError, match="betas"):
            Adam([p], beta1=1.0)
        with pytest.raises(ValueError, match="eps"):
            Adam([p], eps=0.0)
        with pytest.raises(ValueError, match="weight_decay"):
            Adam([p], weight_decay=-0.1)

    def test_zero_grad_clears_all(self):
        p1 = Parameter("a", np.zeros(2))
        p2 = Parameter("b", np.zeros(3))
        opt = Adam([p1, p2])
        p1.grad += 1.0
        p2.grad += 2.0
        opt.zero_grad()
        assert np.all(p1.grad == 0.0) and np.all(p2.grad == 0.0)
