"""VNN-LIB parsing/formatting: grammar coverage and round-trip identity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interchange import (
    VnnLibError,
    format_vnnlib,
    parse_vnnlib,
    read_vnnlib,
    write_vnnlib,
)
from repro.properties.risk import (
    LinearInequality,
    RiskCondition,
    output_geq,
    output_in_band,
    output_leq,
)


class TestParsing:
    def test_box_and_single_atom(self):
        prop = parse_vnnlib(
            """
            ; a comment
            (declare-const X_0 Real)
            (declare-const X_1 Real)
            (declare-const Y_0 Real)
            (assert (>= X_0 0.25))
            (assert (<= X_0 0.75))
            (assert (>= X_1 0))
            (assert (<= X_1 1))
            (assert (>= Y_0 1.5))
            """
        )
        assert prop.in_dim == 2 and prop.out_dim == 1
        assert np.array_equal(prop.input_lower, [0.25, 0.0])
        assert np.array_equal(prop.input_upper, [0.75, 1.0])
        assert len(prop.disjuncts) == 1
        (ineq,) = prop.disjuncts[0].inequalities
        assert ineq.coeffs == (1.0,) and ineq.op == ">=" and ineq.rhs == 1.5

    def test_linear_combinations(self):
        prop = parse_vnnlib(
            """
            (declare-const X_0 Real)
            (declare-const Y_0 Real)
            (declare-const Y_1 Real)
            (assert (>= X_0 0)) (assert (<= X_0 1))
            (assert (<= (+ Y_0 (* -2.0 Y_1) 0.5) 3.0))
            """
        )
        (ineq,) = prop.disjuncts[0].inequalities
        assert ineq.coeffs == (1.0, -2.0)
        assert ineq.op == "<=" and ineq.rhs == 2.5  # constant moved to rhs

    def test_subtraction_and_reversed_sides(self):
        prop = parse_vnnlib(
            """
            (declare-const X_0 Real)
            (declare-const Y_0 Real)
            (declare-const Y_1 Real)
            (assert (>= X_0 0)) (assert (<= X_0 1))
            (assert (<= 1.0 (- Y_0 Y_1)))
            """
        )
        (ineq,) = prop.disjuncts[0].inequalities
        # 1 <= Y_0 - Y_1  ==  -(Y_0 - Y_1) <= -1
        a, b = ineq.normalized()
        assert np.array_equal(a, [-1.0, 1.0]) and b == -1.0

    def test_scaled_input_bound_is_normalized(self):
        prop = parse_vnnlib(
            """
            (declare-const X_0 Real)
            (declare-const Y_0 Real)
            (assert (>= (* 2.0 X_0) 0.5))
            (assert (<= X_0 1))
            (assert (>= Y_0 0))
            """
        )
        assert prop.input_lower[0] == 0.25

    def test_conjunction_and_disjunction(self):
        prop = parse_vnnlib(
            """
            (declare-const X_0 Real)
            (declare-const Y_0 Real)
            (declare-const Y_1 Real)
            (assert (>= X_0 0)) (assert (<= X_0 1))
            (assert (or (and (>= Y_0 1.0) (<= Y_1 0.0)) (and (<= Y_0 -1.0))))
            (assert (>= Y_1 -5.0))
            """
        )
        # two or-branches plus the top-level conjunction
        assert len(prop.disjuncts) == 3
        assert len(prop.disjuncts[0].inequalities) == 2

    @pytest.mark.parametrize(
        "text, message",
        [
            ("(assert (>= Y_0 0))", "declare"),
            (
                "(declare-const X_0 Real)(declare-const Y_0 Real)"
                "(assert (>= X_0 0))(assert (>= Y_0 0))",
                "missing a lower or upper bound",
            ),
            (
                "(declare-const X_0 Real)(declare-const Y_0 Real)"
                "(assert (>= X_0 0))(assert (<= X_0 1))"
                "(assert (>= (* Y_0 Y_0) 0))",
                "nonlinear",
            ),
            (
                "(declare-const X_0 Real)(declare-const Y_0 Real)"
                "(assert (>= X_0 0))(assert (<= X_0 1))"
                "(assert (>= (+ X_0 Y_0) 0))",
                "mixes X and Y",
            ),
            (
                "(declare-const X_0 Real)(declare-const X_2 Real)"
                "(declare-const Y_0 Real)",
                "contiguous",
            ),
            ("(declare-const X_0 Real", "unbalanced"),
        ],
    )
    def test_rejected_inputs(self, text, message):
        with pytest.raises(VnnLibError, match=message):
            parse_vnnlib(text)


class TestFormatting:
    def test_single_disjunct_round_trip(self):
        risk = RiskCondition("band", tuple(output_in_band(2, 0, 0.25, 0.75)))
        text = format_vnnlib(np.zeros(3), np.ones(3), [risk])
        prop = parse_vnnlib(text)
        assert len(prop.disjuncts) == 1
        assert prop.disjuncts[0].as_matrix()[1].tolist() == risk.as_matrix()[1].tolist()

    def test_multi_disjunct_round_trip(self):
        risks = [
            RiskCondition("hi", (output_geq(2, 0, 1.5),)),
            RiskCondition("lo", (output_leq(2, 1, -0.5),)),
        ]
        prop = parse_vnnlib(format_vnnlib(np.zeros(2), np.ones(2), risks))
        assert len(prop.disjuncts) == 2

    def test_file_round_trip(self, tmp_path):
        risk = RiskCondition("r", (output_geq(2, 0, 0.125),))
        path = write_vnnlib(
            tmp_path / "prop.vnnlib", np.zeros(2), np.ones(2), [risk], comment="hi"
        )
        prop = read_vnnlib(path)
        assert prop.name == "prop"
        assert prop.disjuncts[0].inequalities[0].rhs == 0.125


@settings(max_examples=25, deadline=None)
@given(
    n_inputs=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_boxes_and_coefficients_round_trip_exactly(n_inputs, data):
    """format → parse preserves bounds and coefficients bit-for-bit."""
    finite = st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    )
    lower = np.array(data.draw(st.lists(finite, min_size=n_inputs, max_size=n_inputs)))
    width = np.array(
        data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=n_inputs,
                max_size=n_inputs,
            )
        )
    )
    coeffs = [
        c if c != 0.0 else 1.0
        for c in data.draw(st.lists(finite, min_size=2, max_size=2))
    ]
    rhs = data.draw(finite)
    risk = RiskCondition("r", (LinearInequality(tuple(coeffs), ">=", rhs),))
    prop = parse_vnnlib(format_vnnlib(lower, lower + width, [risk]))
    assert np.array_equal(prop.input_lower, lower)
    assert np.array_equal(prop.input_upper, lower + width)
    (ineq,) = prop.disjuncts[0].inequalities
    assert ineq.coeffs == tuple(coeffs)
    assert ineq.rhs == rhs
