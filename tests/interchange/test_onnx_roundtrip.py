"""ONNX round-trip fidelity: export → import is the identity.

The acceptance bar is the PR 4 lowering: an imported model must lower
to a :class:`~repro.verification.ir.LoweredProgram` with **identical**
ops (same types, bit-exact arrays) as its native construction, so every
verification path — prescreen, MILP, CEGAR — sees exactly the same
network whether it was built in Python or read from disk.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interchange import (
    OnnxError,
    export_onnx,
    import_onnx,
    model_to_onnx_bytes,
    onnx_bytes_to_model,
)
from repro.nn import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.nn.layers import AvgPool2D, Identity, LeakyReLU, Sigmoid, Tanh
from repro.nn.graph import ConvOp
from repro.perception.network import (
    build_direct_perception_network,
    build_mlp_perception_network,
)
from repro.verification.ir import lowered_full, lowered_suffix


def _op_arrays(op) -> list[np.ndarray]:
    arrays = []
    for attr in ("weight", "bias", "scale", "shift"):
        value = getattr(op, attr, None)
        if isinstance(value, np.ndarray):
            arrays.append(value)
    return arrays


def assert_identical_lowering(native, imported, lower=lowered_full, exact=True):
    """Same op chain, bit-exact parameters, identical shapes.

    ``exact=False`` tolerates float32 ONNX attribute precision in
    derived weights; with ``BatchNorm.eps`` now canonicalized to
    float32 at construction no in-repo layer needs it, but it stays
    for foreign models imported from float32 tool chains.
    """
    p1, p2 = lower(native), lower(imported)
    assert [type(op).__name__ for op in p1.ops] == [
        type(op).__name__ for op in p2.ops
    ]
    assert p1.in_dim == p2.in_dim and p1.out_dim == p2.out_dim
    for a, b in zip(p1.ops, p2.ops):
        for left, right in zip(_op_arrays(a), _op_arrays(b)):
            assert left.shape == right.shape
            if exact:
                assert np.array_equal(left, right)  # bit-exact, not allclose
            else:
                assert np.allclose(left, right, rtol=1e-6, atol=1e-12)


class TestMlpRoundTrip:
    def test_forward_is_bit_exact(self):
        model = build_mlp_perception_network(
            input_dim=4, hidden=(8,), feature_width=4, seed=1
        )
        back = onnx_bytes_to_model(model_to_onnx_bytes(model))
        x = np.random.default_rng(0).random((16, 4))
        assert np.array_equal(model(x), back(x))

    def test_lowered_program_identical(self):
        model = build_mlp_perception_network(
            input_dim=6, hidden=(12, 8), feature_width=4, seed=3
        )
        back = onnx_bytes_to_model(model_to_onnx_bytes(model))
        assert_identical_lowering(model, back)

    def test_suffix_lowering_identical(self):
        model = build_mlp_perception_network(
            input_dim=4, hidden=(8,), feature_width=4, seed=1
        )
        back = onnx_bytes_to_model(model_to_onnx_bytes(model))
        assert_identical_lowering(
            model, back, lower=lambda m: lowered_suffix(m, 0)
        )

    def test_file_round_trip(self, tmp_path):
        model = build_mlp_perception_network(
            input_dim=4, hidden=(8,), feature_width=4, seed=2
        )
        path = export_onnx(model, tmp_path / "model.onnx")
        assert path.stat().st_size > 0
        back = import_onnx(path)
        assert back.input_shape == model.input_shape
        assert back.output_shape == model.output_shape


class TestConvRoundTrip:
    def test_conv_network_round_trips(self):
        model = build_direct_perception_network(
            input_shape=(1, 8, 8), feature_width=4, seed=4
        )
        back = onnx_bytes_to_model(model_to_onnx_bytes(model))
        x = np.random.default_rng(1).random((3, 1, 8, 8))
        # BatchNorm.eps is float32-canonicalized at construction, so
        # even the default eps round-trips bit-exact through the
        # float32 ONNX attribute
        assert np.array_equal(model(x), back(x))
        assert_identical_lowering(model, back)
        # conv survives in kernel form, not materialized
        assert any(
            isinstance(op, ConvOp) for op in lowered_full(back).ops
        )

    def test_every_supported_layer_kind(self):
        model = Sequential(
            [
                # float32-representable attributes -> bit-exact round trip
                Conv2D(2, 3, stride=1, padding=1),
                BatchNorm(eps=2**-16),
                ReLU(),
                MaxPool2D(2),
                AvgPool2D(2),
                Flatten(),
                Dense(6),
                LeakyReLU(alpha=0.0625),
                Dense(5),
                Sigmoid(),
                Dense(4),
                Tanh(),
                Identity(),
                Dense(2),
            ],
            input_shape=(1, 8, 8),
            seed=5,
        )
        back = onnx_bytes_to_model(model_to_onnx_bytes(model))
        assert [type(l).__name__ for l in back.layers] == [
            type(l).__name__ for l in model.layers
        ]
        x = np.random.default_rng(2).random((2, 1, 8, 8))
        assert np.array_equal(model(x), back(x))
        assert_identical_lowering(model, back)

    def test_batchnorm_statistics_survive(self):
        model = Sequential(
            [Dense(8), BatchNorm(eps=2**-16), ReLU(), Dense(2)],
            input_shape=(4,),
            seed=6,
        )
        # make the running statistics non-trivial
        rng = np.random.default_rng(3)
        layer = model.layers[1]
        layer.running_mean = rng.normal(size=8)
        layer.running_var = rng.uniform(0.5, 2.0, size=8)
        model.invalidate_lowering()
        back = onnx_bytes_to_model(model_to_onnx_bytes(model))
        x = rng.random((4, 4))
        assert np.array_equal(model(x), back(x))


class TestDropoutAndErrors:
    def test_dropout_is_skipped_with_identical_lowering(self):
        with_dropout = Sequential(
            [Dense(8), ReLU(), Dropout(0.5), Dense(2)], input_shape=(4,), seed=7
        )
        back = onnx_bytes_to_model(model_to_onnx_bytes(with_dropout))
        # one layer fewer, identical eval semantics and lowering
        assert len(back.layers) == len(with_dropout.layers) - 1
        x = np.random.default_rng(4).random((5, 4))
        assert np.array_equal(with_dropout(x), back(x))
        assert_identical_lowering(with_dropout, back)

    def test_not_onnx_at_all(self):
        with pytest.raises(OnnxError, match="not an ONNX model"):
            onnx_bytes_to_model(b"\x00\x01definitely not onnx")
        with pytest.raises(OnnxError, match="no graph"):
            onnx_bytes_to_model(b"")

    def test_unsupported_op_is_reported(self):
        data = model_to_onnx_bytes(
            Sequential([Dense(2)], input_shape=(2,), seed=0)
        )
        broken = data.replace(b"Gemm", b"LSTM")
        with pytest.raises(OnnxError, match="LSTM"):
            onnx_bytes_to_model(broken)


@settings(max_examples=15, deadline=None)
@given(
    widths=st.lists(st.integers(min_value=1, max_value=6), min_size=0, max_size=3),
    input_dim=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_mlps_round_trip(widths, input_dim, seed):
    """Any Dense/ReLU stack survives export → import bit-exactly."""
    layers = []
    for width in widths:
        layers += [Dense(width), ReLU()]
    layers.append(Dense(2))
    model = Sequential(layers, input_shape=(input_dim,), seed=seed)
    back = onnx_bytes_to_model(model_to_onnx_bytes(model))
    x = np.random.default_rng(seed).random((3, input_dim))
    assert np.array_equal(model(x), back(x))
    assert_identical_lowering(model, back)
