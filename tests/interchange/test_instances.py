"""Instance directories: index round trip, engine compilation, verdicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.interchange import (
    BenchmarkInstance,
    combine_disjunct_verdicts,
    export_instance,
    instance_campaign,
    instance_engine,
    load_instances,
    write_index,
)
from repro.interchange.vnnlib import VnnLibProperty
from repro.nn import Dense, ReLU, Sequential
from repro.properties.risk import RiskCondition, output_geq


@pytest.fixture
def tiny_model() -> Sequential:
    return Sequential(
        [Dense(6), ReLU(), Dense(2)], input_shape=(3,), seed=11
    )


@pytest.fixture
def instance_dir(tmp_path, tiny_model):
    instances = [
        export_instance(
            tmp_path,
            "reach",
            tiny_model,
            0.0,
            1.0,
            [RiskCondition("r", (output_geq(2, 0, -100.0),))],
            timeout=10.0,
            expected="sat",
            model_filename="net.onnx",
        ),
        export_instance(
            tmp_path,
            "unreach",
            tiny_model,
            0.0,
            1.0,
            [RiskCondition("r", (output_geq(2, 0, 1e6),))],
            timeout=10.0,
            expected="unsat",
            model_filename="net.onnx",
        ),
    ]
    write_index(tmp_path, instances)
    return tmp_path


class TestIndexRoundTrip:
    def test_load_matches_export(self, instance_dir):
        instances = load_instances(instance_dir)
        assert [i.name for i in instances] == ["reach", "unreach"]
        assert all(i.timeout == 10.0 for i in instances)
        assert [i.expected for i in instances] == ["sat", "unsat"]
        # the two instances share one model file
        assert len({i.model_path for i in instances}) == 1

    def test_loaded_instance_is_usable(self, instance_dir, tiny_model):
        instance = load_instances(instance_dir)[0]
        model = instance.load_model()
        prop = instance.load_property()
        x = np.random.default_rng(0).random((4, 3))
        assert np.array_equal(model(x), tiny_model(x))
        assert prop.in_dim == 3 and prop.out_dim == 2

    def test_missing_index_is_reported(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="instances.csv"):
            load_instances(tmp_path)

    def test_missing_file_is_reported(self, instance_dir):
        (instance_dir / "reach.vnnlib").unlink()
        with pytest.raises(FileNotFoundError, match="reach.vnnlib"):
            load_instances(instance_dir)

    def test_shared_property_names_stay_unique(self, tmp_path, tiny_model):
        """VNN-COMP style: one .vnnlib reused against several models must
        not collapse into one instance name (that would corrupt the
        cross-track consistency check)."""
        risk = RiskCondition("r", (output_geq(2, 0, 1e6),))
        export_instance(
            tmp_path, "prop", tiny_model, 0.0, 1.0, [risk],
            model_filename="m1.onnx",
        )
        other = Sequential([Dense(4), ReLU(), Dense(2)], input_shape=(3,), seed=12)
        export_instance(
            tmp_path, "other", other, 0.0, 1.0, [risk], model_filename="m2.onnx"
        )
        index = tmp_path / "instances.csv"
        index.write_text(
            "m1.onnx,prop.vnnlib,10\n"
            "m2.onnx,prop.vnnlib,10\n"
            "m2.onnx,other.vnnlib,10\n"
        )
        names = [i.name for i in load_instances(tmp_path)]
        assert len(set(names)) == 3
        assert names == ["m1-prop", "m2-prop", "other"]

    def test_bad_expected_column_is_reported(self, instance_dir):
        index = instance_dir / "instances.csv"
        index.write_text(index.read_text().replace("sat", "maybe", 1))
        with pytest.raises(ValueError, match="maybe"):
            load_instances(instance_dir)


class TestEngineCompilation:
    def test_fully_pl_model_cuts_at_zero(self, tiny_model):
        prop = VnnLibProperty(
            np.zeros(3),
            np.ones(3),
            (RiskCondition("r", (output_geq(2, 0, 1e6),)),),
        )
        engine = instance_engine(tiny_model, prop)
        assert engine.cut_layer == 0
        report = engine.run(instance_campaign(prop))
        assert not report.errors
        # the input box is exact at cut 0, so the verdict is unconditional
        assert report.results[0].verdict.verdict.value == "safe"

    def test_dimension_mismatches_are_reported(self, tiny_model):
        bad_inputs = VnnLibProperty(
            np.zeros(5), np.ones(5), (RiskCondition("r", (output_geq(2, 0, 0),)),)
        )
        with pytest.raises(ValueError, match="input variables"):
            instance_engine(tiny_model, bad_inputs)
        bad_outputs = VnnLibProperty(
            np.zeros(3), np.ones(3), (RiskCondition("r", (output_geq(4, 0, 0),)),)
        )
        with pytest.raises(ValueError, match="output variables"):
            instance_engine(tiny_model, bad_outputs)

    def test_campaign_has_one_query_per_disjunct(self):
        prop = VnnLibProperty(
            np.zeros(2),
            np.ones(2),
            (
                RiskCondition("a", (output_geq(2, 0, 1.0),)),
                RiskCondition("b", (output_geq(2, 1, 1.0),)),
            ),
        )
        campaign = instance_campaign(prop, method="exact", domain="zonotope")
        assert len(campaign) == 2
        assert all(q.domain == "zonotope" for q in campaign)


class TestVerdictCombination:
    @pytest.mark.parametrize(
        "verdicts, expected",
        [
            (["unsat", "unsat"], "unsat"),
            (["unsat", "sat"], "sat"),
            (["unknown", "sat"], "sat"),
            (["unsat", "unknown"], "unknown"),
            ([], "unknown"),
        ],
    )
    def test_combine(self, verdicts, expected):
        assert combine_disjunct_verdicts(verdicts) == expected
