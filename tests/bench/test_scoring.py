"""Scoring semantics: solved / unsound-penalty / PAR-2 / consistency."""

from __future__ import annotations

import pytest

from repro.bench import (
    UNSOUND_PENALTY,
    InstanceOutcome,
    Track,
    rank_scores,
    score_track,
    verdict_disagreements,
)


def outcome(track="t", instance="i", status="unsat", elapsed=1.0, timeout=10.0, expected=None):
    return InstanceOutcome(
        track=track,
        instance=instance,
        status=status,
        elapsed=elapsed,
        timeout=timeout,
        expected=expected,
    )


class TestInstanceOutcome:
    def test_solved_statuses(self):
        assert outcome(status="sat").solved
        assert outcome(status="unsat").solved
        assert not outcome(status="unknown").solved
        assert not outcome(status="timeout").solved
        assert not outcome(status="error").solved

    def test_unsound_needs_definite_ground_truth(self):
        assert outcome(status="sat", expected="unsat").unsound
        assert outcome(status="unsat", expected="sat").unsound
        assert not outcome(status="sat", expected="sat").unsound
        assert not outcome(status="sat", expected=None).unsound
        assert not outcome(status="sat", expected="unknown").unsound
        assert not outcome(status="unknown", expected="sat").unsound

    def test_par2_contributions(self):
        assert outcome(status="unsat", elapsed=2.5).par2 == 2.5
        assert outcome(status="unknown", elapsed=2.5).par2 == 20.0
        assert outcome(status="timeout", elapsed=11.0).par2 == 20.0
        # an unsound answer never earns its wall time back
        assert outcome(status="sat", expected="unsat", elapsed=0.1).par2 == 20.0


class TestTrackScore:
    def test_aggregation_and_penalty(self):
        rows = [
            outcome(instance="a", status="sat", elapsed=1.0, expected="sat"),
            outcome(instance="b", status="unsat", elapsed=2.0, expected="unsat"),
            outcome(instance="c", status="unknown", elapsed=3.0),
            outcome(instance="d", status="sat", elapsed=0.5, expected="unsat"),
        ]
        score = score_track("t", rows)
        assert score.solved == 3 and score.unsound == 1
        assert score.score == 3 - UNSOUND_PENALTY
        assert score.par2 == pytest.approx((1.0 + 2.0 + 20.0 + 20.0) / 4)

    def test_empty_track_is_an_error(self):
        with pytest.raises(ValueError, match="no outcomes"):
            score_track("ghost", [outcome(track="other")])

    def test_ranking_breaks_ties_by_par2(self):
        fast = score_track("fast", [outcome(track="fast", elapsed=0.1)])
        slow = score_track("slow", [outcome(track="slow", elapsed=5.0)])
        none = score_track(
            "none", [outcome(track="none", status="unknown", elapsed=0.1)]
        )
        ranked = rank_scores([none, slow, fast])
        assert [s.track for s in ranked] == ["fast", "slow", "none"]


class TestConsistency:
    def test_disagreement_is_flagged(self):
        rows = [
            outcome(track="a", instance="x", status="sat"),
            outcome(track="b", instance="x", status="unsat"),
            outcome(track="a", instance="y", status="unsat"),
            outcome(track="b", instance="y", status="unsat"),
        ]
        problems = verdict_disagreements(rows)
        assert len(problems) == 1
        assert "x" in problems[0] and "a" in problems[0] and "b" in problems[0]

    def test_unknown_never_disagrees(self):
        rows = [
            outcome(track="a", instance="x", status="unknown"),
            outcome(track="b", instance="x", status="unsat"),
        ]
        assert verdict_disagreements(rows) == []


class TestTrackParsing:
    def test_full_spec(self):
        track = Track.parse("mine=octagon:relaxed:highs")
        assert track.name == "mine"
        assert (track.domain, track.method, track.solver) == (
            "octagon",
            "relaxed",
            "highs",
        )

    def test_defaults_fill_in(self):
        track = Track.parse("zonotope")
        assert track.name == "zonotope-exact"
        assert track.solver == "branch-and-bound"

    @pytest.mark.parametrize(
        "spec", ["x=not-a-domain", "interval:range", "interval:exact:no-such-solver", "="]
    )
    def test_invalid_specs_fail_fast(self, spec):
        with pytest.raises((ValueError, KeyError)):
            Track.parse(spec)
