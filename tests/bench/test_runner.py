"""The competition runner end-to-end on a generated suite.

Covers the PR's acceptance bar: ≥ 2 tracks over the bundled instance
directory, PAR-2-scored Markdown + JSON reports, cross-track verdict
disagreement flagged as an error, and imported ONNX/VNN-LIB instances
verifying to the same verdict as their native in-repo constructions.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import (
    CompetitionReport,
    Track,
    generate_smoke_suite,
    native_verdict,
    report_markdown,
    run_competition,
    run_instance,
    write_reports,
)
from repro.bench.scoring import InstanceOutcome, score_track, verdict_disagreements
from repro.bench.suites import e1_model, grid_model
from repro.interchange import load_instances
from repro.verification.ir import lowered_suffix

TRACKS = (
    Track(name="interval-bnb", domain="interval", method="exact", solver="branch-and-bound"),
    Track(name="zonotope-highs", domain="zonotope", method="exact", solver="highs"),
)


@pytest.fixture(scope="module")
def suite_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("smoke-suite")
    generate_smoke_suite(directory)
    return directory


@pytest.fixture(scope="module")
def competition(suite_dir):
    instances = load_instances(suite_dir)
    return run_competition(
        instances, TRACKS, instance_dir=str(suite_dir), suite="smoke"
    )


class TestCompetitionRun:
    def test_matrix_is_complete(self, competition):
        assert len(competition.tracks) >= 2
        assert len(competition.instances) >= 5
        assert len(competition.outcomes) == len(competition.tracks) * len(
            competition.instances
        )

    def test_run_is_consistent_and_sound(self, competition):
        assert competition.ok
        assert competition.disagreements == []
        assert competition.unsound_answers == 0

    def test_complete_tracks_solve_everything(self, competition):
        for score in competition.scores:
            assert score.solved == score.n_instances
            assert score.score == score.n_instances
            assert score.par2 > 0.0

    def test_every_verdict_matches_ground_truth(self, competition):
        for outcome in competition.outcomes:
            assert outcome.expected in ("sat", "unsat")
            assert outcome.status == outcome.expected

    def test_suite_has_both_polarities(self, competition):
        statuses = {o.status for o in competition.outcomes}
        assert statuses == {"sat", "unsat"}


class TestImportedEqualsNative:
    def test_imported_instances_match_native_construction(self, suite_dir):
        """The acceptance criterion: import → verify == native verify."""
        for instance in load_instances(suite_dir):
            prop = instance.load_property()
            imported_verdict = native_verdict(
                instance.load_model(),
                prop.input_lower.reshape(instance.load_model().input_shape),
                prop.input_upper.reshape(instance.load_model().input_shape),
                prop.disjuncts,
            )
            assert imported_verdict == instance.expected, instance.name

    def test_imported_models_lower_identically_to_native(self, suite_dir):
        natives = {"e1.onnx": e1_model(0), "grid.onnx": grid_model(0)}
        seen = set()
        for instance in load_instances(suite_dir):
            if instance.model_path.name in seen:
                continue
            seen.add(instance.model_path.name)
            native = natives[instance.model_path.name]
            imported = instance.load_model()
            native_program = lowered_suffix(native, 0)
            imported_program = lowered_suffix(imported, 0)
            assert [type(op).__name__ for op in native_program.ops] == [
                type(op).__name__ for op in imported_program.ops
            ]
            for a, b in zip(native_program.ops, imported_program.ops):
                if hasattr(a, "weight"):
                    assert np.array_equal(a.weight, b.weight)
                    assert np.array_equal(a.bias, b.bias)
        assert seen == {"e1.onnx", "grid.onnx"}


class TestReports:
    def test_markdown_and_json_written(self, competition, tmp_path):
        md_path, json_path = write_reports(competition, tmp_path / "out")
        markdown = md_path.read_text()
        assert "PAR-2" in markdown
        assert "consistent" in markdown
        for track in TRACKS:
            assert track.name in markdown
        payload = json.loads(json_path.read_text())
        assert payload["ok"] is True
        assert {score["track"] for score in payload["scores"]} == {
            t.name for t in TRACKS
        }
        assert all("par2" in score for score in payload["scores"])
        assert len(payload["outcomes"]) == len(competition.outcomes)

    def test_disagreement_renders_as_error(self):
        outcomes = [
            InstanceOutcome("a", "x", "sat", 0.1, 10.0),
            InstanceOutcome("b", "x", "unsat", 0.1, 10.0),
        ]
        report = CompetitionReport(
            instance_dir="dir",
            suite=None,
            tracks=[Track(name="a"), Track(name="b", solver="highs")],
            instances=["x"],
            outcomes=outcomes,
            scores=[score_track("a", outcomes), score_track("b", outcomes)],
            disagreements=verdict_disagreements(outcomes),
            total_time=0.2,
        )
        assert not report.ok
        markdown = report_markdown(report)
        assert "INCONSISTENT" in markdown
        assert "Cross-track disagreements" in markdown
        assert report.to_dict()["consistent"] is False


class TestRunInstance:
    def test_timeout_override_reaches_the_outcome(self, suite_dir):
        instance = load_instances(suite_dir)[0]
        outcome = run_instance(TRACKS[0], instance, timeout=5.0)
        assert outcome.timeout == 5.0

    def test_broken_instance_becomes_error_outcome(self, suite_dir, tmp_path):
        import dataclasses

        instance = load_instances(suite_dir)[0]
        bad = dataclasses.replace(instance, model_path=tmp_path / "missing.onnx")
        outcome = run_instance(TRACKS[0], bad)
        assert outcome.status == "error"
        assert "missing.onnx" in outcome.detail or "No such file" in outcome.detail

    def test_exhausted_budget_is_timeout_not_solved(self, suite_dir):
        """An answer cannot be earned on a spent budget (CHC-COMP rule)."""
        instance = load_instances(suite_dir)[0]
        outcome = run_instance(TRACKS[0], instance, timeout=1e-9)
        assert outcome.status == "timeout"
        assert not outcome.solved
        assert outcome.par2 == 2e-9

    def test_broken_file_does_not_sink_the_competition(self, suite_dir, tmp_path):
        """One corrupt .onnx yields error outcomes; the rest still run."""
        import shutil

        broken_dir = tmp_path / "broken"
        shutil.copytree(suite_dir, broken_dir)
        (broken_dir / "grid.onnx").write_bytes(b"not a model at all")
        instances = load_instances(broken_dir)
        report = run_competition(instances, TRACKS, instance_dir=str(broken_dir))
        assert not report.ok
        statuses = {
            o.instance: o.status for o in report.outcomes if o.track == TRACKS[0].name
        }
        for name, status in statuses.items():
            if name.startswith("grid"):
                assert status == "error"
            else:
                assert status in ("sat", "unsat")
