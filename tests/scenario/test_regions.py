"""Tests for scenario-perturbation region grids."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenario.dataset import SceneConfig, sample_scene
from repro.scenario.regions import (
    PerturbationAxes,
    RegionGrid,
    region_from_scene,
    scenario_region_grid,
)
from repro.scenario.render import render_ground, render_vehicles
from repro.scenario.weather import Weather


@pytest.fixture(scope="module")
def base_config():
    return SceneConfig(weather_variation=False, traffic_probability=0.0)


@pytest.fixture(scope="module")
def base_scene(base_config):
    return sample_scene(np.random.default_rng(5), base_config)


class TestPerturbationAxes:
    def test_validation(self):
        with pytest.raises(ValueError, match="weather"):
            PerturbationAxes(weather=1.5)
        with pytest.raises(ValueError, match="camera_jitter"):
            PerturbationAxes(camera_jitter=-1.0)
        with pytest.raises(ValueError, match="traffic"):
            PerturbationAxes(traffic=-1)

    def test_describe_is_string_pairs(self):
        axes = PerturbationAxes(weather=0.5, camera_jitter=1.0, traffic=2)
        described = dict(axes.describe())
        assert described == {"weather": "0.5", "camera_jitter": "1", "traffic": "2"}


class TestRegionFromScene:
    def test_point_region_without_perturbations(self, base_scene, base_config):
        """Only epsilon widens the box when every axis is at zero."""
        region = region_from_scene(
            base_scene, PerturbationAxes(), base_config, epsilon=0.01
        )
        assert region.lower.shape == (1, 32, 32)
        # interior pixels (not clipped at 0/1) have exactly 2*epsilon width
        assert region.width == pytest.approx(0.02, abs=1e-12)

    def test_zero_epsilon_zero_axes_is_degenerate(self, base_scene, base_config):
        region = region_from_scene(
            base_scene, PerturbationAxes(), base_config, epsilon=0.0
        )
        assert region.width == 0.0

    def test_weather_axis_widens_the_box(self, base_scene, base_config):
        base = region_from_scene(base_scene, PerturbationAxes(), base_config, epsilon=0.0)
        foul = region_from_scene(
            base_scene, PerturbationAxes(weather=1.0), base_config, epsilon=0.0
        )
        assert foul.width > base.width
        assert np.all(foul.lower <= base.lower + 1e-12)
        assert np.all(foul.upper >= base.upper - 1e-12)

    @pytest.mark.parametrize(
        "weather",
        [
            Weather(brightness=1.05, contrast=0.95),  # interior point
            Weather(brightness=1.15, contrast=1.10, fog_density=0.04),  # bright+fog
            Weather(brightness=0.85, contrast=0.90, fog_density=0.04),  # dark+fog
            Weather(brightness=1.15, contrast=0.90),  # mixed (b, c) corner
            Weather(brightness=0.85, contrast=1.10, fog_density=0.02),
        ],
    )
    def test_envelope_contains_variant_renderings(
        self, base_scene, base_config, weather
    ):
        """The box encloses every in-family rendering, combined axes included."""
        axes = PerturbationAxes(weather=1.0)
        region = region_from_scene(base_scene, axes, base_config, epsilon=0.0)
        rng = np.random.default_rng(base_scene.texture_seed)
        image, distance = render_ground(base_scene.road, base_config.camera, rng)
        render_vehicles(image, distance, base_scene.road, base_config.camera, base_scene.vehicles)
        variant = weather.apply(image, distance, rng)
        assert np.all(variant >= region.lower[0] - 1e-9)
        assert np.all(variant <= region.upper[0] + 1e-9)

    def test_traffic_axis_covers_empty_road(self, base_scene, base_config):
        with_traffic = region_from_scene(
            base_scene, PerturbationAxes(traffic=2), base_config, epsilon=0.0
        )
        empty = region_from_scene(
            base_scene, PerturbationAxes(), base_config, epsilon=0.0
        )
        assert np.all(with_traffic.lower <= empty.lower + 1e-12)
        assert np.all(with_traffic.upper >= empty.upper - 1e-12)

    def test_negative_epsilon_rejected(self, base_scene, base_config):
        with pytest.raises(ValueError, match="epsilon"):
            region_from_scene(base_scene, PerturbationAxes(), base_config, epsilon=-0.1)

    def test_bounds_stay_in_pixel_range(self, base_scene, base_config):
        region = region_from_scene(
            base_scene,
            PerturbationAxes(weather=1.0, camera_jitter=2.0, traffic=1),
            base_config,
            epsilon=0.05,
        )
        assert np.all(region.lower >= 0.0) and np.all(region.upper <= 1.0)


class TestScenarioRegionGrid:
    def test_grid_shape_and_names(self):
        grid = scenario_region_grid(
            n_scenes=2,
            weather_levels=(0.0, 1.0),
            jitter_levels=(0.0, 1.0),
            traffic_levels=(0,),
            seed=3,
        )
        assert len(grid) == 8
        assert grid.names == [f"region-{i:03d}" for i in range(8)]
        batch = grid.box_batch()
        assert batch.lower.shape == (8, 1, 32, 32)

    def test_deterministic_for_fixed_seed(self):
        a = scenario_region_grid(n_scenes=1, weather_levels=(0.5,), seed=11)
        b = scenario_region_grid(n_scenes=1, weather_levels=(0.5,), seed=11)
        np.testing.assert_array_equal(a[0].lower, b[0].lower)
        np.testing.assert_array_equal(a[0].upper, b[0].upper)

    def test_truncated(self):
        grid = scenario_region_grid(n_scenes=2, seed=0)
        cut = grid.truncated(3)
        assert len(cut) == 3 and cut.names == grid.names[:3]
        with pytest.raises(ValueError):
            grid.truncated(0)
        with pytest.raises(ValueError):
            grid.truncated(len(grid) + 1)

    def test_unique_names_enforced(self):
        grid = scenario_region_grid(n_scenes=1, seed=0)
        with pytest.raises(ValueError, match="unique"):
            RegionGrid([grid[0], grid[0]], grid.config)

    def test_metadata_carries_axes(self):
        grid = scenario_region_grid(
            n_scenes=1, weather_levels=(1.0,), traffic_levels=(2,), seed=0
        )
        meta = dict(grid[0].metadata())
        assert meta["region"] == "region-000"
        assert meta["weather"] == "1" and meta["traffic"] == "2"


class TestRegionSplit:
    @pytest.fixture(scope="class")
    def region(self, base_scene, base_config):
        return region_from_scene(
            base_scene, PerturbationAxes(weather=1.0), base_config, epsilon=0.02
        )

    def test_children_partition_the_region(self, region):
        left, right = region.split()
        assert left.name == region.name + f"/{np.argmax((region.upper - region.lower).reshape(-1))}L"
        np.testing.assert_array_equal(
            np.minimum(left.lower, right.lower), region.lower
        )
        np.testing.assert_array_equal(
            np.maximum(left.upper, right.upper), region.upper
        )
        # children never escape the scenario envelope
        assert np.all(left.lower >= region.lower) and np.all(left.upper <= region.upper)
        assert np.all(right.lower >= region.lower) and np.all(right.upper <= region.upper)

    def test_split_halves_the_widest_pixel(self, region):
        pixel = int(np.argmax((region.upper - region.lower).reshape(-1)))
        left, right = region.split()
        lo = region.lower.reshape(-1)[pixel]
        hi = region.upper.reshape(-1)[pixel]
        assert left.upper.reshape(-1)[pixel] == pytest.approx(0.5 * (lo + hi))
        assert right.lower.reshape(-1)[pixel] == pytest.approx(0.5 * (lo + hi))
        assert left.width <= region.width and right.width <= region.width

    def test_children_keep_provenance(self, region):
        left, _ = region.split()
        assert left.scene is region.scene
        assert left.axes is region.axes
        assert dict(left.metadata())["weather"] == "1"

    def test_explicit_pixel_and_validation(self, region):
        widths = (region.upper - region.lower).reshape(-1)
        wide = int(np.argmax(widths))
        left, right = region.split(pixel=wide)
        assert left.name.endswith(f"/{wide}L") and right.name.endswith(f"/{wide}R")
        with pytest.raises(ValueError, match="out of range"):
            region.split(pixel=widths.shape[0] + 7)

    def test_degenerate_pixel_rejected(self, base_scene, base_config):
        point = region_from_scene(
            base_scene, PerturbationAxes(), base_config, epsilon=0.0
        )
        degenerate = int(np.argmin((point.upper - point.lower).reshape(-1)))
        if (point.upper - point.lower).reshape(-1)[degenerate] > 0.0:
            pytest.skip("no degenerate pixel on this scene")
        with pytest.raises(ValueError, match="degenerate"):
            point.split(pixel=degenerate)
