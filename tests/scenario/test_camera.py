"""Unit tests for the pinhole camera and inverse perspective mapping."""

import numpy as np
import pytest

from repro.scenario.camera import PinholeCamera


class TestProjection:
    def test_point_ahead_on_axis_at_camera_height(self):
        cam = PinholeCamera()
        rows, cols, visible = cam.project(np.array([[10.0, 0.0, cam.height]]))
        assert visible[0]
        assert cols[0] == pytest.approx(cam.cx)
        assert rows[0] == pytest.approx(cam.cy)

    def test_left_points_project_left(self):
        cam = PinholeCamera()
        _, cols, _ = cam.project(np.array([[10.0, 2.0, 0.0], [10.0, -2.0, 0.0]]))
        assert cols[0] < cam.cx < cols[1]

    def test_ground_points_below_horizon(self):
        cam = PinholeCamera()
        rows, _, _ = cam.project(np.array([[5.0, 0.0, 0.0], [50.0, 0.0, 0.0]]))
        assert rows[0] > rows[1] > cam.cy  # nearer ground point is lower

    def test_behind_camera_invisible(self):
        cam = PinholeCamera()
        _, _, visible = cam.project(np.array([[-1.0, 0.0, 0.0]]))
        assert not visible[0]

    def test_rejects_bad_trailing_dim(self):
        cam = PinholeCamera()
        with pytest.raises(ValueError, match="trailing dim"):
            cam.project(np.zeros((3, 2)))


class TestInversePerspective:
    def test_roundtrip_ground_projection(self):
        """IPM then forward projection must land on the same pixel."""
        cam = PinholeCamera(width=24, height_px=24)
        gx, gy, below = cam.ground_grid()
        rows, cols = np.nonzero(below)
        points = np.stack(
            [gx[rows, cols], gy[rows, cols], np.zeros(rows.size)], axis=1
        )
        proj_rows, proj_cols, visible = cam.project(points)
        assert visible.all()
        np.testing.assert_allclose(proj_rows, rows, atol=1e-9)
        np.testing.assert_allclose(proj_cols, cols, atol=1e-9)

    def test_above_horizon_masked(self):
        cam = PinholeCamera(width=16, height_px=16)
        _, _, below = cam.ground_grid()
        horizon_row = int(np.ceil(cam.cy))
        assert not below[: horizon_row, :].any()

    def test_distance_increases_toward_horizon(self):
        cam = PinholeCamera()
        gx, _, below = cam.ground_grid()
        col = cam.width // 2
        rows = np.nonzero(below[:, col])[0]
        distances = gx[rows, col]
        assert np.all(np.diff(distances) < 0)  # lower rows are closer

    def test_max_distance_cutoff(self):
        cam = PinholeCamera()
        gx, _, below = cam.ground_grid(max_distance=30.0)
        assert gx[below].max() <= 30.0


class TestValidation:
    def test_rejects_small_image(self):
        with pytest.raises(ValueError, match="too small"):
            PinholeCamera(width=2, height_px=2)

    def test_rejects_bad_focal(self):
        with pytest.raises(ValueError, match="focal"):
            PinholeCamera(focal=0.0)

    def test_rejects_bad_height(self):
        with pytest.raises(ValueError, match="height"):
            PinholeCamera(height=-1.0)

    def test_custom_horizon_row(self):
        cam = PinholeCamera(horizon_row=5.0)
        assert cam.cy == 5.0
