"""Unit and property tests for road geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario.geometry import RoadGeometry

curvatures = st.floats(-0.01, 0.01)
rates = st.floats(-1e-4, 1e-4)


class TestCurveFunctions:
    def test_straight_road_is_flat(self):
        road = RoadGeometry()
        x = np.linspace(0, 100, 11)
        np.testing.assert_array_equal(road.centerline_offset(x), 0.0)
        np.testing.assert_array_equal(road.heading(x), 0.0)

    def test_left_bend_has_positive_offset(self):
        road = RoadGeometry(kappa0=5e-3)
        assert road.centerline_offset(50.0) > 0.0
        assert road.heading(50.0) > 0.0

    def test_right_bend_has_negative_offset(self):
        road = RoadGeometry(kappa0=-5e-3)
        assert road.centerline_offset(50.0) < 0.0

    def test_initial_conditions(self):
        road = RoadGeometry(kappa0=1e-3, y0=0.4, psi0=0.02)
        assert road.centerline_offset(0.0) == pytest.approx(0.4)
        assert road.heading(0.0) == pytest.approx(0.02)
        assert road.curvature(0.0) == pytest.approx(1e-3)

    @given(curvatures, rates)
    @settings(max_examples=50, deadline=None)
    def test_heading_is_curvature_integral(self, kappa, rate):
        road = RoadGeometry(kappa0=kappa, kappa_rate=rate)
        # d(heading)/dx == curvature (central difference)
        x = 30.0
        h = 1e-4
        derivative = (road.heading(x + h) - road.heading(x - h)) / (2 * h)
        assert derivative == pytest.approx(float(road.curvature(x)), abs=1e-8)

    @given(curvatures, rates)
    @settings(max_examples=50, deadline=None)
    def test_offset_slope_is_heading(self, kappa, rate):
        road = RoadGeometry(kappa0=kappa, kappa_rate=rate, psi0=0.01)
        x = 25.0
        h = 1e-4
        slope = (road.centerline_offset(x + h) - road.centerline_offset(x - h)) / (2 * h)
        assert slope == pytest.approx(float(road.heading(x)), abs=1e-8)


class TestLaneStructure:
    def test_lane_centers_spaced_by_width(self):
        road = RoadGeometry(num_lanes=3, ego_lane=1, lane_width=3.5)
        x = 10.0
        c0 = road.lane_center_offset(x, 0)
        c1 = road.lane_center_offset(x, 1)
        c2 = road.lane_center_offset(x, 2)
        assert c1 - c0 == pytest.approx(3.5)
        assert c2 - c1 == pytest.approx(3.5)
        assert c1 == pytest.approx(float(road.centerline_offset(x)))

    def test_boundaries_count(self):
        road = RoadGeometry(num_lanes=3)
        assert len(road.boundary_offsets(0.0)) == 4

    def test_on_road_inside_and_outside(self):
        road = RoadGeometry(num_lanes=2, ego_lane=0, lane_width=3.6)
        x = np.array([10.0, 10.0, 10.0])
        y = np.array([0.0, 5.0, -3.0])  # lane center, left lane, off-road right
        mask = road.on_road(x, y)
        assert mask.tolist() == [True, True, False]

    def test_road_half_span(self):
        road = RoadGeometry(num_lanes=3, lane_width=4.0)
        assert road.road_half_span == 6.0

    def test_invalid_lane_queries(self):
        road = RoadGeometry(num_lanes=2)
        with pytest.raises(ValueError, match="lane"):
            road.lane_center_offset(0.0, 5)


class TestBendDirection:
    def test_signs(self):
        assert RoadGeometry(kappa0=6e-3).bend_direction(20.0) == 1
        assert RoadGeometry(kappa0=-6e-3).bend_direction(20.0) == -1
        assert RoadGeometry(kappa0=0.0).bend_direction(20.0) == 0

    def test_rate_affects_window_average(self):
        # starts straight but curves hard within the window
        road = RoadGeometry(kappa0=0.0, kappa_rate=5e-4)
        assert road.bend_direction(40.0, threshold=1e-3) == 1


class TestValidation:
    def test_rejects_bad_lane_width(self):
        with pytest.raises(ValueError, match="lane_width"):
            RoadGeometry(lane_width=0.0)

    def test_rejects_bad_num_lanes(self):
        with pytest.raises(ValueError, match="num_lanes"):
            RoadGeometry(num_lanes=0)

    def test_rejects_ego_lane_out_of_range(self):
        with pytest.raises(ValueError, match="ego_lane"):
            RoadGeometry(num_lanes=2, ego_lane=2)
