"""Unit tests for weather effects and traffic placement."""

import numpy as np
import pytest

from repro.scenario.geometry import RoadGeometry
from repro.scenario.traffic import (
    Vehicle,
    adjacent_traffic_present,
    lead_vehicle_distance,
    sample_vehicles,
)
from repro.scenario.weather import Weather


class TestWeather:
    def test_clear_noop_except_clip(self):
        weather = Weather.clear()
        image = np.random.default_rng(0).uniform(0.1, 0.9, size=(8, 8))
        out = weather.apply(image, None, np.random.default_rng(1))
        np.testing.assert_allclose(out, image)

    def test_brightness_scales(self):
        weather = Weather(brightness=0.5)
        image = np.full((4, 4), 0.8)
        out = weather.apply(image, None, np.random.default_rng(0))
        np.testing.assert_allclose(out, 0.4)

    def test_contrast_pivots_at_half(self):
        weather = Weather(contrast=2.0)
        image = np.array([[0.5, 0.6]])
        out = weather.apply(image, None, np.random.default_rng(0))
        np.testing.assert_allclose(out, [[0.5, 0.7]])

    def test_fog_pulls_distant_pixels_to_gray(self):
        weather = Weather(fog_density=0.1, fog_gray=0.75)
        image = np.array([[0.2, 0.2]])
        distance = np.array([[1.0, 100.0]])
        out = weather.apply(image, distance, np.random.default_rng(0))
        assert abs(out[0, 1] - 0.75) < 0.01  # fully fogged
        assert out[0, 0] < 0.3  # nearly untouched

    def test_fog_requires_distance(self):
        weather = Weather(fog_density=0.1)
        with pytest.raises(ValueError, match="distance"):
            weather.apply(np.zeros((2, 2)), None, np.random.default_rng(0))

    def test_fog_handles_sky_infinite_distance(self):
        weather = Weather(fog_density=0.05)
        image = np.array([[0.9]])
        out = weather.apply(image, np.array([[np.inf]]), np.random.default_rng(0))
        assert np.isfinite(out).all()

    def test_noise_bounded_output(self):
        weather = Weather(noise_sigma=0.5)
        image = np.full((16, 16), 0.5)
        out = weather.apply(image, None, np.random.default_rng(0))
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert out.std() > 0.0

    def test_sample_within_bounds(self):
        for seed in range(20):
            weather = Weather.sample(np.random.default_rng(seed))
            assert 0.8 <= weather.brightness <= 1.2
            assert weather.fog_density >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Weather(brightness=0.0)
        with pytest.raises(ValueError):
            Weather(fog_density=-0.1)
        with pytest.raises(ValueError):
            Weather(fog_gray=2.0)
        with pytest.raises(ValueError):
            Weather(noise_sigma=-1.0)


class TestVehicle:
    def test_lateral_center_follows_lane(self):
        road = RoadGeometry(num_lanes=2, ego_lane=0, lane_width=3.6)
        vehicle = Vehicle(distance=20.0, lane=1)
        expected = float(road.centerline_offset(20.0)) + 3.6
        assert vehicle.lateral_center(road) == pytest.approx(expected)

    def test_adjacency(self):
        road = RoadGeometry(num_lanes=3, ego_lane=0)
        assert Vehicle(10.0, lane=1).is_adjacent(road)
        assert not Vehicle(10.0, lane=2).is_adjacent(road)
        assert not Vehicle(10.0, lane=0).is_adjacent(road)
        assert Vehicle(10.0, lane=0).is_in_ego_lane(road)

    def test_validation(self):
        with pytest.raises(ValueError):
            Vehicle(distance=0.0, lane=0)
        with pytest.raises(ValueError):
            Vehicle(distance=5.0, lane=0, width=-1.0)
        with pytest.raises(ValueError):
            Vehicle(distance=5.0, lane=0, shade=1.5)


class TestTrafficOracles:
    def test_adjacent_traffic_present(self):
        road = RoadGeometry(num_lanes=2, ego_lane=0)
        assert adjacent_traffic_present(road, [Vehicle(20.0, lane=1)], 60.0)
        assert not adjacent_traffic_present(road, [Vehicle(80.0, lane=1)], 60.0)
        assert not adjacent_traffic_present(road, [], 60.0)

    def test_lead_vehicle_distance(self):
        road = RoadGeometry(num_lanes=2, ego_lane=0)
        vehicles = [Vehicle(30.0, lane=0), Vehicle(15.0, lane=1), Vehicle(50.0, lane=0)]
        assert lead_vehicle_distance(road, vehicles) == 30.0
        assert lead_vehicle_distance(road, []) == np.inf


class TestSampleVehicles:
    def test_never_in_ego_lane(self):
        road = RoadGeometry(num_lanes=3, ego_lane=1)
        for seed in range(30):
            for v in sample_vehicles(np.random.default_rng(seed), road, presence_prob=1.0):
                assert v.lane != road.ego_lane

    def test_single_lane_road_no_traffic(self):
        road = RoadGeometry(num_lanes=1, ego_lane=0)
        assert sample_vehicles(np.random.default_rng(0), road, presence_prob=1.0) == ()

    def test_presence_probability_zero(self):
        road = RoadGeometry(num_lanes=2)
        assert sample_vehicles(np.random.default_rng(0), road, presence_prob=0.0) == ()

    def test_sorted_far_to_near(self):
        road = RoadGeometry(num_lanes=2)
        for seed in range(20):
            vehicles = sample_vehicles(
                np.random.default_rng(seed), road, presence_prob=1.0, max_vehicles=3
            )
            distances = [v.distance for v in vehicles]
            assert distances == sorted(distances, reverse=True)
