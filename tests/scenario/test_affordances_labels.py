"""Unit tests for affordances and property oracles."""

import numpy as np
import pytest

from repro.scenario.affordances import affordance_names, affordances, steering_proxy
from repro.scenario.dataset import SceneConfig, sample_scene
from repro.scenario.geometry import RoadGeometry
from repro.scenario.labels import (
    ORACLES,
    STRONG_BEND_CURVATURE,
    adjacent_traffic,
    bends_left,
    bends_right,
    is_foggy,
    is_straight,
)


class TestAffordances:
    def test_names_order(self):
        assert affordance_names() == ["waypoint_lateral", "orientation"]

    def test_straight_road_zero(self):
        out = affordances(RoadGeometry())
        np.testing.assert_array_equal(out, [0.0, 0.0])

    def test_right_bend_negative_waypoint(self):
        out = affordances(RoadGeometry(kappa0=-6e-3))
        assert out[0] < 0.0 and out[1] < 0.0

    def test_matches_geometry_at_lookahead(self):
        road = RoadGeometry(kappa0=3e-3, y0=0.2, psi0=0.01)
        out = affordances(road, lookahead=25.0)
        assert out[0] == pytest.approx(float(road.centerline_offset(25.0)))
        assert out[1] == pytest.approx(float(road.heading(25.0)))

    def test_rejects_bad_lookahead(self):
        with pytest.raises(ValueError, match="lookahead"):
            affordances(RoadGeometry(), lookahead=0.0)

    def test_steering_proxy_sign(self):
        assert steering_proxy(np.array([2.0, 0.1])) > 0.0
        assert steering_proxy(np.array([-2.0, -0.1])) < 0.0
        with pytest.raises(ValueError, match="2 entries"):
            steering_proxy(np.array([1.0, 2.0, 3.0]))


def _scene_with(kappa0=0.0, seed=0, **config_kwargs):
    config = SceneConfig(**config_kwargs)
    scene = sample_scene(np.random.default_rng(seed), config)
    road = RoadGeometry(
        kappa0=kappa0,
        kappa_rate=0.0,
        y0=scene.road.y0,
        psi0=scene.road.psi0,
        lane_width=scene.road.lane_width,
        num_lanes=scene.road.num_lanes,
        ego_lane=scene.road.ego_lane,
    )
    return type(scene)(
        road=road,
        weather=scene.weather,
        vehicles=scene.vehicles,
        texture_seed=scene.texture_seed,
    )


class TestBendOracles:
    def test_strong_right_bend(self):
        scene = _scene_with(kappa0=-2 * STRONG_BEND_CURVATURE)
        assert bends_right(scene)
        assert not bends_left(scene)
        assert not is_straight(scene)

    def test_strong_left_bend(self):
        scene = _scene_with(kappa0=2 * STRONG_BEND_CURVATURE)
        assert bends_left(scene)
        assert not bends_right(scene)

    def test_straight(self):
        scene = _scene_with(kappa0=0.0)
        assert is_straight(scene)
        assert not bends_left(scene) and not bends_right(scene)

    def test_mutually_exclusive_and_exhaustive(self):
        rng = np.random.default_rng(7)
        config = SceneConfig()
        for _ in range(50):
            scene = sample_scene(rng, config)
            votes = sum([bends_left(scene), bends_right(scene), is_straight(scene)])
            assert votes == 1


class TestOtherOracles:
    def test_foggy_oracle(self):
        rng = np.random.default_rng(3)
        config = SceneConfig()
        scenes = [sample_scene(rng, config) for _ in range(100)]
        labels = [is_foggy(s) for s in scenes]
        for scene, label in zip(scenes, labels):
            assert label == (scene.weather.fog_density > 0.0)
        assert any(labels) and not all(labels)

    def test_adjacent_traffic_consistent(self):
        rng = np.random.default_rng(4)
        config = SceneConfig(traffic_probability=1.0)
        scenes = [sample_scene(rng, config) for _ in range(50)]
        assert any(adjacent_traffic(s) for s in scenes)

    def test_registry_complete(self):
        assert set(ORACLES) == {
            "bends_right", "bends_left", "is_straight", "adjacent_traffic", "is_foggy",
        }
        for name, oracle in ORACLES.items():
            assert oracle.name == name
            assert oracle.description
