"""Unit tests for dataset generation."""

import numpy as np
import pytest

from repro.scenario.dataset import (
    Dataset,
    SceneConfig,
    balanced_property_dataset,
    generate_dataset,
    render_scene,
    sample_scene,
)


class TestSampleScene:
    def test_within_config_bounds(self):
        config = SceneConfig(max_curvature=5e-3, max_lane_offset=0.5)
        rng = np.random.default_rng(0)
        for _ in range(50):
            scene = sample_scene(rng, config)
            assert abs(scene.road.kappa0) <= 5e-3
            assert abs(scene.road.y0) <= 0.5
            assert 0 <= scene.road.ego_lane < config.num_lanes

    def test_weather_variation_toggle(self):
        config = SceneConfig(weather_variation=False)
        rng = np.random.default_rng(1)
        for _ in range(10):
            scene = sample_scene(rng, config)
            assert scene.weather.brightness == 1.0
            assert scene.weather.fog_density == 0.0

    def test_deterministic_given_rng_state(self):
        a = sample_scene(np.random.default_rng(42))
        b = sample_scene(np.random.default_rng(42))
        assert a == b


class TestRenderScene:
    def test_shape_and_range(self):
        scene = sample_scene(np.random.default_rng(2))
        image = render_scene(scene)
        assert image.shape == (1, 32, 32)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_deterministic(self):
        scene = sample_scene(np.random.default_rng(3))
        np.testing.assert_array_equal(render_scene(scene), render_scene(scene))

    def test_custom_camera_size(self):
        from repro.scenario.camera import PinholeCamera

        config = SceneConfig(camera=PinholeCamera(width=48, height_px=24))
        scene = sample_scene(np.random.default_rng(4), config)
        assert render_scene(scene, config).shape == (1, 24, 48)


class TestGenerateDataset:
    def test_structure(self, small_dataset):
        assert len(small_dataset) == 60
        assert small_dataset.images.shape == (60, 1, 32, 32)
        assert small_dataset.affordances.shape == (60, 2)
        assert len(small_dataset.params) == 60

    def test_reproducible(self):
        a = generate_dataset(5, seed=77)
        b = generate_dataset(5, seed=77)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.affordances, b.affordances)

    def test_different_seeds_differ(self):
        a = generate_dataset(5, seed=1)
        b = generate_dataset(5, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError, match="positive"):
            generate_dataset(0)

    def test_property_labels_binary(self, small_dataset):
        labels = small_dataset.property_labels("bends_right")
        assert set(np.unique(labels)) <= {0.0, 1.0}


class TestSplitSubset:
    def test_split_partitions(self, small_dataset):
        a, b = small_dataset.split(0.7, seed=0)
        assert len(a) + len(b) == len(small_dataset)
        assert len(a) == 42

    def test_split_rejects_degenerate(self, small_dataset):
        with pytest.raises(ValueError, match="fraction"):
            small_dataset.split(0.0)

    def test_subset_where(self, small_dataset):
        labels = small_dataset.property_labels("bends_left") > 0.5
        subset = small_dataset.subset_where(labels)
        assert len(subset) == int(labels.sum())
        assert all(p.property_label("bends_left") for p in subset.params)

    def test_subset_where_shape_checked(self, small_dataset):
        with pytest.raises(ValueError, match="mask"):
            small_dataset.subset_where(np.ones(3, dtype=bool))


class TestBalancedDataset:
    def test_balance_achieved(self):
        ds = balanced_property_dataset(30, "bends_right", seed=11)
        labels = ds.property_labels("bends_right")
        assert labels.sum() == 15

    def test_impossible_property_raises(self):
        config = SceneConfig(max_curvature=1e-5)  # never bends strongly
        with pytest.raises(RuntimeError, match="could not balance"):
            balanced_property_dataset(10, "bends_right", config, seed=0, max_draws=50)
