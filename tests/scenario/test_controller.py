"""Unit tests for the lane-keeping controller and closed-loop simulation."""

import numpy as np
import pytest

from repro.scenario.controller import (
    ClosedLoopResult,
    PurePursuitController,
    simulate_closed_loop,
)


class TestPurePursuitController:
    def test_left_waypoint_steers_left(self):
        controller = PurePursuitController()
        assert controller.command(np.array([1.0, 0.0])) > 0.0
        assert controller.command(np.array([-1.0, 0.0])) < 0.0

    def test_centered_waypoint_no_command(self):
        controller = PurePursuitController()
        assert controller.command(np.array([0.0, 0.0])) == 0.0

    def test_command_saturates(self):
        controller = PurePursuitController(max_curvature=0.01)
        assert controller.command(np.array([100.0, 0.0])) == 0.01

    def test_orientation_damping_adds(self):
        controller = PurePursuitController(orientation_gain=1.0)
        base = controller.command(np.array([1.0, 0.0]))
        with_orientation = controller.command(np.array([1.0, 0.1]))
        assert with_orientation > base

    def test_validation(self):
        with pytest.raises(ValueError, match="lookahead"):
            PurePursuitController(lookahead=0.0)
        controller = PurePursuitController()
        with pytest.raises(ValueError, match="2 entries"):
            controller.command(np.zeros(3))


class TestClosedLoopOracle:
    def test_converges_from_initial_offset_on_straight(self):
        result = simulate_closed_loop(
            None, num_steps=300, initial_offset=1.0, seed=5
        )
        # after the transient the vehicle tracks the lane tightly
        tail = result.lateral_offsets[150:]
        assert np.abs(tail).max() < 0.5
        assert abs(result.lateral_offsets[0]) == 1.0

    def test_tracks_winding_road(self):
        result = simulate_closed_loop(None, num_steps=400, initial_offset=0.0, seed=7)
        assert result.rms_lateral_error < 0.5

    def test_result_metrics(self):
        result = simulate_closed_loop(None, num_steps=50, seed=1)
        assert isinstance(result, ClosedLoopResult)
        assert result.lateral_offsets.shape == (50,)
        assert result.fallback_rate == 0.0
        assert "RMS lateral error" in result.summary()

    def test_reproducible(self):
        a = simulate_closed_loop(None, num_steps=30, seed=3)
        b = simulate_closed_loop(None, num_steps=30, seed=3)
        np.testing.assert_array_equal(a.lateral_offsets, b.lateral_offsets)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_steps"):
            simulate_closed_loop(None, num_steps=0)


class TestClosedLoopPerception:
    def test_nn_drives_and_monitor_can_fall_back(self, verified_system):
        sys_ = verified_system
        nn_result = simulate_closed_loop(
            sys_.model,
            num_steps=120,
            initial_offset=0.3,
            scene_config=sys_.config.scene,
            seed=11,
        )
        oracle_result = simulate_closed_loop(
            None,
            num_steps=120,
            initial_offset=0.3,
            scene_config=sys_.config.scene,
            seed=11,
        )
        # the NN channel keeps the vehicle on the road (lane half width)
        assert nn_result.max_lateral_error < sys_.config.scene.lane_width
        # and cannot beat the oracle channel
        assert nn_result.rms_lateral_error >= oracle_result.rms_lateral_error - 1e-9

        monitored = simulate_closed_loop(
            sys_.model,
            num_steps=120,
            initial_offset=0.3,
            scene_config=sys_.config.scene,
            monitor=sys_.verifier.make_monitor(keep_events=False),
            seed=11,
        )
        assert 0.0 <= monitored.fallback_rate <= 1.0
        # fallback steps (if any) can only improve or match tracking
        assert monitored.rms_lateral_error <= nn_result.rms_lateral_error + 0.5

    def test_hot_standby_saves_the_night_drive(self, verified_system):
        """The paper's architecture, quantified: an unmonitored NN channel
        diverges when night falls (ODD exit), the monitor-backed channel
        falls back to the mediated system and keeps tracking."""
        sys_ = verified_system
        common = dict(
            num_steps=150,
            initial_offset=0.3,
            scene_config=sys_.config.scene,
            odd_exit_step=75,
            seed=11,
        )
        unmonitored = simulate_closed_loop(sys_.model, **common)
        hot_standby = simulate_closed_loop(
            sys_.model,
            monitor=sys_.verifier.make_monitor(keep_events=False),
            **common,
        )
        assert hot_standby.fallback_rate > 0.05  # the monitor engaged
        assert hot_standby.max_lateral_error < sys_.config.scene.lane_width
        assert hot_standby.rms_lateral_error < unmonitored.rms_lateral_error
