"""Unit tests for the drive simulator."""

import numpy as np
import pytest

from repro.scenario.dataset import SceneConfig
from repro.scenario.drive import DriveConfig, simulate_drive
from repro.scenario.weather import Weather


class TestSimulateDrive:
    def test_shapes(self):
        ds = simulate_drive(DriveConfig(num_frames=20), seed=1)
        assert ds.images.shape == (20, 1, 32, 32)
        assert ds.affordances.shape == (20, 2)
        assert len(ds.params) == 20

    def test_reproducible(self):
        a = simulate_drive(DriveConfig(num_frames=8), seed=5)
        b = simulate_drive(DriveConfig(num_frames=8), seed=5)
        np.testing.assert_array_equal(a.images, b.images)

    def test_temporal_smoothness(self):
        """Consecutive frames are much closer than random scene pairs."""
        ds = simulate_drive(DriveConfig(num_frames=40, curvature_drift=1e-4), seed=2)
        kappas = np.array([p.road.kappa0 for p in ds.params])
        step = np.abs(np.diff(kappas)).mean()
        spread = kappas.std()
        assert step < max(spread, 1e-6)

    def test_stays_inside_odd_envelope(self):
        config = SceneConfig()
        ds = simulate_drive(DriveConfig(num_frames=50), config, seed=3)
        for p in ds.params:
            assert abs(p.road.kappa0) <= config.max_curvature + 1e-12
            assert abs(p.road.y0) <= config.max_lane_offset + 1e-12

    def test_ego_lane_constant_within_drive(self):
        ds = simulate_drive(DriveConfig(num_frames=30), seed=4)
        lanes = {p.road.ego_lane for p in ds.params}
        assert len(lanes) == 1

    def test_odd_exit_switches_weather(self):
        night = Weather(brightness=0.35)
        config = DriveConfig(num_frames=20, odd_exit_frame=10, odd_exit_weather=night)
        ds = simulate_drive(config, seed=6)
        assert ds.params[5].weather == Weather.clear()
        assert ds.params[15].weather == night

    def test_validation(self):
        with pytest.raises(ValueError, match="num_frames"):
            DriveConfig(num_frames=0)
        with pytest.raises(ValueError, match="frame_distance"):
            DriveConfig(frame_distance=0.0)

    def test_affordances_match_geometry(self):
        from repro.scenario.affordances import affordances

        ds = simulate_drive(DriveConfig(num_frames=5), seed=7)
        for i, p in enumerate(ds.params):
            np.testing.assert_allclose(
                ds.affordances[i], affordances(p.road, ds.config.lookahead)
            )
