"""Unit tests for the rasterizer."""

import numpy as np

from repro.scenario.camera import PinholeCamera
from repro.scenario.geometry import RoadGeometry
from repro.scenario.render import (
    GRASS,
    MARKING,
    ROAD,
    SKY_TOP,
    render_ground,
    render_vehicles,
)
from repro.scenario.traffic import Vehicle


def _render(road=None, camera=None, seed=0):
    road = road or RoadGeometry()
    camera = camera or PinholeCamera()
    return camera, render_ground(road, camera, np.random.default_rng(seed))


class TestRenderGround:
    def test_value_range(self):
        _, (image, _) = _render()
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_sky_on_top(self):
        cam, (image, distance) = _render()
        assert abs(image[0].mean() - SKY_TOP) < 0.05
        assert np.isinf(distance[0]).all()

    def test_road_in_bottom_center(self):
        cam, (image, _) = _render()
        bottom_center = image[-1, cam.width // 2]
        assert abs(bottom_center - ROAD) < 0.1

    def test_grass_at_midfield_edges(self):
        # the bottom rows are all road (narrow FOV close to the bumper);
        # grass appears at the image edges in the mid-field rows where
        # the ground strip is wide
        cam, (image, _) = _render()
        row = int(cam.cy) + 4
        edge = image[row, 0]
        assert abs(edge - GRASS) < 0.15

    def test_markings_present(self):
        _, (image, _) = _render()
        assert (image >= MARKING - 0.05).sum() > 3

    def test_right_bend_shifts_road_right(self):
        cam, (straight, _) = _render()
        _, (bent, _) = _render(road=RoadGeometry(kappa0=-8e-3))
        # compare road-pixel column centroids in an upper band of the ground
        def road_centroid(img, row):
            cols = np.nonzero(np.abs(img[row] - ROAD) < 0.08)[0]
            return cols.mean() if cols.size else np.nan

        # a right bend (negative y) projects to larger column indices
        # (columns grow toward the image right: col = cx - f*y/x)
        row = int(cam.cy) + 3  # far-away ground row
        assert road_centroid(bent, row) > road_centroid(straight, row)

    def test_texture_varies_between_seeds(self):
        _, (a, _) = _render(seed=1)
        _, (b, _) = _render(seed=2)
        assert not np.array_equal(a, b)

    def test_distance_finite_below_horizon(self):
        cam, (_, distance) = _render()
        assert np.isfinite(distance[-1]).all()


class TestRenderVehicles:
    def test_vehicle_paints_dark_pixels(self):
        cam = PinholeCamera()
        road = RoadGeometry(num_lanes=2, ego_lane=0)
        image, distance = render_ground(road, cam, np.random.default_rng(0))
        before = image.copy()
        render_vehicles(image, distance, road, cam, [Vehicle(distance=15.0, lane=1)])
        changed = np.abs(image - before) > 1e-12
        assert changed.any()
        assert image[changed].min() <= 0.25  # vehicle body shade

    def test_near_vehicle_larger_than_far(self):
        cam = PinholeCamera()
        road = RoadGeometry()

        def painted_area(dist):
            image, dmap = render_ground(road, cam, np.random.default_rng(0))
            before = image.copy()
            render_vehicles(image, dmap, road, cam, [Vehicle(distance=dist, lane=1)])
            return int((np.abs(image - before) > 1e-12).sum())

        assert painted_area(10.0) > painted_area(40.0)

    def test_vehicle_updates_distance_map(self):
        cam = PinholeCamera()
        road = RoadGeometry()
        image, distance = render_ground(road, cam, np.random.default_rng(0))
        render_vehicles(image, distance, road, cam, [Vehicle(distance=12.0, lane=1)])
        assert (distance == 12.0).any()

    def test_no_vehicles_is_noop(self):
        cam = PinholeCamera()
        road = RoadGeometry()
        image, distance = render_ground(road, cam, np.random.default_rng(0))
        before = image.copy()
        render_vehicles(image, distance, road, cam, [])
        np.testing.assert_array_equal(image, before)
